"""Invariant mining over structured logs (Lou et al., §VI ref [25]).

Mines linear count invariants (count(A) == count(B), count(A) >=
count(B)) from parsed HDFS sessions and uses their violations as an
anomaly detector — a second log mining consumer of the parsers' output,
complementary to the PCA pipeline.

Run:  python examples/invariant_mining.py
"""

from repro import OracleParser, build_event_matrix, generate_hdfs_sessions
from repro.datasets.hdfs import HDFS_BANK
from repro.mining.invariants import mine_invariants, violating_sessions


def main() -> None:
    dataset = generate_hdfs_sessions(2_000, seed=3)
    parsed = OracleParser().parse(dataset.records)
    counts = build_event_matrix(parsed)

    invariants = mine_invariants(counts, min_support=50, tolerance=0.03)
    equalities = [inv for inv in invariants if inv.kind == "eq"]
    print(f"mined {len(invariants)} invariants "
          f"({len(equalities)} equalities); examples:")
    for invariant in equalities[:5]:
        left = HDFS_BANK.by_id(invariant.left).truth_template[:38]
        right = HDFS_BANK.by_id(invariant.right).truth_template[:38]
        print(f"  {invariant}   [{left} | {right}]")

    violations = violating_sessions(counts, equalities)
    true_positives = sum(
        1 for session in violations if dataset.labels[session]
    )
    print(
        f"\nsessions violating an equality invariant: {len(violations)} "
        f"({true_positives} of them labeled anomalies; "
        f"{len(dataset.anomaly_blocks)} anomalies total)"
    )
    precision = true_positives / len(violations) if violations else 0.0
    print(f"precision of invariant-violation flagging: {precision:.2f}")


if __name__ == "__main__":
    main()
