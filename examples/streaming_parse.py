"""Streaming parse: bounded-memory ingestion with a live template cache.

The paper's Finding 3 is that clustering-based parsers do not scale
with log volume.  This example shows the repo's answer: feed a log
stream through :class:`repro.StreamingParser` — repeat lines hit the
LRU template cache in O(tokens), only novel lines are batched through
the underlying parser — and watch the cache hit rate climb as the
engine warms up.  It then certifies the result against a plain batch
parse with the equivalence harness.

The run is instrumented with the unified telemetry layer: every
summary printed here is read back from the metrics registry, and the
registry plus the span trace are left behind as
``streaming_parse.metrics.json`` / ``streaming_parse.trace.jsonl`` in
the working directory — structured artifacts a test (or a human with
``repro report``) can assert on instead of scraping stdout.

Run:  python examples/streaming_parse.py
"""

from functools import partial

from repro import (
    ParseSession,
    StreamingParser,
    Telemetry,
    export_metrics,
    make_parser,
    summary_from_registry,
)
from repro.datasets import get_dataset_spec, iter_dataset
from repro.streaming import compare_stream_to_batch

METRICS_PATH = "streaming_parse.metrics.json"
TRACE_PATH = "streaming_parse.trace.jsonl"


def main() -> None:
    # 1. Stream 20k synthetic BGL lines through the engine in delta
    #    mode (bounded memory: retain=False keeps no per-line state),
    #    printing the live hit rate every 4k lines — each progress line
    #    rendered from the metrics registry, not ad-hoc arithmetic.
    spec = get_dataset_spec("BGL")
    telemetry = Telemetry.create(trace_id="streaming-parse")
    engine = StreamingParser(
        partial(make_parser, "IPLoM"),
        flush_policy="delta",
        flush_size=512,
        retain=False,
        telemetry=telemetry,
    )
    session = ParseSession(engine, track_matrix=False)
    print("streaming 20,000 BGL lines (delta policy, unretained):")
    session.consume(
        iter_dataset(spec, 20_000, seed=7),
        report_every=4_000,
        report=lambda _: print(summary_from_registry(telemetry.metrics)),
    )
    session.finalize()
    registry = telemetry.metrics
    print(f"final: {summary_from_registry(registry)}")
    misses = registry.value("repro_cache_misses_total")
    hits = registry.value(
        "repro_cache_hits_total", kind="exact"
    ) + registry.value("repro_cache_hits_total", kind="template")
    print(
        f"cache answered {hits / (hits + misses):.1%} of lookups; "
        f"only {int(misses)} went through the batch parser"
    )
    export_metrics(registry, METRICS_PATH)
    telemetry.tracer.export(TRACE_PATH, fmt="jsonl")
    print(f"telemetry artifacts: {METRICS_PATH}, {TRACE_PATH}")

    # 2. Certify streaming == batch on a smaller HDFS run using the
    #    prefix flush policy (identical template set and per-line
    #    assignments by construction).
    hdfs = list(iter_dataset(get_dataset_spec("HDFS"), 3_000, seed=7))
    report = compare_stream_to_batch(
        partial(make_parser, "IPLoM"),
        hdfs,
        flush_policy="prefix",
        flush_size=500,
    )
    print(report.describe())


if __name__ == "__main__":
    main()
