"""Streaming parse: bounded-memory ingestion with a live template cache.

The paper's Finding 3 is that clustering-based parsers do not scale
with log volume.  This example shows the repo's answer: feed a log
stream through :class:`repro.StreamingParser` — repeat lines hit the
LRU template cache in O(tokens), only novel lines are batched through
the underlying parser — and watch the cache hit rate climb as the
engine warms up.  It then certifies the result against a plain batch
parse with the equivalence harness.

Run:  python examples/streaming_parse.py
"""

from functools import partial

from repro import ParseSession, StreamingParser, make_parser
from repro.datasets import get_dataset_spec, iter_dataset
from repro.streaming import compare_stream_to_batch


def main() -> None:
    # 1. Stream 20k synthetic BGL lines through the engine in delta
    #    mode (bounded memory: retain=False keeps no per-line state),
    #    printing the live hit rate every 4k lines.
    spec = get_dataset_spec("BGL")
    engine = StreamingParser(
        partial(make_parser, "IPLoM"),
        flush_policy="delta",
        flush_size=512,
        retain=False,
    )
    session = ParseSession(engine, track_matrix=False)
    print("streaming 20,000 BGL lines (delta policy, unretained):")
    session.consume(
        iter_dataset(spec, 20_000, seed=7),
        report_every=4_000,
    )
    session.finalize()
    counters = session.counters()
    print(f"final: {counters.describe()}")
    print(
        f"cache answered {counters.stream.hit_rate:.1%} of lines; "
        f"only {counters.stream.misses} went through the batch parser"
    )

    # 2. Certify streaming == batch on a smaller HDFS run using the
    #    prefix flush policy (identical template set and per-line
    #    assignments by construction).
    hdfs = list(iter_dataset(get_dataset_spec("HDFS"), 3_000, seed=7))
    report = compare_stream_to_batch(
        partial(make_parser, "IPLoM"),
        hdfs,
        flush_policy="prefix",
        flush_size=500,
    )
    print(report.describe())


if __name__ == "__main__":
    main()
