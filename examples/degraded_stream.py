"""Degraded streaming: a budgeted parse that sheds fidelity to survive.

The paper couples two findings this example makes operational.
Finding 3: the clustering-based parsers (LKE, LogSig) are the accurate
ones and also the ones that do not scale.  Finding 6: parsing accuracy
is what log mining rides on — on HDFS, swapping IPLoM (99% accurate)
for SLCT (82%) collapses anomaly detection from 64% to 11%.  So a
stream under resource pressure faces a real trade: shed fidelity or
die.  The :mod:`repro.degradation` runtime makes the trade explicit —
a ladder of ever-cheaper configurations, stepped down one rung at a
time under sustained budget pressure, with every transition priced in
expected mining impact.

This example scripts the pressure (a seeded memory ramp injected as
the monitor's probe, exactly as the chaos-soak suite does) so the run
is deterministic and instant: you watch a parse start on IPLoM,
degrade twice, finish on Passthrough, and print the ledger of what
those downgrades are expected to cost downstream.

The run streams its structured event timeline (every ladder step with
its budget evidence) to ``degraded_stream.events.jsonl`` and exports
the metrics registry to ``degraded_stream.metrics.json`` in the
working directory, so the audit trail is machine-checkable — tests
read those artifacts instead of scraping this script's stdout.

Run:  python examples/degraded_stream.py
"""

from repro import Telemetry, export_metrics
from repro.datasets.hdfs import generate_hdfs_sessions
from repro.degradation import (
    BudgetLimit,
    BudgetMonitor,
    DegradationLadder,
    DegradedSession,
    LadderRung,
    ResourceBudget,
)

MB = 1024 * 1024

METRICS_PATH = "degraded_stream.metrics.json"
EVENTS_PATH = "degraded_stream.events.jsonl"


def scripted_memory_ramp():
    """A memory probe replaying a fixed pressure schedule.

    Calm for the first two checks, then a sustained climb past the
    soft limit, then a spike past the hard limit, then relief once
    the cheap rung's smaller footprint kicks in — the same injection
    trick the deterministic soak harness uses, standing in for real
    RSS so the example behaves identically on every machine.
    """
    schedule = [10 * MB, 20 * MB, 48 * MB, 50 * MB, 70 * MB, 30 * MB]
    state = {"i": 0}

    def probe() -> float:
        value = schedule[min(state["i"], len(schedule) - 1)]
        state["i"] += 1
        return value

    return probe


def main() -> None:
    # 1. Declare the budget: 64 MB hard, soft warning at 32 MB.
    budget = ResourceBudget(
        memory_bytes=BudgetLimit(soft=32 * MB, hard=64 * MB)
    )
    print(budget.describe())

    # 2. A three-rung ladder (big flush sizes keep the example's
    #    downgrades purely budget-driven, not flush-driven).
    ladder = DegradationLadder(
        [
            LadderRung("IPLoM", cache_capacity=256, flush_size=5000),
            LadderRung("SLCT", cache_capacity=32, flush_size=5000),
            LadderRung("Passthrough", cache_capacity=8, flush_size=5000,
                       sample_keep=2),
        ],
        cooldown_checks=2,
    )
    print(ladder.describe())

    # 3. Stream ~2k HDFS session lines, checking the budget every 100,
    #    with telemetry attached: breaches and ladder steps land in the
    #    registry, and the structured timeline streams to disk as JSONL.
    telemetry = Telemetry.create(
        trace_id="degraded-stream", events_path=EVENTS_PATH
    )
    monitor = BudgetMonitor(budget, memory_probe=scripted_memory_ramp())
    session = DegradedSession(
        ladder, monitor, check_every=100, telemetry=telemetry
    )
    records = generate_hdfs_sessions(60, seed=7).records
    print(f"\nstreaming {len(records)} HDFS lines under the budget...\n")
    session.consume(records)
    report = session.finalize()

    # 4. The audit trail: every transition with its evidence and the
    #    priced mining impact, then the final tallies.
    print(report.describe())
    matrix = report.matrix
    assert matrix is not None
    print(
        f"\nfinalized: {len(report.result.events)} event template(s), "
        f"{matrix.n_sessions} session(s) in the event matrix, "
        f"final rung {report.final_rung} after "
        f"{len(report.events)} downgrade(s)"
    )
    export_metrics(telemetry.metrics, METRICS_PATH)
    telemetry.close()
    print(f"\n{telemetry.events.describe()}")
    print(f"telemetry artifacts: {METRICS_PATH}, {EVENTS_PATH}")


if __name__ == "__main__":
    main()
