"""System model construction and refinement (§III-A, Synoptic).

Builds the initial FSM from parsed HDFS sessions, mines temporal
invariants (AlwaysFollowedBy / AlwaysPrecededBy / NeverFollowedBy), and
runs the counterexample-guided refinement loop — then repeats with a
noisy parser to show the "extra branches or even totally different
layout" the paper warns about.

Run:  python examples/system_model.py
"""

from repro import OracleParser, build_system_model, generate_hdfs_sessions
from repro.evaluation.mining_impact import table3_parser_factory
from repro.mining.synoptic import mine_temporal_invariants, refine_model
from repro.mining.verification import event_sequences


def main() -> None:
    dataset = generate_hdfs_sessions(400, seed=5)

    oracle_parse = OracleParser().parse(dataset.records)
    sequences = list(event_sequences(oracle_parse).values())
    invariants = mine_temporal_invariants(sequences)
    by_kind = {}
    for invariant in invariants:
        by_kind.setdefault(invariant.kind, []).append(invariant)
    print(
        f"mined {len(invariants)} temporal invariants over "
        f"{len(sequences)} sessions "
        f"({ {kind: len(v) for kind, v in sorted(by_kind.items())} })"
    )
    print("examples:")
    for invariant in (by_kind.get("AFby", []) + by_kind.get("APby", []))[:4]:
        print(f"  {invariant}")

    initial = build_system_model(oracle_parse)
    refined = refine_model(oracle_parse, max_splits=8)
    print(
        f"\ninitial model: {initial.n_states} states, "
        f"{initial.n_transitions} edges"
    )
    print(
        f"refined model: {refined.model.n_states} states after "
        f"{refined.splits} context splits "
        f"({len(refined.unsatisfied)} NFby invariants still open)"
    )

    # Same pipeline through a noisy parser: the model layout changes.
    slct_parse = table3_parser_factory("SLCT").parse(dataset.records)
    slct_model = build_system_model(slct_parse)
    print(
        f"\nSLCT-parsed model: {slct_model.n_states} states, "
        f"{slct_model.n_transitions} edges "
        f"(edge difference vs oracle: "
        f"{initial.edge_difference(slct_model)})"
    )


if __name__ == "__main__":
    main()
