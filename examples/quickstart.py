"""Quickstart: generate logs, parse them, inspect the two output files.

This walks the standard contract of §II-C end to end:

    raw log file  ->  parser  ->  log events + structured logs

Run:  python examples/quickstart.py
"""

from repro import (
    Iplom,
    f_measure,
    generate_dataset,
    get_dataset_spec,
)
from repro.datasets import write_parse_result, write_raw_log


def main() -> None:
    # 1. Generate a synthetic HDFS log (the real dataset's 29 event
    #    templates with exact ground-truth labels).
    spec = get_dataset_spec("HDFS")
    dataset = generate_dataset(spec, 2_000, seed=42)
    write_raw_log(dataset.records, "quickstart_hdfs.log")
    print(f"generated {len(dataset)} raw {spec.name} log messages")

    # 2. Parse with IPLoM — the paper's most accurate parser overall.
    parser = Iplom()
    result = parser.parse(dataset.records)
    print(f"{parser.name} extracted {len(result.events)} log events")

    # 3. The parser's two outputs: events file + structured log file.
    events_path, structured_path = write_parse_result(
        result, "quickstart_hdfs"
    )
    print(f"wrote {events_path} and {structured_path}")

    print("\nfirst five extracted events:")
    for event in result.events[:5]:
        print(f"  {event.event_id}: {event.template}")

    print("\nfirst five structured lines:")
    for structured in list(result.structured())[:5]:
        print(
            f"  line {structured.line_no}: {structured.event_id}  "
            f"<- {structured.record.content[:60]}"
        )

    # 4. Score the parse against the generator's ground truth with the
    #    paper's metric (pairwise F-measure).
    score = f_measure(result.assignments, dataset.truth_assignments)
    print(f"\nparsing accuracy (F-measure): {score:.3f}")


if __name__ == "__main__":
    main()
