"""Reproduce the paper's Fig. 1 — overview of log parsing.

Recreates the figure's walk-through with the same HDFS block trace:
ten raw messages in, the extracted log events and the structured log
out.  A ten-line fragment is too little data for a statistical parser
(they need repeated structure), so the parsing step here is the
template-matching oracle over the HDFS bank — which is exactly what
the figure depicts: the true events of those messages.

Run:  python examples/fig1_overview.py
"""

from repro import OracleParser
from repro.common.types import records_from_contents
from repro.datasets.hdfs import HDFS_BANK

#: The ten raw messages of Fig. 1 (timestamps shown separately there).
RAW_MESSAGES = [
    "BLOCK* NameSystem.allocateBlock: /user/root/randtxt4/_temporary/"
    "_task_200811101024_0010_m_000011_0/part-00011. blk_904791815409399662",
    "Receiving block blk_904791815409399662 src: /10.251.43.210:55700 "
    "dest: /10.251.43.210:50010",
    "Receiving block blk_904791815409399662 src: /10.250.18.114:52231 "
    "dest: /10.250.18.114:50010",
    "PacketResponder 0 for block blk_904791815409399662 terminating",
    "Received block blk_904791815409399662 of size 67108864 from "
    "/10.250.18.114",
    "PacketResponder 1 for block blk_904791815409399662 terminating",
    "Received block blk_904791815409399662 of size 67108864 from "
    "/10.251.43.210",
    "BLOCK* NameSystem.addStoredBlock: blockMap updated: "
    "10.251.43.210:50010 is added to blk_904791815409399662 size 67108864",
    "BLOCK* NameSystem.addStoredBlock: blockMap updated: "
    "10.250.18.114:50010 is added to blk_904791815409399662 size 67108864",
    "Verification succeeded for blk_904791815409399662",
]

TIMESTAMPS = [
    "2008-11-11 03:40:58", "2008-11-11 03:40:59", "2008-11-11 03:41:01",
    "2008-11-11 03:41:48", "2008-11-11 03:41:48", "2008-11-11 03:41:48",
    "2008-11-11 03:41:48", "2008-11-11 03:41:48", "2008-11-11 03:41:48",
    "2008-11-11 08:30:54",
]


def main() -> None:
    print("Raw log messages:")
    for timestamp, message in zip(TIMESTAMPS, RAW_MESSAGES):
        print(f"  {timestamp} {message[:70]}")

    records = records_from_contents(RAW_MESSAGES)
    parser = OracleParser(truth_templates=HDFS_BANK.truth_templates())
    result = parser.parse(records)

    # Renumber events by first appearance, matching the figure.
    display: dict[str, str] = {}
    for event_id in result.assignments:
        display.setdefault(event_id, f"Event{len(display) + 1}")

    print("\nLog events:")
    for event_id, label in display.items():
        print(f"  {label}  {result.template_of(event_id)}")

    print("\nStructured logs:")
    for structured, timestamp in zip(result.structured(), TIMESTAMPS):
        print(f"  {structured.line_no + 1:2d}  {timestamp}  "
              f"{display[structured.event_id]}")


if __name__ == "__main__":
    main()
