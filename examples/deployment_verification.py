"""Deployment verification by event-sequence comparison (§III-A).

Shang et al. compare the event sequences an application produced in a
small test deployment against those after cloud deployment; only novel
sequences go to a human.  This example builds a "pseudo-cloud" HDFS run
and a "production" run with extra injected failures, parses both, and
reports the sequence delta — first with the ground-truth parser, then
with SLCT, showing how parsing errors destroy the review reduction.

Run:  python examples/deployment_verification.py
"""

from repro import OracleParser, generate_hdfs_sessions
from repro.evaluation.mining_impact import table3_parser_factory
from repro.mining.verification import compare_deployments


def main() -> None:
    # Reference (pseudo-cloud) run: small, healthy.
    reference = generate_hdfs_sessions(400, seed=1, anomaly_rate=0.0)
    # Deployment run: bigger, with real failures mixed in.
    deployment = generate_hdfs_sessions(1_200, seed=2, anomaly_rate=0.05)
    n_bad = len(deployment.anomaly_blocks)
    print(
        f"reference: {len(reference.labels)} blocks; deployment: "
        f"{len(deployment.labels)} blocks with {n_bad} anomalous\n"
    )

    for label, parser_factory in [
        ("GroundTruth", OracleParser),
        ("SLCT", lambda: table3_parser_factory("SLCT")),
    ]:
        parser = parser_factory()
        delta = compare_deployments(
            parser.parse(reference.records),
            parser.parse(deployment.records),
            signature="set",
        )
        print(
            f"{label:12s} sequences to review: {delta.n_reported:5d} "
            f"(reduction ratio {delta.reduction_ratio:.2f})"
        )

    print(
        "\nA perfect parser reports only genuinely novel behaviour; a "
        "noisy parser invents sequence variants and floods the review "
        "queue — the paper's argument for why this task needs accurate "
        "parsing."
    )


if __name__ == "__main__":
    main()
