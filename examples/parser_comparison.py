"""Compare all four parsers on each dataset, raw vs. preprocessed.

A miniature of Table II: 1k-message samples, one run per cell (use the
benchmark harness for the averaged, full-size version).  Prints the
F-measure grid and each parser's wall-clock time, illustrating
Findings 1–3 interactively.

Run:  python examples/parser_comparison.py [dataset ...]
"""

import sys
import time

from repro import DATASET_NAMES, PARSER_NAMES
from repro.evaluation.accuracy import evaluate_accuracy


def main() -> None:
    datasets = sys.argv[1:] or DATASET_NAMES
    header = f"{'parser':8s} {'dataset':10s} {'raw':>6s} {'prep':>6s} {'time':>7s}"
    print(header)
    print("-" * len(header))
    for dataset in datasets:
        for parser in PARSER_NAMES:
            sample = 400 if parser == "LKE" else 1_000
            started = time.perf_counter()
            raw = evaluate_accuracy(
                parser, dataset, sample_size=sample, runs=1, seed=1
            )
            try:
                preprocessed = evaluate_accuracy(
                    parser,
                    dataset,
                    sample_size=sample,
                    preprocess=True,
                    runs=1,
                    seed=1,
                )
                prep = f"{preprocessed.mean_f_measure:.2f}"
            except Exception:
                prep = "-"  # Proxifier has no preprocessing rules
            elapsed = time.perf_counter() - started
            print(
                f"{parser:8s} {dataset:10s} "
                f"{raw.mean_f_measure:6.2f} {prep:>6s} {elapsed:6.1f}s"
            )


if __name__ == "__main__":
    main()
