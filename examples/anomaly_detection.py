"""HDFS anomaly detection with swappable parsers (the paper's RQ3).

Reproduces the §III-B pipeline — parse, event count matrix, TF-IDF,
PCA with the Q-statistic threshold — on simulated HDFS block sessions,
once with the ground-truth parser and once with SLCT, and shows how
parser choice changes what the detector reports (Table III in
miniature).

Run:  python examples/anomaly_detection.py
"""

from repro import OracleParser, detect_anomalies, generate_hdfs_sessions
from repro.evaluation.mining_impact import (
    score_detection,
    table3_parser_factory,
)


def report(name, parsed, dataset):
    detection = detect_anomalies(parsed)
    reported, detected, false_alarms = score_detection(
        detection.flagged_sessions, dataset.labels
    )
    total = len(dataset.anomaly_blocks)
    print(
        f"{name:12s} events={len(parsed.events):4d} "
        f"k={detection.model.fitted_components:2d} "
        f"Q_alpha={detection.threshold:8.2f} "
        f"reported={reported:4d} detected={detected:4d}/{total} "
        f"false_alarms={false_alarms}"
    )
    return detection


def main() -> None:
    # 3,000 block sessions at the paper's ~2.9% anomaly rate.
    dataset = generate_hdfs_sessions(3_000, seed=7)
    print(
        f"simulated {len(dataset)} log lines over {len(dataset.labels)} "
        f"blocks ({len(dataset.anomaly_blocks)} true anomalies)\n"
    )

    oracle = OracleParser().parse(dataset.records)
    detection = report("GroundTruth", oracle, dataset)

    slct = table3_parser_factory("SLCT").parse(dataset.records)
    report("SLCT", slct, dataset)

    # Peek at what the detector saw for a flagged block.
    if detection.flagged_sessions:
        block = sorted(detection.flagged_sessions)[0]
        scenario = dataset.scenarios[block]
        print(f"\nexample flagged block {block} (scenario: {scenario}):")
        for record in dataset.records:
            if record.session_id == block:
                print(f"  [{record.truth_event}] {record.content[:70]}")


if __name__ == "__main__":
    main()
