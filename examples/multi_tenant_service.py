"""Multi-tenant ingestion: one noisy tenant cannot hurt its neighbors.

The paper's mining result (Finding 6) makes parse output integrity a
hard requirement: on HDFS, a parser dropping from 99% to 82% accuracy
collapses PCA anomaly detection from 64% to 11%.  A shared ingestion
service therefore has one invariant above all others — whatever one
log producer does, the *other* producers' parsed artifacts must come
out exactly as they would have alone.

This example runs the :mod:`repro.service` stack fully in-process
(no sockets, so it is deterministic and instant) against three
tenants:

* ``web`` and ``db`` send well-formed HDFS-style lines;
* ``legacy`` floods the service with lines carrying control bytes —
  the classic misbehaving appliance.

Every tenant routes to its own supervised shard: its own parser
engine, template cache, quarantine file, and checkpoint.  The flood
lands in ``legacy``'s quarantine, stamped ``tenant:legacy``; ``web``
and ``db`` finish untouched.  The drain then finalizes a per-tenant
manifest — the same artifact ``repro verify-run`` certifies — and the
example re-parses ``web``'s lines standalone to show the shared-service
output is byte-identical to a private run.

Artifacts land under ``service_data/`` in the working directory.

Run:  python examples/multi_tenant_service.py
"""

from repro.parsers import make_parser
from repro.resilience.durability import read_jsonl_payloads
from repro.service import IngestionService, replay_lines

DATA_DIR = "service_data"
CLEAN_TENANTS = ("web", "db")


def factory():
    return make_parser("Drain")


def tenant_lines(tenant: str, n: int) -> list[str]:
    return [
        f"{tenant}\tConnection from 10.0.{i % 8}.{i % 5} "
        f"port {4000 + i} established"
        for i in range(n)
    ]


def flood_lines(n: int) -> list[str]:
    return [f"legacy\tgarbled \x00\x07 frame {i}" for i in range(n)]


def main() -> None:
    service = IngestionService(DATA_DIR, factory)
    lines = (
        tenant_lines("web", 40)
        + flood_lines(25)
        + tenant_lines("db", 30)
    )
    outcomes = replay_lines(service, lines, origin="<example>")
    summary = service.drain()

    print("outcomes:", dict(sorted(outcomes.items())))
    for tenant in sorted(summary["tenants"]):
        shard = summary["tenants"][tenant]
        print(
            f"  {tenant}: lines={shard['lines']} "
            f"accepted={shard['accepted']} -> {shard['manifest']}"
        )

    quarantined = read_jsonl_payloads(
        f"{DATA_DIR}/legacy/out.quarantine.jsonl"
    )
    sources = {record["source"] for record in quarantined}
    print(
        f"legacy quarantine: {len(quarantined)} record(s), "
        f"provenance {sorted(sources)}"
    )
    assert sources == {"tenant:legacy"}

    # Isolation, demonstrated: web's shared-service output equals a
    # private parse of the same lines.
    private = factory().parse_contents(
        [line.split("\t", 1)[1] for line in tenant_lines("web", 40)]
    )
    with open(f"{DATA_DIR}/web/out.structured", encoding="utf-8") as handle:
        shared_rows = handle.read().splitlines()
    assert len(shared_rows) == len(private.records) == 40
    print("web output identical to a private run: yes")


if __name__ == "__main__":
    main()
