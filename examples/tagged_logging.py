"""Event-ID logging practice (§V direction 2) demonstrated end to end.

The paper closes by suggesting that developers record event ids in log
messages at write time, turning parsing into a trivial lookup.  This
example simulates the before/after: the same HDFS log parsed
statistically (IPLoM) vs. read back from event-id tags, with metrics
for both.

Run:  python examples/tagged_logging.py
"""

from repro import Iplom, generate_dataset, get_dataset_spec
from repro.evaluation.metrics import summary
from repro.parsers import TaggedLogParser, tag_records


def main() -> None:
    dataset = generate_dataset(get_dataset_spec("HDFS"), 5_000, seed=9)
    truth = dataset.truth_assignments

    print("before (plain logs, statistical parsing with IPLoM):")
    parsed = Iplom().parse(dataset.records)
    for metric, value in summary(parsed.assignments, truth).items():
        print(f"  {metric:20s} {value:.3f}")
    print(f"  events found: {len(parsed.events)} (29 true)")

    print("\nafter (event-id tags written at the log statement):")
    tagged = tag_records(dataset.records)
    print(f"  sample line: {tagged[0].content[:72]}")
    result = TaggedLogParser().parse(tagged)
    for metric, value in summary(result.assignments, truth).items():
        print(f"  {metric:20s} {value:.3f}")
    print(f"  events found: {len(result.events)} (29 true)")

    print(
        "\nTagged logs make every downstream mining task start from the "
        "exact event inventory — the paper's 'good logging practice from "
        "the perspective of log mining'."
    )


if __name__ == "__main__":
    main()
