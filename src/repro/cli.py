"""Command-line interface: ``repro-logparse`` / ``python -m repro``.

Subcommands:

* ``generate`` — write a synthetic dataset to a raw log file.
* ``parse`` — parse a raw log file with a chosen parser, writing the
  standard ``.events`` / ``.structured`` outputs of §II-C.
* ``evaluate`` — F-measure of a parser on a sampled dataset (Table II
  style, one cell).
* ``score`` — a parser×dataset score table: labeled F-measure by
  default, or label-free cohesion/separation with ``--label-free``
  (no ground truth consulted — usable on real production traffic).
* ``mine`` — run PCA anomaly detection on simulated HDFS sessions with
  a chosen parser (Table III style, one row).
* ``stream`` — parse a raw log file or synthetic dataset incrementally
  through the template-cache streaming engine, reporting cache hit
  rate and throughput (§V / Finding 3 remedy).  Supports per-record
  error policies with quarantine, deterministic fault injection, and
  checkpoint/resume.
* ``supervise`` — parse under the fault-tolerant supervision runtime:
  a fallback chain of parsers with deadlines, retries, and circuit
  breakers, input screening into a quarantine file, and optional
  injected faults to demonstrate the recovery paths.
* ``soak`` — replay a deterministic chaos-soak scenario (memory
  pressure, slow consumer, deadline squeeze) against the
  resource-budgeted degradation runtime and audit the graceful-
  degradation contract.
* ``serve`` — run the long-lived multi-tenant ingestion service: a
  TCP line front end (or ``--replay`` file adapter) routing
  ``tenant<TAB>content`` lines to per-tenant supervised parser shards
  with their own quarantine, checkpoint, and circuit breaker, under
  per-tenant rate limits and a global admission budget.  SIGINT or
  SIGTERM triggers a graceful drain: every tenant's outputs are
  flushed through the prefix policy (byte-identical to batch),
  checkpoints and per-tenant manifests are committed, and the process
  exits 0.  With ``--protocol v2`` the TCP front end also negotiates
  the acked wire protocol: sequence-tagged lines, cumulative per-
  tenant acknowledgements sent only after durable ownership, and
  per-client dedup windows that make redelivery safe (v1 clients
  keep working unchanged).
* ``send`` — the producer half of protocol v2: spool
  ``tenant<TAB>content`` lines durably (framed JSONL), transmit them
  sequence-tagged, and resend the unacknowledged suffix across
  reconnects until the server owns every line exactly once.  An
  interrupted send exits 4 with its lines still spooled; rerunning
  with the same ``--spool`` (and no input) finishes the delivery.
* ``report`` — render a human-readable post-mortem from the telemetry
  artifacts (``--metrics-out`` / ``--trace-out`` / ``--events-out``)
  a previous run exported.
* ``verify-run`` — re-hash a run's artifacts against the integrity
  manifest it committed with ``--manifest-out``; optionally diff two
  manifests to certify a resumed run reconverged with a fault-free
  one.  A single flipped byte in any covered artifact exits with the
  data-error code (3).

Every artifact the CLI writes goes through the durability layer
(:mod:`repro.resilience.durability`): whole-file exports are atomic
(temp file, fsync, rename, parent-dir fsync) and append-streaming
JSONL (quarantine, event timeline) is length+CRC32-framed with
torn-tail recovery, so no crash or disk fault leaves a half-written
artifact behind.

``stream``, ``supervise``, and ``soak`` all run with the unified
telemetry layer attached: every summary they print is read back from
the metrics registry (one source of truth, no private arithmetic),
and ``--metrics-out`` / ``--trace-out`` / ``--events-out`` export the
registry (Prometheus text or JSON), the span trace (JSONL or Chrome
``trace_event``), and the structured event timeline.

``stream`` additionally accepts resource budgets (``--budget-mem``,
``--budget-wall``, ``--budget-queue``): when any is given the run goes
through the degradation ladder (``--ladder``), stepping down to
cheaper parsers instead of dying when a soft limit is breached.

Exit codes: 0 success, 1 verification failure, 2 configuration error,
3 data error, 4 runtime failure.  ``stream``/``soak`` interrupted by
SIGINT/SIGTERM still finalize their checkpoint/telemetry/manifest
artifacts and exit ``128 + signum`` (the shell convention); ``serve``
treats those signals as the drain request and exits 0 after a clean
drain.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time
import urllib.error
import urllib.request
from contextlib import nullcontext
from functools import partial

from repro.common.errors import (
    DatasetError,
    EvaluationError,
    IntegrityError,
    MiningError,
    ParserConfigurationError,
    ReproError,
    ValidationError,
)
from repro.datasets import (
    DATASET_NAMES,
    generate_dataset,
    generate_hdfs_sessions,
    get_dataset_spec,
    iter_dataset,
    iter_raw_log,
    read_raw_log,
    write_parse_result,
    write_raw_log,
)
from repro.degradation import (
    SCENARIO_KINDS,
    BudgetMonitor,
    DegradationLadder,
    DegradedSession,
    ResourceBudget,
    SoakScenario,
    default_ladder,
    run_soak,
)
from repro.evaluation import evaluate_accuracy, evaluate_mining_impact
from repro.observability import (
    AlertEngine,
    Telemetry,
    TelemetryServer,
    default_rules,
    export_metrics,
    render_run_report,
    summary_from_registry,
)
from repro.evaluation.mining_impact import table3_parser_factory
from repro.parsers import PARSER_NAMES, default_preprocessor, make_parser
from repro.resilience import (
    ErrorPolicy,
    FaultyIO,
    FlakyFactory,
    ParserSupervisor,
    QuarantineSink,
    RetryPolicy,
    RunManifest,
    corrupt_records,
    crash_storm_schedule,
    diff_manifests,
    ensure_artifact,
    io_fault_schedule,
    load_checkpoint,
    network_fault_schedule,
    reconcile_jsonl,
    restore_accumulator,
    restore_streaming_parser,
    save_checkpoint,
    screen_records,
    verify_manifest,
)
from repro.service import (
    AdmissionController,
    DurableSender,
    IngestionService,
    LineServer,
    PROTOCOL_V1,
    PROTOCOL_V2,
    PROTOCOLS,
    ShutdownRequested,
    graceful_signals,
    replay_lines,
    supervisor_status,
)
from repro.resilience.durability import (
    CODEC_FRAMED,
    CODEC_LINES,
    CODEC_OPAQUE,
)
from repro.streaming import ParseSession, StreamingParser, diff_results

#: Exit codes per error family (the argparse convention reserves 2 for
#: usage errors, which configuration errors generalize).
EXIT_CONFIG = 2
EXIT_DATA = 3
EXIT_RUNTIME = 4


def exit_code_for(error: ReproError) -> int:
    """Map a :class:`ReproError` onto the CLI's exit-code contract.

    Configuration/usage problems exit 2, bad input data exits 3, and
    runtime failures (timeouts, crashed workers, broken checkpoints,
    exhausted fallback chains) exit 4.
    """
    if isinstance(
        error,
        (
            ParserConfigurationError,
            ValidationError,
            EvaluationError,
            MiningError,
        ),
    ):
        return EXIT_CONFIG
    if isinstance(error, (DatasetError, IntegrityError)):
        return EXIT_DATA
    return EXIT_RUNTIME


def _add_generate(subparsers) -> None:
    cmd = subparsers.add_parser(
        "generate", help="generate a synthetic dataset into a raw log file"
    )
    cmd.add_argument("dataset", choices=DATASET_NAMES)
    cmd.add_argument("output", help="raw log file to write")
    cmd.add_argument("--size", type=int, default=2000)
    cmd.add_argument("--seed", type=int, default=None)


def _add_parse(subparsers) -> None:
    cmd = subparsers.add_parser(
        "parse", help="parse a raw log file into events + structured logs"
    )
    cmd.add_argument("parser", choices=PARSER_NAMES)
    cmd.add_argument("input", help="raw log file to parse")
    cmd.add_argument(
        "--output-stem",
        default=None,
        help="stem for .events/.structured outputs (default: input path)",
    )
    cmd.add_argument(
        "--preprocess-dataset",
        default=None,
        help="apply this dataset's domain-knowledge preprocessing rules",
    )
    cmd.add_argument(
        "--groups",
        type=int,
        default=50,
        help="LogSig only: number of signature groups",
    )
    cmd.add_argument("--support", type=float, default=0.005, help="SLCT only")
    cmd.add_argument(
        "--sim-threshold",
        type=float,
        default=0.4,
        help="Drain only: template-merge similarity threshold",
    )
    cmd.add_argument(
        "--depth", type=int, default=4, help="Drain only: fixed tree depth"
    )
    cmd.add_argument("--seed", type=int, default=None)


def _add_evaluate(subparsers) -> None:
    cmd = subparsers.add_parser(
        "evaluate", help="parsing accuracy (F-measure) on a sampled dataset"
    )
    cmd.add_argument("parser", choices=PARSER_NAMES)
    cmd.add_argument("dataset", choices=DATASET_NAMES)
    cmd.add_argument("--sample-size", type=int, default=2000)
    cmd.add_argument("--preprocess", action="store_true")
    cmd.add_argument("--runs", type=int, default=None)
    cmd.add_argument("--seed", type=int, default=None)


def _add_metrics(subparsers) -> None:
    cmd = subparsers.add_parser(
        "metrics",
        help="all clustering metrics of a parser on a sampled dataset",
    )
    cmd.add_argument("parser", choices=PARSER_NAMES)
    cmd.add_argument("dataset", choices=DATASET_NAMES)
    cmd.add_argument("--sample-size", type=int, default=2000)
    cmd.add_argument("--preprocess", action="store_true")
    cmd.add_argument("--seed", type=int, default=None)


def _add_score(subparsers) -> None:
    cmd = subparsers.add_parser(
        "score",
        help="score parsers across datasets: labeled F-measure, or "
        "label-free cohesion/separation with --label-free",
    )
    cmd.add_argument(
        "--label-free",
        action="store_true",
        help="score intrinsically (cohesion/separation), no ground "
        "truth consulted",
    )
    cmd.add_argument(
        "--parsers",
        default=",".join(PARSER_NAMES),
        help="comma-separated parser names (default: all registry "
        "parsers of the expanded comparison)",
    )
    cmd.add_argument(
        "--datasets",
        default=",".join(DATASET_NAMES),
        help="comma-separated dataset names (default: all five)",
    )
    cmd.add_argument("--sample-size", type=int, default=1000)
    cmd.add_argument("--preprocess", action="store_true")
    cmd.add_argument("--seed", type=int, default=None)


def _add_tune(subparsers) -> None:
    cmd = subparsers.add_parser(
        "tune",
        help="grid-search parser parameters on a 2k sample (Finding 4)",
    )
    cmd.add_argument("parser", choices=PARSER_NAMES)
    cmd.add_argument("dataset", choices=DATASET_NAMES)
    cmd.add_argument("--sample-size", type=int, default=2000)
    cmd.add_argument("--seed", type=int, default=None)


def _add_mine(subparsers) -> None:
    cmd = subparsers.add_parser(
        "mine",
        help="PCA anomaly detection over simulated HDFS block sessions",
    )
    cmd.add_argument(
        "parser", choices=[*PARSER_NAMES, "GroundTruth"]
    )
    cmd.add_argument("--blocks", type=int, default=2000)
    cmd.add_argument("--seed", type=int, default=None)
    cmd.add_argument("--alpha", type=float, default=0.001)


def _add_stream(subparsers) -> None:
    cmd = subparsers.add_parser(
        "stream",
        help="parse incrementally through the streaming engine",
    )
    cmd.add_argument("parser", choices=PARSER_NAMES)
    cmd.add_argument(
        "input",
        nargs="?",
        default=None,
        help="raw log file to stream (omit when using --dataset)",
    )
    cmd.add_argument(
        "--dataset",
        choices=DATASET_NAMES,
        default=None,
        help="stream a synthetic dataset instead of a file",
    )
    cmd.add_argument(
        "--size", type=int, default=100_000,
        help="lines to generate with --dataset",
    )
    cmd.add_argument(
        "--flush-policy",
        choices=["delta", "prefix"],
        default="delta",
        help="delta: parse only misses (fast, approximate); "
        "prefix: re-parse the retained prefix (identical to batch)",
    )
    cmd.add_argument("--flush-size", type=int, default=512)
    cmd.add_argument("--cache-capacity", type=int, default=4096)
    cmd.add_argument("--max-retries", type=int, default=3)
    cmd.add_argument(
        "--workers", type=int, default=1,
        help="flush through a ChunkedParallelParser with this many processes",
    )
    cmd.add_argument("--chunk-size", type=int, default=10_000)
    cmd.add_argument(
        "--report-every", type=int, default=0,
        help="print a progress line every N streamed lines",
    )
    cmd.add_argument(
        "--no-retain",
        action="store_true",
        help="drop per-line state for bounded memory (no outputs/verify)",
    )
    cmd.add_argument(
        "--verify",
        action="store_true",
        help="batch-parse the same lines afterwards and diff the results",
    )
    cmd.add_argument(
        "--mine",
        action="store_true",
        help="run PCA anomaly detection on the live session-event matrix",
    )
    cmd.add_argument(
        "--output-stem",
        default=None,
        help="write .events/.structured outputs of the finalized parse",
    )
    cmd.add_argument(
        "--preprocess-dataset",
        default=None,
        help="apply this dataset's domain-knowledge preprocessing rules",
    )
    cmd.add_argument(
        "--groups", type=int, default=50, help="LogSig only"
    )
    cmd.add_argument("--support", type=float, default=0.005, help="SLCT only")
    cmd.add_argument(
        "--sim-threshold",
        type=float,
        default=0.4,
        help="Drain only: template-merge similarity threshold",
    )
    cmd.add_argument(
        "--depth", type=int, default=4, help="Drain only: fixed tree depth"
    )
    cmd.add_argument("--seed", type=int, default=None)
    cmd.add_argument(
        "--max-pending",
        type=int,
        default=None,
        help="backpressure: bound the miss buffer at this many records",
    )
    cmd.add_argument(
        "--overflow",
        choices=["block", "shed", "sample"],
        default="block",
        help="with --max-pending: block (flush synchronously), shed "
        "(drop overflowing misses), or sample (keep every k-th)",
    )
    cmd.add_argument(
        "--budget-mem",
        type=float,
        default=None,
        metavar="MB",
        help="hard memory budget in MB (soft limit at half); enables "
        "the degradation ladder",
    )
    cmd.add_argument(
        "--budget-wall",
        type=float,
        default=None,
        metavar="SECONDS",
        help="hard wall-clock budget (soft limit at half); enables "
        "the degradation ladder",
    )
    cmd.add_argument(
        "--budget-queue",
        type=float,
        default=None,
        metavar="DEPTH",
        help="hard miss-queue budget (soft limit at half); enables "
        "the degradation ladder",
    )
    cmd.add_argument(
        "--ladder",
        default=None,
        help="comma-separated degradation rungs, most faithful first "
        "(default: from PARSER down the standard ladder)",
    )
    cmd.add_argument(
        "--check-every",
        type=int,
        default=500,
        help="records between budget checks under a budget",
    )
    _add_hardening_flags(cmd)
    _add_telemetry_flags(cmd)
    _add_endpoint_flag(cmd)
    cmd.add_argument(
        "--checkpoint",
        default=None,
        help="checkpoint file: written every --checkpoint-every records "
        "(and read back with --resume)",
    )
    cmd.add_argument(
        "--checkpoint-every",
        type=int,
        default=10_000,
        help="records between checkpoint snapshots",
    )
    cmd.add_argument(
        "--resume",
        action="store_true",
        help="restore engine state from --checkpoint and skip the "
        "records it already consumed",
    )


def _add_hardening_flags(cmd) -> None:
    """Input-hardening / fault-injection flags shared by stream+supervise."""
    cmd.add_argument(
        "--error-policy",
        choices=["raise", "skip", "quarantine"],
        default=None,
        help="what to do with undecodable/oversized/binary records "
        "(default: raise; quarantine when --quarantine-path or "
        "--faults is given)",
    )
    cmd.add_argument(
        "--quarantine-path",
        default=None,
        help="append rejected records (with provenance) to this JSONL file",
    )
    cmd.add_argument(
        "--max-record-len",
        type=int,
        default=None,
        help="reject records whose content exceeds this many characters",
    )
    cmd.add_argument(
        "--faults",
        type=int,
        default=None,
        metavar="SEED",
        help="deterministically corrupt the input stream with this seed",
    )
    cmd.add_argument(
        "--fault-every",
        type=int,
        default=20,
        help="with --faults: corrupt every N-th record",
    )
    cmd.add_argument(
        "--io-faults",
        type=int,
        default=None,
        metavar="SEED",
        help="inject a deterministic schedule of IO faults (EIO, "
        "ENOSPC, torn writes, fsync failures) into artifact writes; "
        "writers retry and divert before giving up",
    )


def _resolve_policy(
    args, telemetry=None, io=None
) -> tuple[str | None, "QuarantineSink | None"]:
    """Resolve the hardening flags into (policy mode, sink)."""
    mode = args.error_policy
    if mode is None and (
        args.quarantine_path is not None or args.faults is not None
    ):
        mode = "quarantine"
    sink = None
    if mode is not None:
        sink = QuarantineSink(
            args.quarantine_path, telemetry=telemetry, io=io
        )
    return mode, sink


def _make_io(args) -> "FaultyIO | None":
    """Build the scripted fault-injecting IO layer from --io-faults."""
    seed = getattr(args, "io_faults", None)
    if seed is None:
        return None
    return FaultyIO(io_fault_schedule(seed))


def _add_telemetry_flags(cmd) -> None:
    """Telemetry-export flags shared by stream/supervise/soak."""
    cmd.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="export the metrics registry on exit (.json for a JSON "
        "snapshot with the time-series ring, anything else for "
        "Prometheus text exposition)",
    )
    cmd.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="export the span trace on exit (see --trace-format)",
    )
    cmd.add_argument(
        "--trace-format",
        choices=["jsonl", "chrome"],
        default="jsonl",
        help="trace export format: one JSON span per line, or a Chrome "
        "trace_event file for chrome://tracing / Perfetto",
    )
    cmd.add_argument(
        "--events-out",
        default=None,
        metavar="PATH",
        help="stream the structured event timeline (quarantine records, "
        "ladder steps, fallback reports, ...) to this JSONL file",
    )
    cmd.add_argument(
        "--manifest-out",
        default=None,
        metavar="PATH",
        help="commit an integrity manifest (SHA-256, size, record "
        "count of every artifact this run wrote) atomically at run "
        "end; check it later with `repro-logparse verify-run`",
    )


def _add_endpoint_flag(cmd) -> None:
    """The live scrape endpoint flag (long-running commands only)."""
    cmd.add_argument(
        "--telemetry-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve GET /metrics, /healthz, and /status over HTTP on "
        "this port for the lifetime of the run (0 picks a free port, "
        "published on stdout as `telemetry on URL`)",
    )


def _start_endpoint(args, telemetry, *, status=None, health=None):
    """Start the scrape endpoint when --telemetry-port asked for one."""
    port = getattr(args, "telemetry_port", None)
    if port is None:
        return None
    server = TelemetryServer(
        telemetry.metrics, port=port, status=status, health=health
    )
    server.start()
    print(f"telemetry on {server.url}", flush=True)
    return server


def _make_telemetry(args, trace_id: str, io=None) -> Telemetry:
    """One telemetry handle per command invocation.

    Always built — the registry is the single source of truth behind
    every summary line — but files are only written when the export
    flags ask for them.
    """
    return Telemetry.create(
        trace_id=trace_id,
        events_path=getattr(args, "events_out", None),
        io=io,
    )


def _export_telemetry(args, telemetry: Telemetry, artifacts=(), io=None) -> None:
    """Write whichever artifacts the export flags requested.

    *artifacts* is a list of ``(path, codec)`` pairs the command itself
    wrote (outputs, quarantine, checkpoint); together with the
    telemetry exports they form the manifest committed by
    ``--manifest-out``.  The manifest itself is written last, and
    atomically, so it never describes files that do not yet exist.
    """
    telemetry.metrics.snapshot()
    written = []
    if args.metrics_out:
        export_metrics(telemetry.metrics, args.metrics_out, io=io)
        written.append(args.metrics_out)
    if args.trace_out:
        telemetry.tracer.export(args.trace_out, fmt=args.trace_format, io=io)
        written.append(args.trace_out)
    if args.events_out:
        # The event log appends lazily; an uneventful run should still
        # leave a (valid, empty) artifact where the flag pointed — but
        # never truncate a timeline a previous life already wrote.
        ensure_artifact(args.events_out, io=io)
        written.append(args.events_out)
    telemetry.close()
    manifest_out = getattr(args, "manifest_out", None)
    if manifest_out:
        manifest = RunManifest(
            run={
                "command": args.command,
                "seed": getattr(args, "seed", None),
            }
        )
        entries = list(artifacts)
        if args.metrics_out:
            entries.append((args.metrics_out, CODEC_LINES))
        if args.trace_out:
            entries.append((args.trace_out, CODEC_LINES))
        if args.events_out:
            entries.append((args.events_out, CODEC_FRAMED))
        for path, codec in entries:
            if path and os.path.exists(path):
                manifest.add(path, codec=codec)
        manifest.write(manifest_out, io=io)
        written.append(manifest_out)
    if written:
        print(f"telemetry: wrote {', '.join(written)}")


def _add_supervise(subparsers) -> None:
    cmd = subparsers.add_parser(
        "supervise",
        help="parse under the fault-tolerant supervision runtime "
        "(fallback chain, deadlines, retries, circuit breakers)",
    )
    cmd.add_argument(
        "input",
        nargs="?",
        default=None,
        help="raw log file to parse (omit when using --dataset)",
    )
    cmd.add_argument(
        "--dataset",
        choices=DATASET_NAMES,
        default=None,
        help="parse a synthetic dataset instead of a file",
    )
    cmd.add_argument(
        "--size", type=int, default=2000,
        help="lines to generate with --dataset",
    )
    cmd.add_argument(
        "--chain",
        default="IPLoM,SLCT",
        help="comma-separated fallback chain, preferred parser first",
    )
    cmd.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="wall-clock deadline per parse attempt (seconds)",
    )
    cmd.add_argument(
        "--retries",
        type=int,
        default=3,
        help="total attempts per parser before falling back",
    )
    cmd.add_argument(
        "--retry-delay",
        type=float,
        default=0.01,
        help="base backoff delay between retries (seconds)",
    )
    _add_hardening_flags(cmd)
    _add_telemetry_flags(cmd)
    cmd.add_argument(
        "--fault-parser",
        default=None,
        metavar="NAME",
        help="wrap this chain entry in a flaky factory that fails first",
    )
    cmd.add_argument(
        "--fault-parser-fails",
        type=int,
        default=2,
        help="with --fault-parser: how many parses crash before recovery",
    )
    cmd.add_argument(
        "--fault-parser-hang",
        type=float,
        default=0.0,
        help="with --fault-parser: stall instead of crashing (seconds)",
    )
    cmd.add_argument(
        "--output-stem",
        default=None,
        help="write .events/.structured outputs of the winning parse",
    )
    cmd.add_argument(
        "--verify",
        action="store_true",
        help="re-parse the clean records with the winning parser "
        "un-supervised and diff the results",
    )
    cmd.add_argument(
        "--preprocess-dataset",
        default=None,
        help="apply this dataset's domain-knowledge preprocessing rules",
    )
    cmd.add_argument(
        "--groups", type=int, default=50, help="LogSig only"
    )
    cmd.add_argument("--support", type=float, default=0.005, help="SLCT only")
    cmd.add_argument(
        "--sim-threshold",
        type=float,
        default=0.4,
        help="Drain only: template-merge similarity threshold",
    )
    cmd.add_argument(
        "--depth", type=int, default=4, help="Drain only: fixed tree depth"
    )
    cmd.add_argument("--seed", type=int, default=None)


def _add_soak(subparsers) -> None:
    cmd = subparsers.add_parser(
        "soak",
        help="replay a deterministic chaos-soak scenario against the "
        "degradation runtime and audit the contract",
    )
    cmd.add_argument("scenario", choices=SCENARIO_KINDS)
    cmd.add_argument("--seed", type=int, default=7)
    cmd.add_argument("--blocks", type=int, default=40)
    cmd.add_argument(
        "--check-every", type=int, default=20,
        help="records between budget checks",
    )
    cmd.add_argument(
        "--min-transitions",
        type=int,
        default=2,
        help="ladder transitions the audit requires",
    )
    _add_telemetry_flags(cmd)


def _add_serve(subparsers) -> None:
    cmd = subparsers.add_parser(
        "serve",
        help="run the long-lived multi-tenant ingestion service",
    )
    cmd.add_argument("parser", choices=PARSER_NAMES)
    cmd.add_argument(
        "data_dir",
        help="data root; each tenant owns a subdirectory of artifacts",
    )
    cmd.add_argument("--host", default="127.0.0.1")
    cmd.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port for the line front end (0 picks a free port, "
        "published on stdout as `serving on HOST:PORT`)",
    )
    cmd.add_argument(
        "--replay",
        default=None,
        metavar="FILE",
        help="serve tenant<TAB>content lines from FILE through the "
        "same admission/routing path instead of TCP, then drain "
        "and exit",
    )
    cmd.add_argument(
        "--drain-after",
        type=int,
        default=None,
        metavar="N",
        help="drain and exit once N lines have been submitted "
        "(bounded soaks / CI; default: run until SIGINT/SIGTERM)",
    )
    cmd.add_argument(
        "--protocol",
        choices=list(PROTOCOLS),
        default=PROTOCOL_V1,
        help="wire protocol for the TCP front end: 'v1' is the "
        "fire-and-forget tenant<TAB>content stream, 'v2' adds "
        "HELLO negotiation, sequence-tagged lines, cumulative "
        "acks, and per-tenant dedup windows (exactly-once with "
        "a `send`-side spool; v1 clients still work unchanged)",
    )
    cmd.add_argument("--flush-size", type=int, default=200)
    cmd.add_argument("--cache-capacity", type=int, default=512)
    cmd.add_argument(
        "--max-pending",
        type=int,
        default=None,
        help="per-tenant backpressure: bound each shard's miss buffer",
    )
    cmd.add_argument(
        "--overflow",
        choices=["block", "shed", "sample"],
        default="block",
        help="with --max-pending: per-shard overflow policy",
    )
    cmd.add_argument(
        "--breaker-threshold",
        type=int,
        default=5,
        help="consecutive parser crashes before a tenant's circuit "
        "breaker opens (its lines then go to its quarantine)",
    )
    cmd.add_argument(
        "--rate",
        type=float,
        default=None,
        metavar="LINES_PER_S",
        help="per-tenant token-bucket admission rate",
    )
    cmd.add_argument(
        "--burst",
        type=float,
        default=None,
        help="per-tenant burst capacity (default: 2x --rate)",
    )
    cmd.add_argument(
        "--budget-mem",
        type=float,
        default=None,
        metavar="MB",
        help="global service memory budget: soft breach samples the "
        "noisiest tenant, hard breach sheds it",
    )
    cmd.add_argument(
        "--budget-queue",
        type=float,
        default=None,
        metavar="DEPTH",
        help="global summed shard-queue budget (same valve as "
        "--budget-mem)",
    )
    cmd.add_argument(
        "--admission-every",
        type=int,
        default=64,
        help="admissions between global budget re-grades",
    )
    cmd.add_argument(
        "--sample-keep",
        type=int,
        default=2,
        help="under a soft breach, admit 1 of every this-many lines "
        "from the noisiest tenant",
    )
    cmd.add_argument(
        "--tenant-budget-mem",
        type=float,
        default=None,
        metavar="MB",
        help="per-tenant memory budget: the shard runs on the "
        "degradation ladder and trips its breaker when exhausted",
    )
    cmd.add_argument(
        "--tenant-budget-queue",
        type=float,
        default=None,
        metavar="DEPTH",
        help="per-tenant queue budget (same runtime as "
        "--tenant-budget-mem)",
    )
    cmd.add_argument(
        "--ladder",
        default=None,
        help="comma-separated degradation rungs for budgeted tenants "
        "(default: from PARSER down the standard ladder)",
    )
    cmd.add_argument(
        "--check-every",
        type=int,
        default=100,
        help="records between per-tenant budget checks",
    )
    cmd.add_argument(
        "--isolation",
        choices=["thread", "process"],
        default="thread",
        help="tenant failure domain: 'thread' shares the interpreter "
        "(PR 7 behavior), 'process' runs each shard in a supervised "
        "worker subprocess that survives crashes, hangs, and poison "
        "records",
    )
    cmd.add_argument(
        "--watchdog",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="process isolation: seconds without a worker heartbeat "
        "before it is declared hung and terminated",
    )
    cmd.add_argument(
        "--checkpoint-every",
        type=int,
        default=500,
        metavar="N",
        help="process isolation: records between worker checkpoints "
        "(bounds the replay window after a crash)",
    )
    cmd.add_argument(
        "--poison-threshold",
        type=int,
        default=3,
        metavar="N",
        help="process isolation: consecutive replay deaths on one "
        "record before it is quarantined as a poison pill",
    )
    cmd.add_argument(
        "--fence-threshold",
        type=int,
        default=5,
        metavar="N",
        help="process isolation: consecutive worker deaths before "
        "the shard is fenced (no further restarts)",
    )
    cmd.add_argument(
        "--drain-timeout",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="process isolation: per-tenant drain deadline; on "
        "expiry the worker is escalated SIGTERM then SIGKILL",
    )
    cmd.add_argument(
        "--proc-faults",
        type=int,
        default=None,
        metavar="SEED",
        help="process isolation: inject a seeded crash-storm "
        "schedule (SIGKILL / exit / hang) into every tenant's "
        "worker — chaos testing only",
    )
    cmd.add_argument(
        "--status-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="print (and journal to the event log) a one-line "
        "per-tenant supervisor status every SECONDS",
    )
    cmd.add_argument("--groups", type=int, default=50, help="LogSig only")
    cmd.add_argument("--support", type=float, default=0.005, help="SLCT only")
    cmd.add_argument(
        "--sim-threshold",
        type=float,
        default=0.4,
        help="Drain only: template-merge similarity threshold",
    )
    cmd.add_argument(
        "--depth", type=int, default=4, help="Drain only: fixed tree depth"
    )
    cmd.add_argument("--seed", type=int, default=None)
    cmd.add_argument(
        "--io-faults",
        type=int,
        default=None,
        metavar="SEED",
        help="inject a deterministic schedule of IO faults into "
        "artifact writes (writers retry and divert)",
    )
    _add_telemetry_flags(cmd)
    _add_endpoint_flag(cmd)
    cmd.add_argument(
        "--alerts-out",
        default=None,
        metavar="PATH",
        help="run the SLO alert engine and append its firing/resolved "
        "transitions to this durable framed-JSONL log",
    )
    cmd.add_argument(
        "--alert-interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="seconds between alert-rule evaluations",
    )
    cmd.add_argument(
        "--slo-objective",
        type=float,
        default=0.99,
        metavar="FRACTION",
        help="per-tenant ingest success objective for the error-budget "
        "burn-rate rule (0.99 = 1%% error budget)",
    )


def _add_send(subparsers) -> None:
    cmd = subparsers.add_parser(
        "send",
        help="deliver tenant<TAB>content lines to a --protocol v2 "
        "serve endpoint exactly once, via a durable local spool",
    )
    cmd.add_argument("host")
    cmd.add_argument("port", type=int)
    cmd.add_argument(
        "input",
        nargs="?",
        default=None,
        help="file of tenant<TAB>content lines; omit to only flush "
        "lines a previous interrupted send left in the spool",
    )
    cmd.add_argument(
        "--client-id",
        default="sender",
        help="stable client identity keying the server's dedup "
        "windows; reuse the same id with the same spool",
    )
    cmd.add_argument(
        "--spool",
        required=True,
        metavar="PATH",
        help="framed-JSONL spool file: every line is spooled before "
        "it is wired and removed only once acknowledged, so an "
        "interrupted send loses nothing",
    )
    cmd.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="flush deadline; on expiry the command exits 4 with the "
        "unacknowledged lines still safe in the spool",
    )
    cmd.add_argument(
        "--net-faults",
        type=int,
        default=None,
        metavar="SEED",
        help="enact a seeded network-fault schedule (partition, "
        "half-close, duplicate delivery, reorder, ack drop) while "
        "sending — chaos testing only; the server-side outcome "
        "must still be exactly-once",
    )
    _add_telemetry_flags(cmd)


def _add_watch(subparsers) -> None:
    cmd = subparsers.add_parser(
        "watch",
        help="top-style live view of a serve --telemetry-port endpoint",
    )
    cmd.add_argument(
        "url",
        help="endpoint base URL printed by the serving process "
        "(e.g. http://127.0.0.1:9100)",
    )
    cmd.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="seconds between /status polls",
    )
    cmd.add_argument(
        "--iterations",
        type=int,
        default=None,
        metavar="N",
        help="stop after N refreshes (default: run until interrupted)",
    )
    cmd.add_argument(
        "--once",
        action="store_true",
        help="render a single frame and exit (same as --iterations 1)",
    )


def _add_report(subparsers) -> None:
    cmd = subparsers.add_parser(
        "report",
        help="render a post-mortem from exported telemetry artifacts",
    )
    cmd.add_argument(
        "--metrics",
        default=None,
        metavar="PATH",
        help="metrics file a run exported with --metrics-out",
    )
    cmd.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="JSONL trace a run exported with --trace-out",
    )
    cmd.add_argument(
        "--events",
        default=None,
        metavar="PATH",
        help="event timeline a run exported with --events-out",
    )


def _add_verify_run(subparsers) -> None:
    cmd = subparsers.add_parser(
        "verify-run",
        help="re-hash a run's artifacts against its integrity manifest",
    )
    cmd.add_argument(
        "manifest",
        help="manifest file a run committed with --manifest-out",
    )
    cmd.add_argument(
        "--against",
        default=None,
        metavar="MANIFEST",
        help="also require this second manifest to agree artifact-by-"
        "artifact (hashes, sizes, record counts) — certifies e.g. "
        "that a crashed-and-resumed run converged to the same "
        "artifacts as a fault-free one",
    )
    cmd.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="NAME",
        help="artifact names to exclude from the --against comparison "
        "(inherently run-varying artifacts such as traces or event "
        "timelines); may be repeated",
    )


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-logparse",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_generate(subparsers)
    _add_parse(subparsers)
    _add_evaluate(subparsers)
    _add_metrics(subparsers)
    _add_score(subparsers)
    _add_tune(subparsers)
    _add_mine(subparsers)
    _add_stream(subparsers)
    _add_supervise(subparsers)
    _add_soak(subparsers)
    _add_serve(subparsers)
    _add_send(subparsers)
    _add_watch(subparsers)
    _add_report(subparsers)
    _add_verify_run(subparsers)
    return parser


def _cmd_generate(args) -> int:
    spec = get_dataset_spec(args.dataset)
    dataset = generate_dataset(spec, args.size, seed=args.seed)
    write_raw_log(dataset.records, args.output)
    print(
        f"wrote {len(dataset)} {spec.name} log messages "
        f"({len(dataset.observed_event_ids())} event types) to {args.output}"
    )
    return 0


def _cmd_parse(args) -> int:
    records = read_raw_log(args.input)
    preprocessor = (
        default_preprocessor(args.preprocess_dataset)
        if args.preprocess_dataset
        else None
    )
    params: dict = {"preprocessor": preprocessor}
    if args.parser == "LogSig":
        params.update(groups=args.groups, seed=args.seed)
    elif args.parser == "SLCT":
        params.update(support=args.support)
    elif args.parser == "LKE":
        params.update(seed=args.seed)
    elif args.parser == "Drain":
        params.update(sim_threshold=args.sim_threshold, depth=args.depth)
    parser = make_parser(args.parser, **params)
    result = parser.parse(records)
    stem = args.output_stem or args.input
    events_path, structured_path = write_parse_result(result, stem)
    print(
        f"{parser.name}: {len(result.events)} events from "
        f"{len(records)} lines -> {events_path}, {structured_path}"
    )
    return 0


def _cmd_evaluate(args) -> int:
    result = evaluate_accuracy(
        args.parser,
        args.dataset,
        sample_size=args.sample_size,
        preprocess=args.preprocess,
        runs=args.runs,
        seed=args.seed,
    )
    print(
        f"{result.parser} on {result.dataset} "
        f"({'preprocessed' if result.preprocessed else 'raw'}, "
        f"{result.sample_size} lines, {len(result.runs)} run(s)): "
        f"F-measure {result.mean_f_measure:.3f}"
        + (
            f" ± {result.stdev_f_measure:.3f}"
            if len(result.runs) > 1
            else ""
        )
    )
    return 0


def _cmd_metrics(args) -> int:
    from repro.datasets import generate_dataset, sample_records
    from repro.evaluation.accuracy import tuned_parser_factory
    from repro.evaluation.fmeasure import singletonize_outliers
    from repro.evaluation.metrics import summary

    spec = get_dataset_spec(args.dataset)
    generated = generate_dataset(
        spec, max(3 * args.sample_size, 4000), seed=args.seed
    )
    sampled = sample_records(
        generated.records, args.sample_size, seed=args.seed
    )
    truth = [record.truth_event or "" for record in sampled]
    parser = tuned_parser_factory(
        args.parser, args.dataset, preprocess=args.preprocess,
        seed=args.seed,
    )
    parsed = parser.parse(sampled)
    scores = summary(singletonize_outliers(parsed.assignments), truth)
    print(f"{parser.name} on {spec.name} ({len(sampled)} lines):")
    for metric, value in scores.items():
        print(f"  {metric:20s} {value:.3f}")
    return 0


def _cmd_score(args) -> int:
    from repro.evaluation.cohesion import evaluate_label_free

    parsers = [name.strip() for name in args.parsers.split(",") if name.strip()]
    datasets = [name.strip() for name in args.datasets.split(",") if name.strip()]
    if not parsers or not datasets:
        raise ValidationError("score needs >= 1 parser and >= 1 dataset")
    # Validate every parser name up front (ValidationError, exit 2,
    # with the available list) before any expensive run starts.
    from repro.parsers.registry import resolve_parser_name

    parsers = [resolve_parser_name(name) for name in parsers]
    for name in datasets:
        if name not in DATASET_NAMES:
            raise ValidationError(
                f"unknown dataset {name!r}; choose from {sorted(DATASET_NAMES)}"
            )

    if args.label_free:
        print(
            f"label-free scores ({args.sample_size} lines per dataset, "
            "no ground truth consulted):"
        )
        print(
            f"{'parser':12s} {'dataset':10s} "
            f"{'cohesion':>9s} {'separation':>11s} {'score':>7s}"
        )
        for parser_name in parsers:
            for dataset_name in datasets:
                score = evaluate_label_free(
                    parser_name,
                    dataset_name,
                    sample_size=args.sample_size,
                    preprocess=args.preprocess,
                    seed=args.seed,
                )
                print(
                    f"{parser_name:12s} {score.dataset:10s} "
                    f"{score.cohesion:9.3f} {score.separation:11.3f} "
                    f"{score.score:7.3f}"
                )
        return 0

    print(f"labeled F-measure ({args.sample_size} lines per dataset):")
    print(f"{'parser':12s} {'dataset':10s} {'f_measure':>10s}")
    for parser_name in parsers:
        for dataset_name in datasets:
            result = evaluate_accuracy(
                parser_name,
                dataset_name,
                sample_size=args.sample_size,
                preprocess=args.preprocess,
                runs=1,
                seed=args.seed,
            )
            print(
                f"{parser_name:12s} {result.dataset:10s} "
                f"{result.mean_f_measure:10.3f}"
            )
    return 0


def _cmd_tune(args) -> int:
    from repro.evaluation.tuning import tune_on_dataset

    report = tune_on_dataset(
        args.parser,
        args.dataset,
        sample_size=args.sample_size,
        seed=args.seed,
    )
    print(
        f"tuned {report.parser} on a {report.sample_size}-line "
        f"{report.dataset} sample ({len(report.candidates)} candidates, "
        f"{report.total_seconds:.1f}s total):"
    )
    for candidate in sorted(
        report.candidates, key=lambda c: -c.f_measure
    ):
        print(
            f"  F={candidate.f_measure:.3f} ({candidate.seconds:5.1f}s) "
            f"{dict(candidate.params)}"
        )
    print(f"best: {dict(report.best.params)}")
    return 0


def _cmd_mine(args) -> int:
    dataset = generate_hdfs_sessions(args.blocks, seed=args.seed)
    parser = table3_parser_factory(args.parser, seed=args.seed)
    row = evaluate_mining_impact(parser, dataset, alpha=args.alpha)
    print(
        f"{row.parser}: parsing accuracy {row.parsing_accuracy:.2f}, "
        f"reported {row.reported}, detected {row.detected} "
        f"({row.detection_rate:.0%} of {row.true_anomalies}), "
        f"false alarms {row.false_alarms} ({row.false_alarm_rate:.1%})"
    )
    return 0


def _parser_params(name: str, args) -> dict:
    """Per-parser construction keywords shared by stream/supervise."""
    params: dict = {}
    if name == "LogSig":
        params.update(groups=args.groups, seed=args.seed)
    elif name == "SLCT":
        params.update(support=args.support)
    elif name == "LKE":
        params.update(seed=args.seed)
    elif name == "Drain":
        params.update(
            sim_threshold=args.sim_threshold, depth=args.depth
        )
    return params


def _cmd_stream(args) -> int:
    if (args.dataset is None) == (args.input is None):
        print(
            "error: give exactly one of INPUT or --dataset",
            file=sys.stderr,
        )
        return 2
    if args.no_retain and (
        args.verify or args.output_stem or args.flush_policy == "prefix"
    ):
        print(
            "error: --no-retain cannot be combined with --verify, "
            "--output-stem, or --flush-policy prefix",
            file=sys.stderr,
        )
        return 2
    if args.resume and not args.checkpoint:
        print("error: --resume requires --checkpoint", file=sys.stderr)
        return 2
    budgeted = (
        args.budget_mem is not None
        or args.budget_wall is not None
        or args.budget_queue is not None
        or args.ladder is not None
    )
    if budgeted and (
        args.checkpoint
        or args.resume
        or args.verify
        or args.flush_policy == "prefix"
    ):
        print(
            "error: resource budgets cannot be combined with "
            "--checkpoint/--resume/--verify/--flush-policy prefix "
            "(the flush parser may change mid-stream)",
            file=sys.stderr,
        )
        return 2
    params = _parser_params(args.parser, args)
    factory = partial(make_parser, args.parser, **params)
    preprocessor = (
        default_preprocessor(args.preprocess_dataset)
        if args.preprocess_dataset
        else None
    )
    io = _make_io(args)
    telemetry = _make_telemetry(args, trace_id="stream", io=io)
    tserver = _start_endpoint(
        args,
        telemetry,
        status=lambda: {
            "command": "stream",
            "summary": summary_from_registry(telemetry.metrics),
        },
    )
    policy_mode, sink = _resolve_policy(args, telemetry=telemetry, io=io)
    if args.dataset is not None:
        source = f"dataset:{args.dataset}"
        records = iter_dataset(
            get_dataset_spec(args.dataset), args.size, seed=args.seed
        )
    else:
        source = args.input
        records = iter_raw_log(
            args.input,
            policy=policy_mode or "raise",
            quarantine=sink,
        )
    if args.faults is not None:
        records = corrupt_records(
            records, seed=args.faults, every=args.fault_every
        )
    # The sink is a context manager: flushed and closed even when the
    # stream dies mid-run, so quarantined records are never lost — and
    # the telemetry export in the finally gives a failed run the same
    # post-mortem artifacts as a clean one.
    artifacts: list[tuple[str, str]] = []
    try:
        # Cooperative shutdown: the handler only notes the signal; the
        # feed loops stop at the next record boundary, finalize, and
        # checkpoint — never leaving half-applied engine state inside
        # the artifacts an interrupted run commits.
        with graceful_signals() as guard, (
            sink if sink is not None else nullcontext()
        ):
            if budgeted:
                return _run_budgeted_stream(
                    args,
                    preprocessor,
                    policy_mode,
                    sink,
                    records,
                    telemetry,
                    artifacts,
                    io,
                    guard=guard,
                )
            return _run_plain_stream(
                args,
                factory,
                preprocessor,
                policy_mode,
                sink,
                records,
                source,
                telemetry,
                artifacts,
                io,
                guard=guard,
            )
    finally:
        if tserver is not None:
            tserver.stop()
        _export_telemetry(args, telemetry, artifacts=artifacts, io=io)


def _stream_artifact_offsets(sink) -> dict:
    """The append-mode artifact offsets to pin inside a checkpoint.

    A resumed run truncates each artifact back to the recorded offset
    before re-feeding records, so a crash between a quarantine append
    and the next checkpoint can never duplicate (or lose) records.
    """
    if sink is None or sink.path is None:
        return {}
    bytes_written, records_written = sink.offset()
    return {
        sink.path: {"bytes": bytes_written, "records": records_written}
    }


def _run_plain_stream(
    args,
    factory,
    preprocessor,
    policy_mode,
    sink,
    records,
    source,
    telemetry,
    artifacts,
    io,
    guard=None,
) -> int:
    """The historical ``stream`` path: one parser, optional checkpoints."""
    if args.resume:
        checkpoint = load_checkpoint(args.checkpoint, telemetry=telemetry)
        # Roll append-mode artifacts back to the offsets the checkpoint
        # pinned: appends made after the snapshot belong to records the
        # resumed run is about to re-feed.
        for artifact_path, offsets in checkpoint.artifacts.items():
            reconcile_jsonl(
                artifact_path,
                offsets["bytes"],
                io=io,
                telemetry=telemetry,
            )
        engine = restore_streaming_parser(
            checkpoint,
            factory,
            preprocessor=preprocessor,
            workers=args.workers,
            chunk_size=args.chunk_size,
            error_policy=policy_mode,
            quarantine=sink,
            max_record_len=args.max_record_len,
            telemetry=telemetry,
        )
        skip = checkpoint.records_consumed
    else:
        engine = StreamingParser(
            factory,
            flush_policy=args.flush_policy,
            flush_size=args.flush_size,
            cache_capacity=args.cache_capacity,
            max_flush_retries=args.max_retries,
            workers=args.workers,
            chunk_size=args.chunk_size,
            retain=not args.no_retain,
            preprocessor=preprocessor,
            error_policy=policy_mode,
            quarantine=sink,
            max_record_len=args.max_record_len,
            max_pending=args.max_pending,
            overflow=args.overflow,
            telemetry=telemetry,
        )
        skip = 0
    session = ParseSession(engine, track_matrix=args.mine)
    if args.resume and args.mine:
        restored = restore_accumulator(checkpoint)
        if restored is not None:
            session.accumulator = restored
    consumed = skip
    interrupted = None
    for index, record in enumerate(records):
        if index < skip:
            continue
        session.feed(record)
        consumed += 1
        if args.checkpoint and consumed % args.checkpoint_every == 0:
            save_checkpoint(
                args.checkpoint,
                engine,
                records_consumed=consumed,
                parser=args.parser,
                source=source,
                accumulator=session.accumulator,
                telemetry=telemetry,
                artifacts=_stream_artifact_offsets(sink),
                io=io,
            )
        if args.report_every and consumed % args.report_every == 0:
            telemetry.metrics.snapshot()
            print(summary_from_registry(telemetry.metrics))
        if guard is not None and guard.requested:
            # Record boundary: engine state is coherent, so the
            # finalize + checkpoint below commit a resumable run.
            interrupted = ShutdownRequested(guard.signum)
            break
    result = session.finalize()
    if args.checkpoint:
        save_checkpoint(
            args.checkpoint,
            engine,
            records_consumed=consumed,
            parser=args.parser,
            source=source,
            accumulator=session.accumulator,
            telemetry=telemetry,
            artifacts=_stream_artifact_offsets(sink),
            io=io,
        )
        artifacts.append((args.checkpoint, CODEC_OPAQUE))
    if sink is not None and sink.path is not None:
        artifacts.append((sink.path, CODEC_FRAMED))
    print(summary_from_registry(telemetry.metrics))
    if sink is not None and len(sink):
        print(sink.describe())
    if args.output_stem and result is not None:
        events_path, structured_path = write_parse_result(
            result, args.output_stem, io=io
        )
        artifacts.append((events_path, CODEC_LINES))
        artifacts.append((structured_path, CODEC_LINES))
        print(f"wrote {events_path}, {structured_path}")
    if interrupted is not None:
        # Outputs, checkpoint, and summary above are finalized for the
        # consumed prefix; skip the analysis passes and report the
        # signal through the exit code.
        print(f"{interrupted}; artifacts finalized", file=sys.stderr)
        return interrupted.exit_code
    if args.mine:
        _mine_matrix(session.matrix())
    if args.verify and result is not None:
        batch_parser = make_parser(
            args.parser,
            preprocessor=preprocessor,
            **_parser_params(args.parser, args),
        )
        report = diff_results(
            batch_parser.name,
            batch_parser.parse(result.records),
            result,
        )
        print(report.describe())
        if args.flush_policy == "prefix" and not report.equivalent:
            return 1
    return 0


def _mine_matrix(counts) -> None:
    """Run live PCA anomaly detection over a session-by-event matrix."""
    from repro.mining import tf_idf_transform
    from repro.mining.pca import PcaAnomalyModel

    weighted = tf_idf_transform(counts.matrix)
    model = PcaAnomalyModel()
    model.fit(weighted)
    flagged = (model.spe(weighted) > model.threshold).sum()
    print(
        f"live PCA mining: {counts.matrix.shape[0]} sessions x "
        f"{counts.matrix.shape[1]} events, {flagged} flagged anomalous"
    )


def _build_stream_ladder(args) -> DegradationLadder:
    """Resolve --ladder (or the chosen parser) into a DegradationLadder."""
    rungs = default_ladder()
    by_name = {rung.parser: rung for rung in rungs}
    if args.ladder:
        names = [name.strip() for name in args.ladder.split(",") if name.strip()]
        unknown = [name for name in names if name not in by_name]
        if unknown or not names:
            raise ParserConfigurationError(
                f"unknown ladder rung(s) {unknown or args.ladder!r}; "
                f"choose from {', '.join(by_name)}"
            )
        return DegradationLadder([by_name[name] for name in names])
    start = next(
        (
            index
            for index, rung in enumerate(rungs)
            if rung.parser == args.parser
        ),
        0,
    )
    return DegradationLadder(rungs[start:])


def _run_budgeted_stream(
    args,
    preprocessor,
    policy_mode,
    sink,
    records,
    telemetry,
    artifacts,
    io,
    guard=None,
) -> int:
    """``stream`` under a resource budget: the degradation runtime."""
    ladder = _build_stream_ladder(args)
    budget = ResourceBudget.of(
        wall_seconds=args.budget_wall,
        memory_mb=args.budget_mem,
        queue_depth=args.budget_queue,
    )
    print(budget.describe())
    print(ladder.describe())
    session = DegradedSession(
        ladder,
        BudgetMonitor(budget),
        check_every=args.check_every,
        track_matrix=args.mine,
        error_policy=policy_mode,
        quarantine=sink,
        retain=not args.no_retain,
        preprocessor=preprocessor,
        max_record_len=args.max_record_len,
        max_pending=args.max_pending,
        overflow=args.overflow,
        telemetry=telemetry,
    )
    interrupted = None
    for index, record in enumerate(records):
        session.feed(record)
        if args.report_every and (index + 1) % args.report_every == 0:
            telemetry.metrics.snapshot()
            print(summary_from_registry(telemetry.metrics))
        if guard is not None and guard.requested:
            interrupted = ShutdownRequested(guard.signum)
            break
    report = session.finalize()
    print(report.describe())
    if sink is not None and len(sink):
        print(sink.describe())
    if sink is not None and sink.path is not None:
        artifacts.append((sink.path, CODEC_FRAMED))
    if args.output_stem and report.result is not None:
        events_path, structured_path = write_parse_result(
            report.result, args.output_stem, io=io
        )
        artifacts.append((events_path, CODEC_LINES))
        artifacts.append((structured_path, CODEC_LINES))
        print(f"wrote {events_path}, {structured_path}")
    if interrupted is not None:
        print(f"{interrupted}; artifacts finalized", file=sys.stderr)
        return interrupted.exit_code
    if args.mine and report.matrix is not None:
        _mine_matrix(report.matrix)
    return 0


def _cmd_supervise(args) -> int:
    if (args.dataset is None) == (args.input is None):
        print(
            "error: give exactly one of INPUT or --dataset",
            file=sys.stderr,
        )
        return 2
    chain_names = [
        name.strip() for name in args.chain.split(",") if name.strip()
    ]
    if not chain_names:
        print("error: --chain must name at least one parser", file=sys.stderr)
        return 2
    for name in chain_names:
        if name not in PARSER_NAMES:
            print(
                f"error: unknown parser {name!r} in --chain "
                f"(choose from {', '.join(PARSER_NAMES)})",
                file=sys.stderr,
            )
            return 2
    if args.fault_parser is not None and args.fault_parser not in chain_names:
        print(
            f"error: --fault-parser {args.fault_parser!r} is not in the chain",
            file=sys.stderr,
        )
        return 2
    io = _make_io(args)
    telemetry = _make_telemetry(args, trace_id="supervise", io=io)
    policy_mode, sink = _resolve_policy(args, telemetry=telemetry, io=io)
    policy_mode = policy_mode or "quarantine"
    if sink is None:
        sink = QuarantineSink(
            args.quarantine_path, telemetry=telemetry, io=io
        )
    preprocessor = (
        default_preprocessor(args.preprocess_dataset)
        if args.preprocess_dataset
        else None
    )
    if args.dataset is not None:
        source = f"dataset:{args.dataset}"
        records = iter_dataset(
            get_dataset_spec(args.dataset), args.size, seed=args.seed
        )
    else:
        source = args.input
        records = iter_raw_log(
            args.input, policy=policy_mode, quarantine=sink
        )
    if args.faults is not None:
        records = corrupt_records(
            records, seed=args.faults, every=args.fault_every
        )
    policy = ErrorPolicy(policy_mode, sink=sink)
    clean = list(
        screen_records(
            records,
            policy,
            source=source,
            max_len=args.max_record_len,
            sink=sink,
        )
    )
    chain = []
    for name in chain_names:
        factory = partial(
            make_parser,
            name,
            preprocessor=preprocessor,
            **_parser_params(name, args),
        )
        if name == args.fault_parser:
            factory = FlakyFactory(
                factory,
                fail_times=args.fault_parser_fails,
                hang_seconds=args.fault_parser_hang,
                name=name,
            )
        chain.append((name, factory))
    supervisor = ParserSupervisor(
        chain,
        timeout=args.timeout,
        retry=RetryPolicy(
            attempts=args.retries, base_delay=args.retry_delay
        ),
        telemetry=telemetry,
    )
    # Context-managed: the sink flushes and closes even when the whole
    # chain fails and FallbackExhaustedError propagates — and the
    # telemetry export in the finally captures the failed attempts too.
    artifacts: list[tuple[str, str]] = []
    try:
        with sink:
            outcome = supervisor.parse(clean)
        print(outcome.report.describe())
        print(
            f"{outcome.parser}: {len(outcome.result.events)} events from "
            f"{len(clean)} clean lines ({policy.skipped} rejected)"
        )
        print(sink.describe())
        if sink.path is not None:
            artifacts.append((sink.path, CODEC_FRAMED))
        if args.output_stem:
            events_path, structured_path = write_parse_result(
                outcome.result, args.output_stem, io=io
            )
            artifacts.append((events_path, CODEC_LINES))
            artifacts.append((structured_path, CODEC_LINES))
            print(f"wrote {events_path}, {structured_path}")
        if args.verify:
            batch_parser = make_parser(
                outcome.parser,
                preprocessor=preprocessor,
                **_parser_params(outcome.parser, args),
            )
            report = diff_results(
                batch_parser.name,
                batch_parser.parse(clean),
                outcome.result,
            )
            print(report.describe())
            if not report.equivalent:
                return 1
        return 0
    finally:
        _export_telemetry(args, telemetry, artifacts=artifacts, io=io)


def _cmd_soak(args) -> int:
    telemetry = _make_telemetry(args, trace_id="soak")
    try:
        # A soak persists nothing mid-run, so an immediate raise is
        # safe anywhere: the finally still exports telemetry and the
        # manifest for the partial run.
        with graceful_signals(immediate=True):
            report = run_soak(
                SoakScenario(
                    kind=args.scenario,
                    seed=args.seed,
                    n_blocks=args.blocks,
                    check_every=args.check_every,
                    min_transitions=args.min_transitions,
                ),
                telemetry=telemetry,
            )
    except ShutdownRequested as shutdown:
        print(f"{shutdown}; telemetry finalized", file=sys.stderr)
        return shutdown.exit_code
    finally:
        _export_telemetry(args, telemetry)
    print(report.describe())
    return 0 if report.ok else 1


def _cmd_serve(args) -> int:
    if args.replay is not None and args.drain_after is not None:
        print(
            "error: --drain-after only applies to the TCP front end",
            file=sys.stderr,
        )
        return 2
    if args.replay is not None and args.protocol == PROTOCOL_V2:
        print(
            "error: --protocol v2 only applies to the TCP front end "
            "(--replay has no connection to negotiate)",
            file=sys.stderr,
        )
        return 2
    params = _parser_params(args.parser, args)
    factory = partial(make_parser, args.parser, **params)
    io = _make_io(args)
    telemetry = _make_telemetry(args, trace_id="serve", io=io)
    shard_kwargs: dict = dict(
        flush_size=args.flush_size,
        cache_capacity=args.cache_capacity,
        max_pending=args.max_pending,
        overflow=args.overflow,
        breaker_threshold=args.breaker_threshold,
        check_every=args.check_every,
    )
    if (
        args.tenant_budget_mem is not None
        or args.tenant_budget_queue is not None
    ):
        shard_kwargs["budget"] = ResourceBudget.of(
            memory_mb=args.tenant_budget_mem,
            queue_depth=args.tenant_budget_queue,
        )
        shard_kwargs["ladder"] = _build_stream_ladder(args)
    worker_kwargs: dict = {}
    if args.isolation == "process":
        worker_kwargs = dict(
            watchdog=args.watchdog,
            checkpoint_every=args.checkpoint_every,
            poison_threshold=args.poison_threshold,
            fence_threshold=args.fence_threshold,
            drain_timeout=args.drain_timeout,
        )
        if args.proc_faults is not None:
            seed = args.proc_faults
            worker_kwargs["faults"] = lambda tenant: crash_storm_schedule(
                seed, [tenant]
            )[tenant]
    tserver = None
    alert_engine = None
    try:

        def _journal_checkpoint_status(tenant: str, position: int) -> None:
            # Process-mode checkpoint acks journal the supervisor
            # picture even when no --status-interval ticker runs, so
            # the event timeline always carries liveness evidence.
            status = supervisor_status(service)
            telemetry.events.emit(
                "supervisor_status",
                tenants=status["tenants"],
                line=status["line"],
                tenant=tenant,
                position=position,
            )

        service = IngestionService(
            args.data_dir,
            factory,
            parser_name=args.parser,
            telemetry=telemetry,
            io=io,
            isolation=args.isolation,
            protocol=args.protocol,
            worker_kwargs=worker_kwargs,
            on_checkpoint=_journal_checkpoint_status,
            **shard_kwargs,
        )
        if (
            args.rate is not None
            or args.budget_mem is not None
            or args.budget_queue is not None
        ):
            monitor = None
            if args.budget_mem is not None or args.budget_queue is not None:
                monitor = BudgetMonitor(
                    ResourceBudget.of(
                        memory_mb=args.budget_mem,
                        queue_depth=args.budget_queue,
                    ),
                    queue_probe=service.total_pending,
                )
            service.admission = AdmissionController(
                rate=args.rate,
                burst=args.burst,
                monitor=monitor,
                check_every=args.admission_every,
                sample_keep=args.sample_keep,
            )
        adopted = service.adopt_existing()
        if adopted:
            print(f"adopted {len(adopted)} tenant(s): {', '.join(adopted)}")
        if args.alerts_out is not None or args.telemetry_port is not None:
            alert_engine = AlertEngine(
                telemetry.metrics,
                default_rules(
                    objective=args.slo_objective,
                    heartbeat_stall=args.watchdog,
                ),
                events=telemetry.events,
                log_path=args.alerts_out,
                io=io,
            )
            alert_engine.start_ticker(args.alert_interval)

        def _status_payload() -> dict:
            status = supervisor_status(service)
            payload = {"isolation": args.isolation, **status}
            if alert_engine is not None:
                payload["alerts"] = alert_engine.active()
            return payload

        tserver = _start_endpoint(
            args, telemetry, status=_status_payload, health=service.health
        )

        def _emit_status() -> None:
            status = supervisor_status(service)
            if telemetry is not None:
                telemetry.events.emit(
                    "supervisor_status",
                    tenants=status["tenants"],
                    line=status["line"],
                )
            print(status["line"], flush=True)

        def _status_loop() -> None:
            while not ticker_stop.wait(args.status_interval):
                _emit_status()

        ticker_stop = threading.Event()
        ticker = None
        if args.status_interval is not None:
            ticker = threading.Thread(
                target=_status_loop, name="status-ticker", daemon=True
            )
            ticker.start()
        stopped = False
        # Cooperative shutdown everywhere: the signal is only *noted*
        # by the handler, and acted on at a line boundary (replay) or
        # a wait-loop tick (TCP) — never mid-feed inside an engine, so
        # the drain below always flushes coherent shard state.
        try:
            with graceful_signals() as guard:
                if args.replay is not None:
                    with open(
                        args.replay, encoding="utf-8", errors="replace"
                    ) as handle:
                        outcomes = replay_lines(
                            service, handle, origin=args.replay, guard=guard
                        )
                    print(
                        "replay outcomes: "
                        + ", ".join(
                            f"{name}={count}"
                            for name, count in sorted(outcomes.items())
                        )
                    )
                else:
                    server = LineServer(service, args.host, args.port)
                    server.start()
                    try:
                        print(
                            f"serving on {server.host}:{server.port}",
                            flush=True,
                        )
                        while not guard.requested and (
                            args.drain_after is None
                            or service.submitted < args.drain_after
                        ):
                            time.sleep(0.05)
                    finally:
                        server.stop()
                stopped = guard.requested
        except ShutdownRequested:
            stopped = True
        finally:
            ticker_stop.set()
            if ticker is not None:
                ticker.join(timeout=5.0)
        if args.status_interval is not None:
            # Always journal one final status so the events artifact
            # carries the end-of-run supervisor picture.
            _emit_status()
        if stopped:
            print("shutdown requested; draining", flush=True)
        summary = service.drain()
        print(service.describe())
        for tenant in sorted(summary["tenants"]):
            manifest = summary["tenants"][tenant].get("manifest")
            if manifest is None:
                print(f"  manifest: <none: {tenant} fenced>")
            else:
                print(f"  manifest: {manifest}")
        return 0
    finally:
        if tserver is not None:
            tserver.stop()
        if alert_engine is not None:
            alert_engine.close()
        artifacts = []
        if args.alerts_out:
            # A calm run still leaves a (valid, empty) alert log where
            # the flag pointed — absence would read as "never ran".
            ensure_artifact(args.alerts_out, io=io)
            artifacts.append((args.alerts_out, CODEC_FRAMED))
        _export_telemetry(args, telemetry, artifacts=artifacts, io=io)


def _cmd_send(args) -> int:
    faults = (
        network_fault_schedule(args.net_faults)
        if args.net_faults is not None
        else ()
    )
    telemetry = _make_telemetry(args, trace_id="send")
    try:
        with DurableSender(
            args.host,
            args.port,
            args.client_id,
            args.spool,
            faults=faults,
            telemetry=telemetry,
        ) as sender:
            recovered = sender.spool_depth
            if recovered:
                print(
                    f"recovered {recovered} unacknowledged line(s) "
                    f"from {args.spool}"
                )
            if args.input is not None:
                with open(
                    args.input, encoding="utf-8", errors="replace"
                ) as handle:
                    for number, raw in enumerate(handle, start=1):
                        line = raw.rstrip("\n")
                        if not line:
                            continue
                        tenant, sep, content = line.partition("\t")
                        if not sep or not tenant:
                            raise DatasetError(
                                f"{args.input}:{number}: expected "
                                "tenant<TAB>content"
                            )
                        sender.send(tenant, content)
            summary = sender.flush(timeout=args.timeout)
            print(
                f"delivered {summary['delivered']} line(s) as "
                f"{args.client_id} ({summary['resends']} resend(s), "
                f"{summary['reconnects']} reconnect(s)); spool clear"
            )
        return 0
    finally:
        # Exported even when the flush deadline expires: the metrics
        # then show the surviving spool depth, and the spool itself
        # still holds every undelivered line for the next attempt.
        _export_telemetry(args, telemetry)


def _render_watch_frame(payload: dict, url: str, banner: str | None = None) -> str:
    """One ``watch`` frame: per-tenant table + firing alerts."""
    lines = [f"watch {url}  isolation={payload.get('isolation', '?')}"]
    if banner is not None:
        lines.append(banner)
    tenants = payload.get("tenants", {})
    if tenants:
        lines.append(
            f"{'TENANT':<16} {'STATE':<10} {'RESTARTS':>8} {'QUEUE':>6} "
            f"{'LINES':>9} {'QUAR':>6} {'HB-AGE':>7}"
        )
        for tenant in sorted(tenants):
            info = tenants[tenant]
            lines.append(
                f"{tenant:<16} {str(info.get('state', '?')):<10} "
                f"{info.get('restarts', 0):>8} {info.get('queue', 0):>6} "
                f"{info.get('lines', 0):>9} "
                f"{info.get('quarantined', 0):>6} "
                f"{float(info.get('heartbeat_age', 0.0)):>7.2f}"
            )
    else:
        lines.append("no tenants yet")
    alerts = payload.get("alerts", [])
    if alerts:
        lines.append("alerts:")
        for alert in alerts:
            labels = ",".join(
                f"{key}={value}"
                for key, value in sorted(alert.get("labels", {}).items())
            )
            lines.append(
                f"  {alert.get('severity', '?'):<5} "
                f"{alert.get('rule', '?')}{{{labels}}} "
                f"value={float(alert.get('value', 0.0)):.2f} "
                f"threshold={float(alert.get('threshold', 0.0)):.2f}"
            )
    else:
        lines.append("alerts: none firing")
    return "\n".join(lines)


def _cmd_watch(args) -> int:
    base = args.url.rstrip("/")
    iterations = 1 if args.once else args.iterations
    frames = 0
    failures = 0
    last_payload: dict = {}
    clear = sys.stdout.isatty()
    try:
        while True:
            # An unreachable endpoint is a frame, not a crash: the
            # serving process may be mid-restart.  The view keeps the
            # last good table under a DISCONNECTED banner and re-polls
            # with capped backoff until the endpoint returns.
            try:
                with urllib.request.urlopen(
                    base + "/status", timeout=5.0
                ) as response:
                    payload = json.loads(response.read().decode("utf-8"))
            except (urllib.error.URLError, OSError, ValueError) as error:
                failures += 1
                delay = min(
                    args.interval * 2 ** (failures - 1),
                    max(args.interval * 8, 1.0),
                )
                frame = _render_watch_frame(
                    last_payload,
                    base,
                    banner=(
                        f"DISCONNECTED ({failures} failed poll(s): "
                        f"{error}) — retrying in {delay:.1f}s"
                    ),
                )
            else:
                failures = 0
                delay = args.interval
                last_payload = payload
                frame = _render_watch_frame(payload, base)
            if clear:
                # Home + clear-to-end keeps the frame flicker-free in a
                # terminal; piped output just gets stacked frames.
                print(f"\x1b[H\x1b[J{frame}", flush=True)
            else:
                print(frame, flush=True)
            frames += 1
            if iterations is not None and frames >= iterations:
                # A bounded run that *ends* disconnected still fails —
                # `watch --once` against a dead endpoint must not lie.
                return EXIT_RUNTIME if failures else 0
            time.sleep(delay)
    except KeyboardInterrupt:
        return 0


def _cmd_report(args) -> int:
    print(
        render_run_report(
            metrics_path=args.metrics,
            trace_path=args.trace,
            events_path=args.events,
        ),
        end="",
    )
    return 0


def _cmd_verify_run(args) -> int:
    report = verify_manifest(args.manifest)
    print(report.describe())
    ok = report.ok
    if args.against:
        other = verify_manifest(args.against)
        print(other.describe())
        ok = ok and other.ok
        differences = diff_manifests(
            args.manifest, args.against, ignore=tuple(args.ignore)
        )
        if differences:
            print(f"manifests disagree ({len(differences)} artifact(s)):")
            for line in differences:
                print(f"  - {line}")
            ok = False
        else:
            print(
                "manifests agree: artifact hashes, sizes, and record "
                "counts identical"
            )
    return 0 if ok else EXIT_DATA


_COMMANDS = {
    "generate": _cmd_generate,
    "parse": _cmd_parse,
    "evaluate": _cmd_evaluate,
    "metrics": _cmd_metrics,
    "score": _cmd_score,
    "tune": _cmd_tune,
    "mine": _cmd_mine,
    "stream": _cmd_stream,
    "supervise": _cmd_supervise,
    "soak": _cmd_soak,
    "serve": _cmd_serve,
    "send": _cmd_send,
    "watch": _cmd_watch,
    "report": _cmd_report,
    "verify-run": _cmd_verify_run,
}


def main(argv: list[str] | None = None) -> int:
    args = build_arg_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return exit_code_for(error)


if __name__ == "__main__":
    sys.exit(main())
