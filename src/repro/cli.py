"""Command-line interface: ``repro-logparse`` / ``python -m repro``.

Subcommands:

* ``generate`` — write a synthetic dataset to a raw log file.
* ``parse`` — parse a raw log file with a chosen parser, writing the
  standard ``.events`` / ``.structured`` outputs of §II-C.
* ``evaluate`` — F-measure of a parser on a sampled dataset (Table II
  style, one cell).
* ``mine`` — run PCA anomaly detection on simulated HDFS sessions with
  a chosen parser (Table III style, one row).
* ``stream`` — parse a raw log file or synthetic dataset incrementally
  through the template-cache streaming engine, reporting cache hit
  rate and throughput (§V / Finding 3 remedy).
"""

from __future__ import annotations

import argparse
import sys
from functools import partial

from repro.common.errors import ReproError
from repro.datasets import (
    DATASET_NAMES,
    generate_dataset,
    generate_hdfs_sessions,
    get_dataset_spec,
    iter_dataset,
    iter_raw_log,
    read_raw_log,
    write_parse_result,
    write_raw_log,
)
from repro.evaluation import evaluate_accuracy, evaluate_mining_impact
from repro.evaluation.mining_impact import table3_parser_factory
from repro.parsers import PARSER_NAMES, default_preprocessor, make_parser
from repro.streaming import ParseSession, StreamingParser, diff_results


def _add_generate(subparsers) -> None:
    cmd = subparsers.add_parser(
        "generate", help="generate a synthetic dataset into a raw log file"
    )
    cmd.add_argument("dataset", choices=DATASET_NAMES)
    cmd.add_argument("output", help="raw log file to write")
    cmd.add_argument("--size", type=int, default=2000)
    cmd.add_argument("--seed", type=int, default=None)


def _add_parse(subparsers) -> None:
    cmd = subparsers.add_parser(
        "parse", help="parse a raw log file into events + structured logs"
    )
    cmd.add_argument("parser", choices=PARSER_NAMES)
    cmd.add_argument("input", help="raw log file to parse")
    cmd.add_argument(
        "--output-stem",
        default=None,
        help="stem for .events/.structured outputs (default: input path)",
    )
    cmd.add_argument(
        "--preprocess-dataset",
        default=None,
        help="apply this dataset's domain-knowledge preprocessing rules",
    )
    cmd.add_argument(
        "--groups",
        type=int,
        default=50,
        help="LogSig only: number of signature groups",
    )
    cmd.add_argument("--support", type=float, default=0.005, help="SLCT only")
    cmd.add_argument("--seed", type=int, default=None)


def _add_evaluate(subparsers) -> None:
    cmd = subparsers.add_parser(
        "evaluate", help="parsing accuracy (F-measure) on a sampled dataset"
    )
    cmd.add_argument("parser", choices=PARSER_NAMES)
    cmd.add_argument("dataset", choices=DATASET_NAMES)
    cmd.add_argument("--sample-size", type=int, default=2000)
    cmd.add_argument("--preprocess", action="store_true")
    cmd.add_argument("--runs", type=int, default=None)
    cmd.add_argument("--seed", type=int, default=None)


def _add_metrics(subparsers) -> None:
    cmd = subparsers.add_parser(
        "metrics",
        help="all clustering metrics of a parser on a sampled dataset",
    )
    cmd.add_argument("parser", choices=PARSER_NAMES)
    cmd.add_argument("dataset", choices=DATASET_NAMES)
    cmd.add_argument("--sample-size", type=int, default=2000)
    cmd.add_argument("--preprocess", action="store_true")
    cmd.add_argument("--seed", type=int, default=None)


def _add_tune(subparsers) -> None:
    cmd = subparsers.add_parser(
        "tune",
        help="grid-search parser parameters on a 2k sample (Finding 4)",
    )
    cmd.add_argument("parser", choices=PARSER_NAMES)
    cmd.add_argument("dataset", choices=DATASET_NAMES)
    cmd.add_argument("--sample-size", type=int, default=2000)
    cmd.add_argument("--seed", type=int, default=None)


def _add_mine(subparsers) -> None:
    cmd = subparsers.add_parser(
        "mine",
        help="PCA anomaly detection over simulated HDFS block sessions",
    )
    cmd.add_argument(
        "parser", choices=[*PARSER_NAMES, "GroundTruth"]
    )
    cmd.add_argument("--blocks", type=int, default=2000)
    cmd.add_argument("--seed", type=int, default=None)
    cmd.add_argument("--alpha", type=float, default=0.001)


def _add_stream(subparsers) -> None:
    cmd = subparsers.add_parser(
        "stream",
        help="parse incrementally through the streaming engine",
    )
    cmd.add_argument("parser", choices=PARSER_NAMES)
    cmd.add_argument(
        "input",
        nargs="?",
        default=None,
        help="raw log file to stream (omit when using --dataset)",
    )
    cmd.add_argument(
        "--dataset",
        choices=DATASET_NAMES,
        default=None,
        help="stream a synthetic dataset instead of a file",
    )
    cmd.add_argument(
        "--size", type=int, default=100_000,
        help="lines to generate with --dataset",
    )
    cmd.add_argument(
        "--flush-policy",
        choices=["delta", "prefix"],
        default="delta",
        help="delta: parse only misses (fast, approximate); "
        "prefix: re-parse the retained prefix (identical to batch)",
    )
    cmd.add_argument("--flush-size", type=int, default=512)
    cmd.add_argument("--cache-capacity", type=int, default=4096)
    cmd.add_argument("--max-retries", type=int, default=3)
    cmd.add_argument(
        "--workers", type=int, default=1,
        help="flush through a ChunkedParallelParser with this many processes",
    )
    cmd.add_argument("--chunk-size", type=int, default=10_000)
    cmd.add_argument(
        "--report-every", type=int, default=0,
        help="print a progress line every N streamed lines",
    )
    cmd.add_argument(
        "--no-retain",
        action="store_true",
        help="drop per-line state for bounded memory (no outputs/verify)",
    )
    cmd.add_argument(
        "--verify",
        action="store_true",
        help="batch-parse the same lines afterwards and diff the results",
    )
    cmd.add_argument(
        "--mine",
        action="store_true",
        help="run PCA anomaly detection on the live session-event matrix",
    )
    cmd.add_argument(
        "--output-stem",
        default=None,
        help="write .events/.structured outputs of the finalized parse",
    )
    cmd.add_argument(
        "--preprocess-dataset",
        default=None,
        help="apply this dataset's domain-knowledge preprocessing rules",
    )
    cmd.add_argument(
        "--groups", type=int, default=50, help="LogSig only"
    )
    cmd.add_argument("--support", type=float, default=0.005, help="SLCT only")
    cmd.add_argument("--seed", type=int, default=None)


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-logparse",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_generate(subparsers)
    _add_parse(subparsers)
    _add_evaluate(subparsers)
    _add_metrics(subparsers)
    _add_tune(subparsers)
    _add_mine(subparsers)
    _add_stream(subparsers)
    return parser


def _cmd_generate(args) -> int:
    spec = get_dataset_spec(args.dataset)
    dataset = generate_dataset(spec, args.size, seed=args.seed)
    write_raw_log(dataset.records, args.output)
    print(
        f"wrote {len(dataset)} {spec.name} log messages "
        f"({len(dataset.observed_event_ids())} event types) to {args.output}"
    )
    return 0


def _cmd_parse(args) -> int:
    records = read_raw_log(args.input)
    preprocessor = (
        default_preprocessor(args.preprocess_dataset)
        if args.preprocess_dataset
        else None
    )
    params: dict = {"preprocessor": preprocessor}
    if args.parser == "LogSig":
        params.update(groups=args.groups, seed=args.seed)
    elif args.parser == "SLCT":
        params.update(support=args.support)
    elif args.parser == "LKE":
        params.update(seed=args.seed)
    parser = make_parser(args.parser, **params)
    result = parser.parse(records)
    stem = args.output_stem or args.input
    events_path, structured_path = write_parse_result(result, stem)
    print(
        f"{parser.name}: {len(result.events)} events from "
        f"{len(records)} lines -> {events_path}, {structured_path}"
    )
    return 0


def _cmd_evaluate(args) -> int:
    result = evaluate_accuracy(
        args.parser,
        args.dataset,
        sample_size=args.sample_size,
        preprocess=args.preprocess,
        runs=args.runs,
        seed=args.seed,
    )
    print(
        f"{result.parser} on {result.dataset} "
        f"({'preprocessed' if result.preprocessed else 'raw'}, "
        f"{result.sample_size} lines, {len(result.runs)} run(s)): "
        f"F-measure {result.mean_f_measure:.3f}"
        + (
            f" ± {result.stdev_f_measure:.3f}"
            if len(result.runs) > 1
            else ""
        )
    )
    return 0


def _cmd_metrics(args) -> int:
    from repro.datasets import generate_dataset, sample_records
    from repro.evaluation.accuracy import tuned_parser_factory
    from repro.evaluation.fmeasure import singletonize_outliers
    from repro.evaluation.metrics import summary

    spec = get_dataset_spec(args.dataset)
    generated = generate_dataset(
        spec, max(3 * args.sample_size, 4000), seed=args.seed
    )
    sampled = sample_records(
        generated.records, args.sample_size, seed=args.seed
    )
    truth = [record.truth_event or "" for record in sampled]
    parser = tuned_parser_factory(
        args.parser, args.dataset, preprocess=args.preprocess,
        seed=args.seed,
    )
    parsed = parser.parse(sampled)
    scores = summary(singletonize_outliers(parsed.assignments), truth)
    print(f"{parser.name} on {spec.name} ({len(sampled)} lines):")
    for metric, value in scores.items():
        print(f"  {metric:20s} {value:.3f}")
    return 0


def _cmd_tune(args) -> int:
    from repro.evaluation.tuning import tune_on_dataset

    report = tune_on_dataset(
        args.parser,
        args.dataset,
        sample_size=args.sample_size,
        seed=args.seed,
    )
    print(
        f"tuned {report.parser} on a {report.sample_size}-line "
        f"{report.dataset} sample ({len(report.candidates)} candidates, "
        f"{report.total_seconds:.1f}s total):"
    )
    for candidate in sorted(
        report.candidates, key=lambda c: -c.f_measure
    ):
        print(
            f"  F={candidate.f_measure:.3f} ({candidate.seconds:5.1f}s) "
            f"{dict(candidate.params)}"
        )
    print(f"best: {dict(report.best.params)}")
    return 0


def _cmd_mine(args) -> int:
    dataset = generate_hdfs_sessions(args.blocks, seed=args.seed)
    parser = table3_parser_factory(args.parser, seed=args.seed)
    row = evaluate_mining_impact(parser, dataset, alpha=args.alpha)
    print(
        f"{row.parser}: parsing accuracy {row.parsing_accuracy:.2f}, "
        f"reported {row.reported}, detected {row.detected} "
        f"({row.detection_rate:.0%} of {row.true_anomalies}), "
        f"false alarms {row.false_alarms} ({row.false_alarm_rate:.1%})"
    )
    return 0


def _cmd_stream(args) -> int:
    if (args.dataset is None) == (args.input is None):
        print(
            "error: give exactly one of INPUT or --dataset",
            file=sys.stderr,
        )
        return 2
    if args.no_retain and (
        args.verify or args.output_stem or args.flush_policy == "prefix"
    ):
        print(
            "error: --no-retain cannot be combined with --verify, "
            "--output-stem, or --flush-policy prefix",
            file=sys.stderr,
        )
        return 2
    params: dict = {}
    if args.parser == "LogSig":
        params.update(groups=args.groups, seed=args.seed)
    elif args.parser == "SLCT":
        params.update(support=args.support)
    elif args.parser == "LKE":
        params.update(seed=args.seed)
    factory = partial(make_parser, args.parser, **params)
    preprocessor = (
        default_preprocessor(args.preprocess_dataset)
        if args.preprocess_dataset
        else None
    )
    engine = StreamingParser(
        factory,
        flush_policy=args.flush_policy,
        flush_size=args.flush_size,
        cache_capacity=args.cache_capacity,
        max_flush_retries=args.max_retries,
        workers=args.workers,
        chunk_size=args.chunk_size,
        retain=not args.no_retain,
        preprocessor=preprocessor,
    )
    session = ParseSession(engine, track_matrix=args.mine)
    if args.dataset is not None:
        records = iter_dataset(
            get_dataset_spec(args.dataset), args.size, seed=args.seed
        )
    else:
        records = iter_raw_log(args.input)
    session.consume(records, report_every=args.report_every or None)
    result = session.finalize()
    print(session.counters().describe())
    if args.output_stem and result is not None:
        events_path, structured_path = write_parse_result(
            result, args.output_stem
        )
        print(f"wrote {events_path}, {structured_path}")
    if args.mine:
        from repro.mining import tf_idf_transform
        from repro.mining.pca import PcaAnomalyModel

        counts = session.matrix()
        weighted = tf_idf_transform(counts.matrix)
        model = PcaAnomalyModel()
        model.fit(weighted)
        flagged = (model.spe(weighted) > model.threshold).sum()
        print(
            f"live PCA mining: {counts.matrix.shape[0]} sessions x "
            f"{counts.matrix.shape[1]} events, {flagged} flagged anomalous"
        )
    if args.verify and result is not None:
        batch_parser = make_parser(
            args.parser, preprocessor=preprocessor, **params
        )
        report = diff_results(
            batch_parser.name,
            batch_parser.parse(result.records),
            result,
        )
        print(report.describe())
        if args.flush_policy == "prefix" and not report.equivalent:
            return 1
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "parse": _cmd_parse,
    "evaluate": _cmd_evaluate,
    "metrics": _cmd_metrics,
    "tune": _cmd_tune,
    "mine": _cmd_mine,
    "stream": _cmd_stream,
}


def main(argv: list[str] | None = None) -> int:
    args = build_arg_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
