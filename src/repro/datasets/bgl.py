"""BGL dataset: a 376-event template bank modeled on BlueGene/L RAS logs.

The real BGL dataset (Oliner & Stearley, DSN 2007) was collected from the
131,072-processor BlueGene/L machine at LLNL: 4,747,963 messages across
376 event types, with message lengths from ~10 to ~102 tokens.  The bank
below reconstructs the RAS message families that dominate that data —
cache/memory ECC and parity events, ciod control-stream errors, machine
check interrupts, torus/tree network errors, node-card and service-card
hardware monitoring, kernel panics, and a handful of very long register
dumps — including the ``generating core.<n>`` family the paper singles
out as the reason LogSig's raw accuracy collapses on BGL.
"""

from __future__ import annotations

from repro.datasets.base import DatasetSpec, Template, TemplateBank

_CACHE_UNITS = [
    "L1 data cache",
    "L1 instruction cache",
    "L2 cache",
    "L3 cache",
    "L3 directory",
    "L3 EDRAM bank",
    "DDR memory controller",
    "DDR chipkill symbol",
    "torus sender fifo",
    "torus receiver fifo",
    "tree sender fifo",
    "tree receiver fifo",
]

_CACHE_CONDITIONS = [
    "parity error detected and corrected",
    "single symbol error detected and corrected",
    "double-bit error detected",
    "uncorrectable error detected",
]

_MACHINE_CHECK_CAUSES = [
    "L2 dcache unit data parity error",
    "L2 dcache unit tag parity error",
    "L2 icache unit data parity error",
    "L2 icache unit tag parity error",
    "L3 major internal error",
    "L3 minor internal error",
    "DDR failing data registers updated",
    "DDR command error",
    "DDR address error",
    "instruction address breakpoint",
    "data address breakpoint",
    "imprecise machine check",
    "torus non-recoverable error",
    "torus recoverable error",
    "tree non-recoverable error",
    "tree recoverable error",
    "blind port interrupt",
    "devbus non-recoverable error",
    "plb arbiter timeout",
    "scratch SRAM parity error",
    "lockbox access violation",
    "ethernet unit fatal error",
    "UPC interval timer interrupt",
    "watchdog timer interrupt",
]

_TORUS_DIRECTIONS = ["x+", "x-", "y+", "y-", "z+", "z-"]

_TORUS_CONDITIONS = [
    "retransmission count <num> exceeds threshold",
    "link error detected by receiver",
    "packet CRC mismatch count <num>",
]

_CIOD_MESSAGES = [
    "ciod: Error reading message prefix after <num> bytes on CioStream socket to <ip>:<port>",
    "ciod: Error reading message prefix on CioStream socket to <ip>:<port> Link has been severed",
    "ciod: failed to read message prefix on control stream CioStream socket to <ip>:<port>",
    "ciod: Error loading <path> invalid or missing program image No such file or directory",
    "ciod: Error loading <path> invalid or missing program image Exec format error",
    "ciod: Error loading <path> program image too big <num> > <num>",
    "ciod: Error creating node map from file <path> No child processes",
    "ciod: Error opening node map file <path> No such file or directory",
    "ciod: LOGIN chdir <path> failed: No such file or directory",
    "ciod: LOGIN chdir <path> failed: Input/output error",
    "ciod: cpu <num> at treeaddr <num> sent unrecognized message <hex>",
    "ciod: duplicate canonical-rank <num> to logical-rank <num> mapping at line <num> of node map file <path>",
    "ciod: generated <num> core files for program <path>",
    "ciod: In packet from node <num> <num> message code <num> is not <num> or 4294967295",
    "ciod: In packet from node <num> <num> message still ready for node <num>",
    "ciod: Missing or invalid fields on line <num> of node map file <path>",
    "ciod: pollControlDescriptors: Detected the debugger died",
    "ciod: Received signal <snum> while attempting to read message prefix on control stream socket to <ip>:<port>",
]

_KERNEL_EVENTS = [
    "rts panic! - stopping execution",
    "rts: kernel terminated for reason <num>",
    "rts: bad message header: invalid cpu <num>",
    "rts internal error",
    "start initialization of CIOD tree protocol",
    "external input interrupt (unit=<hex> bit=<snum>): uncorrectable torus error",
    "external input interrupt (unit=<hex> bit=<snum>): tree receiver <snum> in resynch mode",
    "external input interrupt (unit=<hex> bit=<snum>): number of corrected SRAM errors has exceeded threshold",
    "data TLB error interrupt",
    "instruction TLB error interrupt",
    "data storage interrupt caused by dcbz instruction",
    "instruction storage interrupt: permission violation",
    "program interrupt: illegal instruction",
    "program interrupt: privileged instruction",
    "program interrupt: trap instruction",
    "program interrupt: fp compare instruction",
    "program interrupt: unimplemented operation",
    "program interrupt: imprecise exception",
    "alignment interrupt at address <hex>",
    "floating point unavailable interrupt",
    "auxiliary processor unavailable interrupt",
    "debug interrupt enable set in machine state register",
    "kernel panic mode entered - halting core <num>",
    "total of <num> ddr error(s) detected and corrected over <num> seconds",
    "total of <num> ddr error(s) detected and corrected on rank <snum> symbol <num> over <num> seconds",
    "<num> ddr errors(s) detected and corrected on rank <snum> symbol <num> bit <num>",
    "CE sym <num> at <hex> mask <hex>",
    "memory manager address not aligned: <hex>",
    "wait state enable bit set in machine state register",
    "msync timeout after <num> cycles",
    "invalid or missing program image No such device",
    "exited normally with exit code <snum>",
    "killed with signal <snum>",
    "core configuration register: <hex>",
    "instruction cache parity error corrected",
]

_EXIT_SIGNALS = [
    "Hangup",
    "Interrupt",
    "Quit",
    "Illegal instruction",
    "Trace/breakpoint trap",
    "Aborted",
    "Bus error",
    "Floating point exception",
    "Killed",
    "User defined signal 1",
    "User defined signal 2",
    "Segmentation fault",
    "Broken pipe",
    "Alarm clock",
    "Terminated",
    "Stopped (signal)",
]

_BGLMASTER_EVENTS = [
    "BGLMASTER failover: mmcs_server failed, restarting",
    "BGLMASTER failover: ciodb failed, restarting",
    "BGLMASTER failover: idoproxy failed, restarting",
    "BGLMASTER started as primary on <host>",
    "BGLMASTER started as backup on <host>",
    "BGLMASTER heartbeat lost from <host> after <num> seconds",
    "BGLMASTER: mmcs_server exited with status <snum>",
    "BGLMASTER: ciodb exited with status <snum>",
    "BGLMASTER: idoproxy exited with status <snum>",
    "BGLMASTER configuration reloaded from <path>",
    "BGLMASTER console connection accepted from <ip>:<port>",
    "BGLMASTER console connection closed from <ip>:<port>",
]

_THERMAL_COMPONENTS = [
    "ASIC",
    "DRAM module",
    "optical module",
    "power converter",
]

_IDO_COMMAND_ERRORS = [
    "idoproxy error sending reset command to <node>: timeout after <num> ms",
    "idoproxy error sending boot command to <node>: timeout after <num> ms",
    "idoproxy error sending status command to <node>: timeout after <num> ms",
    "idoproxy error sending shutdown command to <node>: timeout after <num> ms",
    "idoproxy retry limit reached for command <num> to <node>",
    "idoproxy dropped <num> packets from <node> due to bad checksum",
    "idoproxy queue overflow: <num> commands pending for <node>",
    "idoproxy lost carrier on serial port to <node>",
    "idoproxy invalid response opcode <hex> from <node>",
    "idoproxy session to <node> reestablished after <num> retries",
]

_NODECARD_SENSORS = [
    "temperature sensor",
    "voltage sensor 1.5V rail",
    "voltage sensor 2.5V rail",
    "voltage sensor 3.3V rail",
    "clock frequency sensor",
    "fan tachometer",
    "current sensor",
    "humidity sensor",
]

_MONITOR_EVENTS = [
    "MidplaneSwitchController performing bit sparing on <node> bit <num>",
    "MidplaneSwitchController clock signal lost on jtag port <num>",
    "Error getting detailed hardware info for node <node>",
    "Node card VPD check: missing serial number for node <node>",
    "Node card is not fully functional: <node>",
    "problem communicating with service card <node> ido chip: <hex>",
    "problem communicating with node card <node> ido chip: <hex>",
    "PrepareForService shutting down node card <node>",
    "PrepareForService shutting down service card <node>",
    "PrepareForService shutting down link card <node>",
    "LinkCard power module <node> is not accessible",
    "LinkCard is not fully functional: <node>",
    "No power module <node> found found on link card",
    "While initializing link card <node> chip <num> got JTAG error <hex>",
    "fan module <node> speed <num> rpm below minimum",
    "power module <node> output current <float> amps over limit",
    "power deactivated: <node>",
    "power activated: <node>",
    "service card <node> ethernet port failed to negotiate link",
    "ido packet timeout while polling node card <node>",
]

_MMCS_EVENTS = [
    "idoproxydb hit ASSERT condition: ASSERT expression=<num> source file=<path> line=<num>",
    "idoproxydb has been started: $Name: <path> $ Input parameters: -enableflush -loguserinfo <path>",
    "mmcs_server_connect failed to connect to <ip>:<port>",
    "DeclareServiceNetworkCharacteristics has been run but the DB is not empty",
    "BglIdoChip table has <num> rows not matching machine topology",
    "ido chip status changed: <node> now in state <num>",
    "lib_ido_error: -<num> unexpected socket error: Broken pipe",
    "socket closed by peer <ip>:<port> while waiting for reply",
    "can not get assembly information for node card <node>",
    "mailbox error on node <node>: <hex>",
    "boot program load failed for block <node> status <num>",
    "block allocation failed: partition <node> already booted",
    "ciodb has been restarted",
    "mmcs db server has been started: $Name: <path> $ Input parameters: -dbproperties <path>",
    "idoproxy communication failure detected on <node>",
]

_APP_EVENTS = [
    "APP FATAL failed to mmap <num> bytes: Cannot allocate memory",
    "APP FATAL job <num> timed out after <num> seconds",
    "APP SEVERE tree network send failed rc <num>",
    "APP SEVERE MPI rank <num> out of range on node <node>",
    "APP INFO barrier enter rank <num> of <num>",
    "APP INFO checkpoint written to <path> in <float> seconds",
]


def _register_dump(name: str, registers: list[str]) -> str:
    """Build one very long register-dump template (tens of tokens)."""
    fields = " ".join(f"{register}: <hex>" for register in registers)
    return f"{name} {fields}"


_LONG_DUMPS = [
    _register_dump(
        "machine check status register summary:",
        [f"mcsr{i}" for i in range(24)],
    ),
    _register_dump(
        "general purpose registers:",
        [f"r{i}" for i in range(32)],
    ),
    _register_dump(
        "floating point registers:",
        [f"fpr{i}" for i in range(32)],
    ),
    _register_dump(
        "special purpose registers:",
        ["lr", "cr", "xer", "ctr", "srr0", "srr1", "csrr0", "csrr1",
         "dear", "esr", "mcsr", "tsr", "tcr", "dbsr", "pid", "ccr0"],
    ),
    _register_dump(
        "torus hardware status dump:",
        [f"dcr{i:02d}" for i in range(40)],
    ),
    _register_dump(
        "tree arbiter state dump:",
        [f"arb{i:02d}" for i in range(28)],
    ),
]

# Long tail of rare, individually-worded RAS events.  Real BGL's tail
# events differ in wording and shape (not just in one location token),
# which is what lets the heuristic parsers separate them even at one or
# two occurrences each.
_TAIL_EVENTS = [
    "ddr: activating redundant bit steering: rank=<snum> symbol=<num>",
    "ddr: scrub cycle completed, no errors found",
    "ddr: redundant bit steering disabled on rank <snum>",
    "ddr: memory controller initialization complete",
    "ddr: refresh rate lowered to compensate for temperature",
    "L3 ecc control register reset to default value",
    "L3 global flush of pending writebacks initiated",
    "L3 cache flush completed in <num> cycles",
    "L2 array initialization skipped: already initialized",
    "L1 flush on context switch enabled",
    "icache prefetch depth set to <snum>",
    "dcache write-through mode enabled by configuration",
    "snoop filter disabled for debug",
    "lockbox master unlocked for core <snum>",
    "sram scrub started at address <hex>",
    "sram scrub finished at address <hex>",
    "interrupt vector table relocated to <hex>",
    "decrementer interrupt armed with period <num>",
    "fit interrupt period set to <num> cycles",
    "watchdog period extended to <num> seconds",
    "tlb invalidate all broadcast to both cores",
    "mmu page table walk error recovered",
    "floating point status register cleared after exception",
    "fpu pipeline drained before checkpoint",
    "double hummer unit disabled for diagnostic run",
    "dma engine channel <snum> reset",
    "dma descriptor ring exhausted, allocating <num> more entries",
    "torus injection fifo watermark set to <num>",
    "torus reception fifo watermark set to <num>",
    "torus neighbor handshake completed on all six links",
    "torus route table checksum verified",
    "torus deterministic routing enabled",
    "torus adaptive routing enabled",
    "tree arithmetic unit self test passed",
    "tree class route <snum> reconfigured",
    "tree bandwidth counter overflow, resetting",
    "barrier network armed for partition",
    "barrier released after <num> microseconds",
    "global interrupt asserted by compute node <node>",
    "collective network idle timeout after <num> ms",
    "ethernet unit link negotiated at 1000 Mbps full duplex",
    "ethernet transmit queue stalled, restarting",
    "ethernet receive checksum offload enabled",
    "jtag mailbox handshake completed",
    "jtag access to node <node> granted to service console",
    "palomino chip reset sequence initiated",
    "clock tree resynchronized after drift of <num> ppm",
    "clock card primary oscillator selected",
    "midplane power rail <snum> stabilized at <float> volts",
    "bulk power module load balanced across <snum> units",
    "service action pending: replace fan assembly on <node>",
    "service action completed: fan assembly replaced on <node>",
    "environmental monitor polling interval set to <num> seconds",
    "cabinet door opened, airflow compensation engaged",
    "cabinet door closed, airflow back to normal profile",
    "link card optical transceiver temperature <num> C nominal",
    "link card lane <snum> realigned after skew detection",
    "spider chip port <snum> parity protected mode enabled",
    "boot image checksum verified for block <node>",
    "boot loader handed off control to compute node kernel",
    "kernel command line parsed: <num> arguments",
    "initial ramdisk unpacked: <num> KB",
    "personality record loaded for partition <node>",
    "partition geometry set to <snum> x <snum> x <snum>",
    "job loader contacted control system at <ip>:<port>",
    "application image distributed to <num> nodes in <float> seconds",
    "standard input redirected to service node stream",
    "standard output flushed: <num> bytes pending at exit",
    "core file limit set to <num> per node",
    "checkpoint library preloaded for restart support",
    "restart from checkpoint <path> requested",
    "restart completed: <num> processes resumed",
    "heartbeat to service node missed once, retrying",
    "heartbeat restored after <num> missed intervals",
    "console session attached by operator <user>",
    "console session detached by operator <user>",
    "rts: stack guard page armed at <hex>",
    "rts: heap extended by <num> KB",
    "rts: mmap region reserved at <hex> length <num>",
    "rts: signal handler installed for signal <snum>",
    "rts: thread stack allocated for pthread <num>",
    "rts: barrier entered by both cores",
    "rts: scratch space reclaimed: <num> KB",
    "mcp: message layer initialized with <num> buffers",
    "mcp: eager limit set to <num> bytes",
    "mcp: rendezvous protocol selected for large messages",
    "mcp: collective shortcut enabled for allreduce",
    "mailbox: command <num> acknowledged by service node",
    "mailbox: unsolicited status frame discarded",
    "power: core voltage adjusted to <float> V for frequency step",
    "power: sleep state entered on idle core",
    "power: sleep state exited after interrupt",
    "temperature: compute ASIC at <num> C within envelope",
    "temperature: exceeded soft limit, fan speed raised",
    "temperature: returned below soft limit",
    "parity: bus transaction retried successfully",
    "parity: retry budget exhausted, escalating to machine check",
    "diagnostic: memory march test pass <snum> complete",
    "diagnostic: torus loopback test passed on all links",
    "diagnostic: tree loopback test passed",
    "diagnostic: full system test suite finished with <num> warnings",
    "config: rollover of event log after <num> records",
    "config: RAS filtering threshold set to <num> per minute",
    "config: verbose kernel logging enabled by operator",
    "config: verbose kernel logging disabled by operator",
    "security: invalid service console credential from <ip>",
    "security: service console credential accepted for <user>",
    "security: service console session idle timeout after <num> minutes",
]


def _build_templates() -> list[Template]:
    templates: list[Template] = []

    def add(pattern: str, weight: float = 1.0) -> None:
        templates.append(
            Template(f"BGL{len(templates) + 1}", pattern, weight=weight)
        )

    # High-frequency kernel families first (weights mimic BGL's skew:
    # a few event types cover most of the data).
    add("generating <core>", weight=150)
    add("ciod: Message code <num> is not <num> or 4294967295", weight=120)
    add(
        "ddr: excessive soft failures, consider replacing the ddr memory on this card",
        weight=80,
    )
    add("critical input interrupt (unit=<hex> bit=<snum>): warning for torus <node> wire", weight=60)

    for unit in _CACHE_UNITS:
        for condition in _CACHE_CONDITIONS:
            add(f"{unit} {condition} at address <hex>", weight=6)
    for unit in _CACHE_UNITS:
        add(
            f"{unit} error count exceeded threshold: <num> errors in <num> seconds",
            weight=2,
        )
    for cause in _MACHINE_CHECK_CAUSES:
        add(f"machine check interrupt (bit=<snum>): {cause}", weight=3)
    for direction in _TORUS_DIRECTIONS:
        for condition in _TORUS_CONDITIONS:
            add(f"torus {direction} {condition} on node <node>", weight=2)
    for message in _CIOD_MESSAGES:
        add(message, weight=8)
    for event in _KERNEL_EVENTS:
        add(event, weight=10)
    for sensor in _NODECARD_SENSORS:
        add(f"node card {sensor} reading <float> over threshold on <node>", weight=2)
        add(f"node card {sensor} reading <float> under threshold on <node>", weight=1)
    for event in _MONITOR_EVENTS:
        add(event, weight=3)
    for event in _MMCS_EVENTS:
        add(event, weight=3)
    for event in _APP_EVENTS:
        add(event, weight=4)
    for signal in _EXIT_SIGNALS:
        add(f"exited abnormally due to signal: {signal}", weight=2)
    for event in _BGLMASTER_EVENTS:
        add(event, weight=1.5)
    for component in _THERMAL_COMPONENTS:
        add(f"{component} temperature <num> C over threshold on <node>", weight=1)
        add(f"{component} temperature back in range on <node>", weight=1)
    for event in _IDO_COMMAND_ERRORS:
        add(event, weight=1.5)
    for dump in _LONG_DUMPS:
        add(dump, weight=1.5)

    remaining = 376 - len(templates)
    if remaining < 0:
        raise AssertionError(
            f"BGL bank over target: {len(templates)} > 376 templates"
        )
    if remaining > len(_TAIL_EVENTS):
        raise AssertionError(
            f"BGL tail too short: need {remaining}, have "
            f"{len(_TAIL_EVENTS)}"
        )
    for event in _TAIL_EVENTS[:remaining]:
        add(event, weight=0.5)
    return templates


BGL_BANK = TemplateBank(name="BGL", templates=tuple(_build_templates()))

BGL_SPEC = DatasetSpec(
    name="BGL",
    description="BlueGene/L supercomputer (LLNL)",
    bank=BGL_BANK,
    reference_size=4_747_963,
    paper_events=376,
    paper_length_range=(10, 102),
)
