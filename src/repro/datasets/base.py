"""Dataset building blocks: templates, template banks, dataset specs.

A :class:`Template` is a log-message pattern with ``<kind>`` placeholders
(e.g. ``Receiving block <blk> src: /<ip>:<port> dest: /<ip>:<port>``).
Rendering a template substitutes concrete values for the placeholders;
its *truth template* replaces every placeholder-bearing token with the
``*`` wildcard, which is the token-level ground truth the paper's
F-measure evaluation clusters against.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from collections.abc import Callable
from random import Random

from repro.common.errors import DatasetError
from repro.common.tokenize import WILDCARD, render_template, tokenize
from repro.common.types import LogRecord

#: Matches one ``<kind>`` placeholder inside a template token.
PLACEHOLDER_PATTERN = re.compile(r"<([a-z_]+)>")


def _random_ip(rng: Random) -> str:
    return (
        f"10.{rng.randint(0, 255)}.{rng.randint(0, 255)}"
        f".{rng.randint(1, 254)}"
    )


def _random_port(rng: Random) -> str:
    return str(rng.randint(1024, 65535))


def _random_block_id(rng: Random) -> str:
    sign = "-" if rng.random() < 0.5 else ""
    return f"blk_{sign}{rng.randint(10**15, 10**19 - 1)}"


def _random_number(rng: Random) -> str:
    return str(rng.randint(0, 99999))


def _random_small_number(rng: Random) -> str:
    return str(rng.randint(0, 9))


def _random_responder(rng: Random) -> str:
    # HDFS PacketResponder indices are pipeline positions (0..2 for the
    # default replication factor of 3).
    return str(rng.randint(0, 2))


def _random_hex(rng: Random) -> str:
    return f"0x{rng.getrandbits(32):08x}"


def _random_size(rng: Random) -> str:
    # Full 64 MB blocks recur; file-tail blocks vary freely.
    if rng.random() < 0.15:
        return "67108864"
    return str(rng.randint(1, 67108863))


def _random_path(rng: Random) -> str:
    parts = rng.sample(
        ["user", "root", "data", "tmp", "jobs", "randtxt", "output",
         "part", "task", "mnt", "hadoop", "spool"],
        k=rng.randint(2, 4),
    )
    return "/" + "/".join(parts) + f"/part-{rng.randint(0, 99999):05d}"


def _random_host(rng: Random) -> str:
    return (
        f"{rng.choice(['node', 'cn', 'worker', 'dn', 'srv'])}-"
        f"{rng.randint(0, 4095)}"
    )


def _random_user(rng: Random) -> str:
    return rng.choice(
        ["root", "hadoop", "zookeeper", "admin", "svc", "operator", "nobody"]
    )


def _random_float(rng: Random) -> str:
    return f"{rng.uniform(0, 1000):.2f}"


def _random_duration(rng: Random) -> str:
    return f"{rng.randint(0, 23):02d}:{rng.randint(0, 59):02d}"


#: Failing cores dump repeatedly, so core ids in real BGL logs are
#: heavily skewed: a handful of hot cores account for most dumps, with
#: a long uniform tail.  Hot core ids look like constants to
#: frequency-based parsers — the paper's explanation for SLCT's and
#: LogSig's low raw-BGL accuracy.
_HOT_CORES = tuple(range(256, 4096, 512))


def _random_core(rng: Random) -> str:
    if rng.random() < 0.7:
        return f"core.{rng.choice(_HOT_CORES)}"
    return f"core.{rng.randint(0, 4095)}"


def _random_cluster_node(rng: Random) -> str:
    # The paper's HPC cluster has 49 nodes; node names repeat heavily.
    return f"node-{rng.randint(0, 48)}"


def _random_node_location(rng: Random) -> str:
    return (
        f"R{rng.randint(0, 77):02d}-M{rng.randint(0, 1)}"
        f"-N{rng.randint(0, 15)}-C:J{rng.randint(0, 17):02d}-U{rng.randint(1, 11):02d}"
    )


def _random_session(rng: Random) -> str:
    return f"0x{rng.getrandbits(48):012x}"


#: Placeholder kind → value sampler.
FIELD_GENERATORS: dict[str, Callable[[Random], str]] = {
    "ip": _random_ip,
    "port": _random_port,
    "blk": _random_block_id,
    "num": _random_number,
    "snum": _random_small_number,
    "rsp": _random_responder,
    "hex": _random_hex,
    "size": _random_size,
    "path": _random_path,
    "host": _random_host,
    "user": _random_user,
    "float": _random_float,
    "time": _random_duration,
    "core": _random_core,
    "cnode": _random_cluster_node,
    "node": _random_node_location,
    "session": _random_session,
}


@dataclass(frozen=True)
class Template:
    """A log-message pattern with ``<kind>`` placeholders.

    Attributes:
        event_id: stable identifier, unique within its bank (e.g. ``E5``).
        pattern: the message pattern; placeholders may be embedded inside
            tokens (``src: /<ip>:<port>`` renders to ``src: /10.0.0.1:42``
            and its truth token is ``*`` because truth masking is
            token-level).
        weight: relative sampling frequency within the bank.
    """

    event_id: str
    pattern: str
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise DatasetError(
                f"template {self.event_id}: weight must be positive"
            )
        for kind in PLACEHOLDER_PATTERN.findall(self.pattern):
            if kind not in FIELD_GENERATORS:
                raise DatasetError(
                    f"template {self.event_id}: unknown placeholder "
                    f"<{kind}>"
                )

    @property
    def truth_template(self) -> str:
        """Token-level masked form: any token carrying a placeholder → *."""
        tokens = [
            WILDCARD if PLACEHOLDER_PATTERN.search(token) else token
            for token in tokenize(self.pattern)
        ]
        return render_template(tokens)

    @property
    def token_length(self) -> int:
        return len(tokenize(self.pattern))

    def render(self, rng: Random) -> str:
        """Instantiate the pattern with randomly sampled field values."""
        return PLACEHOLDER_PATTERN.sub(
            lambda match: FIELD_GENERATORS[match.group(1)](rng),
            self.pattern,
        )


@dataclass(frozen=True)
class TemplateBank:
    """A validated collection of templates for one system's logs."""

    name: str
    templates: tuple[Template, ...]

    def __post_init__(self) -> None:
        if not self.templates:
            raise DatasetError(f"bank {self.name}: no templates")
        ids = [t.event_id for t in self.templates]
        if len(set(ids)) != len(ids):
            raise DatasetError(f"bank {self.name}: duplicate event ids")
        truths = [t.truth_template for t in self.templates]
        duplicates = {t for t in truths if truths.count(t) > 1}
        if duplicates:
            raise DatasetError(
                f"bank {self.name}: templates collide after masking: "
                f"{sorted(duplicates)[:3]}"
            )

    def __len__(self) -> int:
        return len(self.templates)

    def __iter__(self):
        return iter(self.templates)

    def by_id(self, event_id: str) -> Template:
        for template in self.templates:
            if template.event_id == event_id:
                return template
        raise KeyError(event_id)

    @property
    def length_range(self) -> tuple[int, int]:
        lengths = [t.token_length for t in self.templates]
        return min(lengths), max(lengths)

    def truth_templates(self) -> dict[str, str]:
        """Map event id → masked truth template."""
        return {t.event_id: t.truth_template for t in self.templates}


@dataclass(frozen=True)
class DatasetSpec:
    """Static description of one of the paper's five datasets (Table I)."""

    name: str
    description: str
    bank: TemplateBank
    reference_size: int
    #: The paper's Table I event count this bank must match.
    paper_events: int
    #: The paper's Table I token-length range.
    paper_length_range: tuple[int, int]

    def __post_init__(self) -> None:
        if len(self.bank) != self.paper_events:
            raise DatasetError(
                f"{self.name}: bank has {len(self.bank)} templates, paper "
                f"reports {self.paper_events}"
            )


@dataclass
class SyntheticDataset:
    """Generated raw records plus their exact ground truth."""

    spec: DatasetSpec
    records: list[LogRecord] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    @property
    def truth_assignments(self) -> list[str]:
        """Ground-truth event id for each record, in order."""
        assignments = []
        for record in self.records:
            if record.truth_event is None:
                raise DatasetError("record missing ground-truth event id")
            assignments.append(record.truth_event)
        return assignments

    def contents(self) -> list[str]:
        return [record.content for record in self.records]

    def observed_event_ids(self) -> set[str]:
        return set(self.truth_assignments)
