"""HPC dataset: a 105-event bank modeled on the LANL HPC cluster logs.

The real dataset (LANL operational data release) comes from a 49-node
high-performance cluster; it is dominated by short hardware-state and
interconnect messages.  The paper notes that LKE's aggressive
single-linkage clustering collapses almost all HPC messages into one
cluster — the bank therefore deliberately contains many short templates
that share leading tokens (``ClusterFS failed ...``, ``PSU status ...``)
so that close message pairs exist, reproducing that failure mode.
"""

from __future__ import annotations

from repro.datasets.base import DatasetSpec, Template, TemplateBank

#: LANL node states; every ordered transition is its own event type in
#: the real data ("<node> <from-state> <to-state>").
_NODE_STATES = ["running", "down", "boot", "halt", "offline"]

_STATE_TRANSITIONS = [
    (f"<cnode> {from_state} {to_state}", 3)
    for from_state in _NODE_STATES
    for to_state in _NODE_STATES
    if from_state != to_state
]

_HANDWRITTEN = [
    # Node/unit state machine — the bulk of the real data.  LANL's
    # format leads with the reporting node, so the first token is a
    # variable — a layout that stresses position-weighted distances.
    ("<cnode> boot (command <num>)", 40),
    ("<cnode> running running", 60),
    ("<cnode> halt (command <num>)", 30),
    *_STATE_TRANSITIONS,
    ("<cnode> configured out", 10),
    ("<cnode> configured in", 10),
    ("<cnode> unavailable due to maintenance", 6),
    ("<cnode> available for use", 6),
    ("<cnode> is down", 8),
    ("<cnode> is up", 8),
    ("<cnode> removed from scheduling pool", 4),
    ("<cnode> added to scheduling pool", 4),
    # Interconnect errors.
    ("Link error on broadcast tree Interconnect-<hex> [ A_PORT_0 ]", 5),
    ("Link error on broadcast tree Interconnect-<hex> [ B_PORT_1 ]", 5),
    ("Link in reset Interconnect-<hex>", 4),
    ("Temperature ( <num> ) exceeds warning threshold on Interconnect-<hex>", 4),
    ("Interconnect-<hex> fabric routing table updated with <num> entries", 3),
    ("Broadcast tree rebuilt in <num> ms after membership change", 2),
    ("Lustre mount FAILED : <host> : block device <path>", 3),
    ("ClusterFS failed to mount <path> on <host> rc <num>", 3),
    ("ClusterFS recovery complete on <host> after <num> seconds", 2),
    ("ClusterFS server <host> not responding to pings", 3),
    ("MDS daemon restarted on <host>", 2),
    ("OST <num> on <host> marked inactive", 2),
    # Power / environment.
    ("PSU status ( on off )", 6),
    ("PSU status ( off on )", 6),
    ("PSU failure detected on chassis <num> slot <num>", 3),
    ("Fan speeds ( <num> <num> <num> <num> <num> <num> )", 8),
    ("Ambient temperature <num> C exceeds limit on chassis <num>", 3),
    ("Power cycled by operator command <num>", 2),
    ("UPS transferred to battery power", 1),
    ("UPS restored to utility power", 1),
    # Scheduler / jobs.
    ("Job <num> started on <num> nodes by user <user>", 12),
    ("Job <num> completed with status <num>", 12),
    ("Job <num> killed by user <user>", 4),
    ("Job <num> exceeded wallclock limit of <num> minutes", 3),
    ("Job <num> failed on node <cnode> signal <snum>", 3),
    ("Prologue failed for job <num> on <cnode> rc <num>", 2),
    ("Epilogue failed for job <num> on <cnode> rc <num>", 2),
    ("Scheduler checkpoint written in <num> ms", 2),
    # Memory / CPU hardware.
    ("CPU <snum> machine check error on <cnode>", 3),
    ("Correctable ECC error on <cnode> DIMM <snum> count <num>", 5),
    ("Uncorrectable ECC error on <cnode> DIMM <snum>", 2),
    ("Memory scrub completed on <cnode> in <num> seconds", 2),
    ("Cache error threshold exceeded on <cnode> CPU <snum>", 2),
    ("Kernel oops on <cnode> at address <hex>", 2),
    ("Kernel panic - not syncing: Fatal exception on <cnode>", 2),
    ("Watchdog reset issued to <cnode>", 2),
    # Network services.
    ("dhcpd: DHCPDISCOVER from <hex> via eth<snum>", 4),
    ("dhcpd: DHCPOFFER on <ip> to <hex> via eth<snum>", 4),
    ("dhcpd: DHCPREQUEST for <ip> from <hex> via eth<snum>", 4),
    ("dhcpd: DHCPACK on <ip> to <hex> via eth<snum>", 4),
    ("ntpd: time reset <float> s", 3),
    ("ntpd: synchronized to <ip> stratum <snum>", 3),
    ("sshd: Accepted publickey for <user> from <ip> port <port>", 4),
    ("sshd: Failed password for <user> from <ip> port <port>", 3),
    ("sshd: Connection closed by <ip>", 3),
    ("named: client <ip>#<port>: query refused", 2),
    ("nfsd: peername failed for <ip>", 2),
    ("automount: failed to mount <path> on <host>", 2),
    # RAID / storage.
    ("RAID controller <snum> battery charge low on <host>", 2),
    ("RAID array <snum> degraded on <host> disk <num> offline", 2),
    ("RAID array <snum> rebuild complete on <host>", 2),
    ("SMART failure predicted on <host> disk <num>", 2),
    ("scsi: aborting command due to timeout on <host> channel <snum> id <num>", 2),
    ("I/O error on device sd<snum> sector <num>", 3),
]

#: Per-component command status family — the long tail of the real data.
_COMPONENTS = [
    "backplane", "fan-tray", "ioc", "nic", "bridge", "router",
    "powerconv", "midplane", "clockcard", "diagproc",
]

_COMMAND_STATES = [
    "detected as offline",
    "detected as online",
    "self test failed with code <num>",
    "firmware updated to revision <num>",
]


def _build_templates() -> list[Template]:
    templates: list[Template] = []

    def add(pattern: str, weight: float = 1.0) -> None:
        templates.append(
            Template(f"HPC{len(templates) + 1}", pattern, weight=weight)
        )

    for pattern, weight in _HANDWRITTEN:
        add(pattern, weight)
    for component in _COMPONENTS:
        for state in _COMMAND_STATES:
            if len(templates) >= 105:
                break
            add(f"Component {component} unit <snum> {state}", weight=1)
    if len(templates) != 105:
        raise AssertionError(
            f"HPC bank has {len(templates)} templates, expected 105"
        )
    return templates


HPC_BANK = TemplateBank(name="HPC", templates=tuple(_build_templates()))

HPC_SPEC = DatasetSpec(
    name="HPC",
    description="High performance cluster (Los Alamos)",
    bank=HPC_BANK,
    reference_size=433_490,
    paper_events=105,
    paper_length_range=(6, 104),
)
