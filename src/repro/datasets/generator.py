"""Generic synthetic log generation from a template bank.

:func:`generate_dataset` draws templates according to their weights and
renders each into a raw log message carrying its ground-truth event id.
Timestamps advance monotonically with small random steps so generated
files look like real logs and loaders can exercise header stripping.
"""

from __future__ import annotations

import datetime
from collections.abc import Iterator

from repro.common.errors import DatasetError
from repro.common.rng import spawn
from repro.common.types import LogRecord
from repro.datasets.base import DatasetSpec, SyntheticDataset, Template

#: Fixed origin for synthetic timestamps (date of the HDFS trace in Fig. 1).
_EPOCH = datetime.datetime(2008, 11, 9, 20, 35, 32)


def _timestamp(step: int) -> str:
    moment = _EPOCH + datetime.timedelta(seconds=step)
    return moment.strftime("%Y-%m-%d %H:%M:%S")


def generate_dataset(
    spec: DatasetSpec,
    size: int,
    seed: int | None = None,
) -> SyntheticDataset:
    """Generate *size* log records from *spec*'s template bank.

    Sampling is weighted by each template's ``weight``; every template
    with positive weight can appear, and for sizes comfortably above the
    bank size the generator first deals one record per template (in a
    shuffled order) so that all of the paper's event types occur, then
    fills the remainder by weighted sampling.  This mirrors the real
    datasets, where every reported event type is present.
    """
    return SyntheticDataset(
        spec=spec, records=list(iter_dataset(spec, size, seed=seed))
    )


def iter_dataset(
    spec: DatasetSpec,
    size: int,
    seed: int | None = None,
) -> Iterator[LogRecord]:
    """Lazily yield the exact record sequence of :func:`generate_dataset`.

    Only the drawn template *references* are materialized up front
    (cheap — one pointer per line); each record's content is rendered
    as it is consumed, so arbitrarily large streams can be fed to the
    streaming parser without holding the rendered log in memory.
    """
    if size <= 0:
        raise DatasetError(f"size must be positive, got {size}")
    rng = spawn(seed, f"dataset:{spec.name}:{size}")
    templates = list(spec.bank)
    weights = [t.weight for t in templates]

    chosen: list[Template] = []
    if size >= 2 * len(templates):
        coverage = templates[:]
        rng.shuffle(coverage)
        chosen.extend(coverage)
    chosen.extend(
        rng.choices(templates, weights=weights, k=size - len(chosen))
    )
    rng.shuffle(chosen)

    clock = 0
    for template in chosen:
        clock += rng.choice([0, 0, 1, 1, 2, 5])
        yield LogRecord(
            content=template.render(rng),
            timestamp=_timestamp(clock),
            truth_event=template.event_id,
        )
