"""Proxifier dataset: the 8-event bank of the desktop proxy client logs.

Proxifier is standalone Windows software that tunnels application
connections through a proxy; its log is tiny (10,108 lines, 8 event
types in the paper's Table I).  The templates mirror the real
open/close/error message shapes.
"""

from __future__ import annotations

from repro.datasets.base import DatasetSpec, Template, TemplateBank

_PROGRAMS = ["chrome.exe", "firefox.exe", "outlook.exe", "Dropbox.exe",
             "thunderbird.exe", "ssh.exe"]

_HANDWRITTEN = [
    ("<host>.cse.cuhk.edu.hk:<port> open through proxy proxy.cse.cuhk.edu.hk:5070 HTTPS", 25),
    ("<host>.cse.cuhk.edu.hk:<port> open through proxy proxy.cse.cuhk.edu.hk:5070 SOCKS5", 15),
    ("<host>.cse.cuhk.edu.hk:<port> close, <num> bytes sent, <num> bytes received, lifetime <time>", 35),
    ("<host>.cse.cuhk.edu.hk:<port> close, <num> bytes (<float> KB) sent, <num> bytes (<float> KB) received, lifetime <time>", 15),
    ("<host>.cse.cuhk.edu.hk:<port> error : Could not connect through proxy proxy.cse.cuhk.edu.hk:5070 - Proxy server cannot establish a connection with the target, status code 403", 3),
    ("<host>.cse.cuhk.edu.hk:<port> error : Could not connect through proxy proxy.cse.cuhk.edu.hk:5070 - Connection timed out, status code 504", 2),
    ("proxy.cse.cuhk.edu.hk:5070 HTTPS proxy server responded with status code 503, connection to <host>.cse.cuhk.edu.hk:<port> failed", 1),
    ("DNS lookup for <host>.cse.cuhk.edu.hk failed, no such host is known", 1),
]


def _build_templates() -> list[Template]:
    templates = [
        Template(f"PX{index + 1}", pattern, weight=weight)
        for index, (pattern, weight) in enumerate(_HANDWRITTEN)
    ]
    if len(templates) != 8:
        raise AssertionError(
            f"Proxifier bank has {len(templates)} templates, expected 8"
        )
    return templates


PROXIFIER_BANK = TemplateBank(
    name="Proxifier", templates=tuple(_build_templates())
)

PROXIFIER_SPEC = DatasetSpec(
    name="Proxifier",
    description="Proxy client (standalone desktop software)",
    bank=PROXIFIER_BANK,
    reference_size=10_108,
    paper_events=8,
    paper_length_range=(10, 27),
)
