"""HDFS log dataset: the 29 block-operation event templates plus a
block-session simulator with ground-truth anomaly labels.

The paper's RQ3 case study reruns Xu et al.'s PCA anomaly detection over
HDFS logs from a 203-node Amazon EC2 cluster: 11,175,629 messages,
575,061 block operation requests, 29 event types, 16,838 labeled
anomalies (≈2.9% of blocks).  The 29 templates below are the published
HDFS block-event templates (they appear in the paper's Fig. 1 and in
Xu et al.); the session simulator reproduces the *structure* that the
detection pipeline depends on — normal allocate/replicate/serve/delete
block lifecycles and anomalous variants — with exact per-block labels.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from random import Random

from repro.common.errors import DatasetError
from repro.common.rng import spawn
from repro.common.types import LogRecord
from repro.datasets.base import DatasetSpec, Template, TemplateBank

#: The 29 HDFS block-operation event templates (Xu et al., SOSP 2009).
_HDFS_TEMPLATES = [
    Template("E1", "Receiving block <blk> src: /<ip>:<port> dest: /<ip>:<port>", weight=90),
    Template("E2", "BLOCK* NameSystem.allocateBlock: <path> <blk>", weight=30),
    Template("E3", "PacketResponder <rsp> for block <blk> terminating", weight=90),
    Template("E4", "Received block <blk> of size <size> from /<ip>", weight=60),
    Template("E5", "BLOCK* NameSystem.addStoredBlock: blockMap updated: <ip>:<port> is added to <blk> size <size>", weight=90),
    Template("E6", "Verification succeeded for <blk>", weight=12),
    Template("E7", "Adding an already existing block <blk>", weight=0.5),
    Template("E8", "Served block <blk> to /<ip>", weight=25),
    Template("E9", "Got exception while serving <blk> to /<ip>:", weight=0.8),
    Template("E10", "Receiving empty packet for block <blk>", weight=0.6),
    Template("E11", "Exception in receiveBlock for block <blk> java.io.IOException: Connection reset by peer", weight=0.7),
    Template("E12", "Changing block file offset of block <blk> from <num> to <num> meta file offset to <num>", weight=1.5),
    Template("E13", "<ip>:<port>:Transmitted block <blk> to /<ip>:<port>", weight=3),
    Template("E14", "<ip>:<port>:Failed to transfer <blk> to <ip>:<port> got java.io.IOException: Connection reset by peer", weight=0.7),
    Template("E15", "<ip>:<port> Starting thread to transfer block <blk> to <ip>:<port>", weight=3),
    Template("E16", "Reopen Block <blk>", weight=0.8),
    Template("E17", "Unexpected error trying to delete block <blk>. BlockInfo not found in volumeMap.", weight=0.5),
    Template("E18", "Deleting block <blk> file <path>", weight=10),
    Template("E19", "BLOCK* NameSystem.delete: <blk> is added to invalidSet of <ip>:<port>", weight=10),
    Template("E20", "BLOCK* Removing block <blk> from neededReplications as it does not belong to any file.", weight=0.5),
    Template("E21", "BLOCK* ask <ip>:<port> to replicate <blk> to datanode(s) <ip>:<port>", weight=1.2),
    Template("E22", "BLOCK* NameSystem.addStoredBlock: Redundant addStoredBlock request received for <blk> on <ip>:<port> size <size>", weight=0.8),
    Template("E23", "BLOCK* NameSystem.addStoredBlock: addStoredBlock request received for <blk> on <ip>:<port> size <size> But it does not belong to any file.", weight=0.5),
    Template("E24", "PendingReplicationMonitor timed out block <blk>", weight=0.6),
    Template("E25", "PacketResponder <blk> <rsp> Exception java.io.IOException: Broken pipe", weight=0.7),
    Template("E26", "PacketResponder <rsp> for block <blk> Interrupted.", weight=0.8),
    Template("E27", "writeBlock <blk> received exception java.io.IOException: Could not read from stream", weight=0.7),
    Template("E28", "<ip>:<port>:Got exception while serving <blk> to /<ip>: java.io.IOException: Connection reset by peer", weight=0.7),
    Template("E29", "Received block <blk> src: /<ip>:<port> dest: /<ip>:<port> of size <size>", weight=60),
]

HDFS_BANK = TemplateBank(name="HDFS", templates=tuple(_HDFS_TEMPLATES))

HDFS_SPEC = DatasetSpec(
    name="HDFS",
    description="Hadoop File System (203-node Amazon EC2 cluster)",
    bank=HDFS_BANK,
    reference_size=11_175_629,
    paper_events=29,
    paper_length_range=(8, 29),
)

#: Paper-scale session statistics for reference.
PAPER_TOTAL_BLOCKS = 575_061
PAPER_TOTAL_ANOMALIES = 16_838
#: Fraction of blocks that are anomalous at paper scale.
ANOMALY_RATE = PAPER_TOTAL_ANOMALIES / PAPER_TOTAL_BLOCKS


@dataclass
class HdfsSessionDataset:
    """HDFS records grouped into block sessions with anomaly labels."""

    records: list[LogRecord] = field(default_factory=list)
    #: block id → True if the session is an injected anomaly.
    labels: dict[str, bool] = field(default_factory=dict)
    #: block id → generating scenario name ("normal", "write_failure", …).
    scenarios: dict[str, str] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.records)

    @property
    def block_ids(self) -> list[str]:
        return list(self.labels)

    @property
    def anomaly_blocks(self) -> set[str]:
        return {blk for blk, anomalous in self.labels.items() if anomalous}

    def contents(self) -> list[str]:
        return [record.content for record in self.records]

    def truth_assignments(self) -> list[str]:
        return [record.truth_event or "" for record in self.records]


#: The 203 datanodes of the paper's EC2 cluster: sessions draw their
#: IPs from this fixed pool (real logs repeat cluster-node addresses,
#: which is exactly what frequency-based parsers trip over).
CLUSTER_NODES = tuple(
    f"10.251.{index // 64}.{index % 64 + 1}" for index in range(203)
)

#: Re-replication traffic (balancer and NameNode-initiated transfers)
#: concentrates on the handful of under-loaded nodes being filled up —
#: realistic skew that frequency-based parsers mistake for constants.
REBALANCE_TARGETS = tuple(CLUSTER_NODES[200:203])

#: Fixed DataNode transfer port (dfs.datanode.address default).
DATANODE_PORT = 50010

_IP_PATTERN = re.compile(r"\d{1,3}\.\d{1,3}\.\d{1,3}\.\d{1,3}")
_IP_PORT_PATTERN = re.compile(r"\d{1,3}\.\d{1,3}\.\d{1,3}\.\d{1,3}:\d+")


def _emit(
    trace: list[str],
    event_id: str,
    rng: Random,
    block_id: str,
    transfer_target: str | None = None,
) -> None:
    """Append one rendered instance of *event_id*, pinned to *block_id*.

    When *transfer_target* is given, the final ip:port of the message
    (the transfer destination) is pinned to that node on the standard
    DataNode port.
    """
    template = HDFS_BANK.by_id(event_id)
    content = template.render(rng)
    # Draw every IP from the fixed cluster pool.
    content = _IP_PATTERN.sub(
        lambda _match: rng.choice(CLUSTER_NODES), content
    )
    if transfer_target is not None:
        matches = list(_IP_PORT_PATTERN.finditer(content))
        if matches:
            last = matches[-1]
            content = (
                content[: last.start()]
                + f"{transfer_target}:{DATANODE_PORT}"
                + content[last.end() :]
            )
    # Pin every blk_* token to this session's block id so that session
    # grouping by block id matches how the real pipeline correlates logs.
    tokens = [
        block_id if token.startswith("blk_") else token
        for token in content.split()
    ]
    trace.append(" ".join(tokens))


def _normal_session(rng: Random, block_id: str) -> list[str]:
    """A healthy block lifecycle: allocate → 3 replicas → optional extras."""
    trace: list[str] = []
    _emit(trace, "E2", rng, block_id)
    replicas = 3
    for _ in range(replicas):
        _emit(trace, "E1", rng, block_id)
    for _ in range(replicas):
        if rng.random() < 0.5:
            _emit(trace, "E29", rng, block_id)
        else:
            _emit(trace, "E4", rng, block_id)
        _emit(trace, "E3", rng, block_id)
        _emit(trace, "E5", rng, block_id)
    if rng.random() < 0.30:
        for _ in range(rng.randint(1, 4)):
            _emit(trace, "E8", rng, block_id)
    if rng.random() < 0.15:
        _emit(trace, "E6", rng, block_id)
    if rng.random() < 0.10:
        _emit(trace, "E12", rng, block_id)
    if rng.random() < 0.20:
        # Deletion epilogue.
        _emit(trace, "E19", rng, block_id)
        _emit(trace, "E18", rng, block_id)
    if rng.random() < 0.025:
        # Routine re-replication (balancer) — still normal.  Transfers
        # target the currently under-loaded nodes.
        target = rng.choice(REBALANCE_TARGETS)
        _emit(trace, "E15", rng, block_id, transfer_target=target)
        _emit(trace, "E13", rng, block_id, transfer_target=target)
    return trace


def _anomaly_write_failure(rng: Random, block_id: str) -> list[str]:
    """Write pipeline breaks: exceptions, interrupted responders, retry."""
    trace: list[str] = []
    _emit(trace, "E2", rng, block_id)
    _emit(trace, "E1", rng, block_id)
    for _ in range(rng.randint(2, 4)):
        _emit(trace, "E11", rng, block_id)
    if rng.random() < 0.5:
        _emit(trace, rng.choice(["E27", "E25"]), rng, block_id)
    _emit(trace, "E26", rng, block_id)
    if rng.random() < 0.5:
        _emit(trace, "E10", rng, block_id)
    # Retry reaches fewer replicas than required.
    _emit(trace, "E1", rng, block_id)
    _emit(trace, "E4", rng, block_id)
    _emit(trace, "E3", rng, block_id)
    _emit(trace, "E5", rng, block_id)
    return trace


def _anomaly_replication(rng: Random, block_id: str) -> list[str]:
    """Replication stalls: transfer failures and monitor timeouts."""
    trace: list[str] = []
    _emit(trace, "E2", rng, block_id)
    _emit(trace, "E1", rng, block_id)
    _emit(trace, "E4", rng, block_id)
    _emit(trace, "E3", rng, block_id)
    _emit(trace, "E5", rng, block_id)
    for _ in range(rng.randint(1, 3)):
        target = rng.choice(REBALANCE_TARGETS)
        _emit(trace, "E15", rng, block_id, transfer_target=target)
        _emit(trace, "E14", rng, block_id, transfer_target=target)
    _emit(trace, "E24", rng, block_id)
    _emit(trace, "E21", rng, block_id)
    if rng.random() < 0.4:
        _emit(trace, "E16", rng, block_id)
    return trace


def _anomaly_metadata(rng: Random, block_id: str) -> list[str]:
    """Namespace inconsistencies: redundant/orphan addStoredBlock, bad delete."""
    trace: list[str] = []
    _emit(trace, "E2", rng, block_id)
    for _ in range(3):
        _emit(trace, "E1", rng, block_id)
        _emit(trace, "E4", rng, block_id)
        _emit(trace, "E3", rng, block_id)
        _emit(trace, "E5", rng, block_id)
    for _ in range(rng.randint(2, 4)):
        _emit(trace, "E22", rng, block_id)
    choice = rng.random()
    if choice < 0.35:
        _emit(trace, "E7", rng, block_id)
    elif choice < 0.70:
        _emit(trace, "E23", rng, block_id)
        _emit(trace, "E20", rng, block_id)
    else:
        _emit(trace, "E19", rng, block_id)
        _emit(trace, "E17", rng, block_id)
    return trace


def _anomaly_serving(rng: Random, block_id: str) -> list[str]:
    """Read-path failures: repeated exceptions while serving the block."""
    trace: list[str] = []
    _emit(trace, "E2", rng, block_id)
    for _ in range(3):
        _emit(trace, "E1", rng, block_id)
        _emit(trace, "E29", rng, block_id)
        _emit(trace, "E3", rng, block_id)
        _emit(trace, "E5", rng, block_id)
    for _ in range(rng.randint(2, 5)):
        _emit(trace, rng.choice(["E9", "E28"]), rng, block_id)
    _emit(trace, "E8", rng, block_id)
    return trace


def _anomaly_subtle(rng: Random, block_id: str) -> list[str]:
    """Under-replication with no error events: only the counts are off.

    These anomalies look like truncated normal sessions, which is why
    even the ground-truth parse cannot reach 100% detection (the paper's
    Table III detects 66% of true anomalies with perfect parsing).
    """
    trace: list[str] = []
    _emit(trace, "E2", rng, block_id)
    replicas = rng.choice([1, 2])
    for _ in range(replicas):
        _emit(trace, "E1", rng, block_id)
        _emit(trace, "E4", rng, block_id)
        _emit(trace, "E3", rng, block_id)
        _emit(trace, "E5", rng, block_id)
    if rng.random() < 0.3:
        _emit(trace, "E8", rng, block_id)
    return trace


_ANOMALY_SCENARIOS = [
    (_anomaly_write_failure, 0.22),
    (_anomaly_replication, 0.20),
    (_anomaly_metadata, 0.12),
    (_anomaly_serving, 0.12),
    (_anomaly_subtle, 0.34),
]


def generate_hdfs_sessions(
    n_blocks: int,
    seed: int | None = None,
    anomaly_rate: float = ANOMALY_RATE,
) -> HdfsSessionDataset:
    """Simulate *n_blocks* HDFS block sessions with anomaly labels.

    Each block gets a unique ``blk_<n>`` id; roughly *anomaly_rate* of
    the blocks follow one of five anomaly scenarios (weighted as in
    ``_ANOMALY_SCENARIOS``), the rest follow the normal lifecycle.  The
    emitted records interleave sessions in time like a real cluster log.
    """
    if n_blocks <= 0:
        raise DatasetError(f"n_blocks must be positive, got {n_blocks}")
    if not 0.0 <= anomaly_rate < 1.0:
        raise DatasetError(f"anomaly_rate out of range: {anomaly_rate}")
    rng = spawn(seed, f"hdfs-sessions:{n_blocks}")

    scenario_functions = [fn for fn, _w in _ANOMALY_SCENARIOS]
    scenario_weights = [w for _fn, w in _ANOMALY_SCENARIOS]

    labels: dict[str, bool] = {}
    scenarios: dict[str, str] = {}
    tagged: list[tuple[float, int, LogRecord]] = []
    truth = HDFS_BANK.truth_templates()
    for index in range(n_blocks):
        block_id = f"blk_{7000000000000000000 + index}"
        anomalous = rng.random() < anomaly_rate
        labels[block_id] = anomalous
        if anomalous:
            scenario = rng.choices(
                scenario_functions, weights=scenario_weights, k=1
            )[0]
            trace = scenario(rng, block_id)
            scenarios[block_id] = scenario.__name__.removeprefix("_anomaly_")
        else:
            trace = _normal_session(rng, block_id)
            scenarios[block_id] = "normal"
        # Interleave sessions: each session starts at a random global
        # offset and its events follow at small increments.
        start = rng.random() * n_blocks
        for step, content in enumerate(trace):
            event_id = _event_id_of(content, truth)
            tagged.append(
                (
                    start + step * rng.uniform(0.01, 0.5),
                    index,
                    LogRecord(
                        content=content,
                        timestamp="",
                        session_id=block_id,
                        truth_event=event_id,
                    ),
                )
            )

    tagged.sort(key=lambda item: (item[0], item[1]))
    return HdfsSessionDataset(
        records=[record for _t, _i, record in tagged],
        labels=labels,
        scenarios=scenarios,
    )


def _event_id_of(content: str, truth: dict[str, str]) -> str:
    """Recover the event id of a rendered-and-pinned trace line."""
    tokens = content.split()
    for event_id, template in truth.items():
        t_tokens = template.split()
        if len(t_tokens) != len(tokens):
            continue
        if all(t == "*" or t == m for t, m in zip(t_tokens, tokens)):
            return event_id
    raise DatasetError(f"trace line matches no HDFS template: {content!r}")
