"""Synthetic reproductions of the paper's five log datasets.

The paper evaluates on BGL, HPC, HDFS, Zookeeper, and Proxifier logs.
Those production datasets cannot be redistributed here, so each module in
this package defines a *template bank* modeled on the corresponding
system's published log formats and a generator that emits raw log
messages together with exact ground-truth event labels.  Table I's
dataset statistics (#events, token-length ranges) are matched by
construction; see DESIGN.md §2 for the substitution rationale.
"""

from repro.datasets.base import (
    DatasetSpec,
    SyntheticDataset,
    Template,
    TemplateBank,
)
from repro.datasets.generator import generate_dataset, iter_dataset
from repro.datasets.registry import (
    DATASET_NAMES,
    get_dataset_spec,
    iter_dataset_specs,
)
from repro.datasets.hdfs import generate_hdfs_sessions, HdfsSessionDataset
from repro.datasets.loader import (
    iter_raw_log,
    read_raw_log,
    write_raw_log,
    write_parse_result,
    sample_records,
)

__all__ = [
    "DatasetSpec",
    "SyntheticDataset",
    "Template",
    "TemplateBank",
    "generate_dataset",
    "iter_dataset",
    "DATASET_NAMES",
    "get_dataset_spec",
    "iter_dataset_specs",
    "generate_hdfs_sessions",
    "HdfsSessionDataset",
    "iter_raw_log",
    "read_raw_log",
    "write_raw_log",
    "write_parse_result",
    "sample_records",
]
