"""Dataset statistics: the measurements behind Table I and sanity checks.

Real evaluation studies report more than row counts; this module
computes the per-dataset statistics that make a synthetic log credible
(and that the Table I benchmark prints): token-length distribution,
event frequency skew, and the vocabulary growth that distinguishes
event-rich logs (BGL/HPC) from event-poor ones (HDFS/Proxifier).
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from collections.abc import Sequence

from repro.common.errors import DatasetError
from repro.common.types import LogRecord


@dataclass(frozen=True)
class DatasetStats:
    """Summary statistics of one generated (or loaded) log."""

    n_lines: int
    n_events: int
    length_min: int
    length_max: int
    length_mean: float
    #: Shannon entropy (bits) of the event distribution.
    event_entropy: float
    #: Fraction of lines covered by the 5 most frequent events.
    top5_coverage: float
    #: Distinct (position, word) vocabulary size — what SLCT pass 1 sees.
    vocabulary_size: int


def compute_stats(records: Sequence[LogRecord]) -> DatasetStats:
    """Compute :class:`DatasetStats` for labeled records.

    Requires ground-truth labels (synthetic data or an oracle parse);
    raises :class:`DatasetError` otherwise.
    """
    if not records:
        raise DatasetError("cannot compute statistics of an empty log")
    lengths = []
    events: Counter[str] = Counter()
    vocabulary: set[tuple[int, str]] = set()
    for record in records:
        if record.truth_event is None:
            raise DatasetError(
                "records must carry ground-truth event labels"
            )
        tokens = record.tokens
        lengths.append(len(tokens))
        events[record.truth_event] += 1
        vocabulary.update(enumerate(tokens))

    total = len(records)
    entropy = -sum(
        (count / total) * math.log2(count / total)
        for count in events.values()
    )
    top5 = sum(count for _event, count in events.most_common(5)) / total
    return DatasetStats(
        n_lines=total,
        n_events=len(events),
        length_min=min(lengths),
        length_max=max(lengths),
        length_mean=sum(lengths) / total,
        event_entropy=entropy,
        top5_coverage=top5,
        vocabulary_size=len(vocabulary),
    )


def describe(stats: DatasetStats) -> str:
    """One-paragraph plain-text description of the statistics."""
    return (
        f"{stats.n_lines:,} lines over {stats.n_events} event types; "
        f"token lengths {stats.length_min}–{stats.length_max} "
        f"(mean {stats.length_mean:.1f}); "
        f"event entropy {stats.event_entropy:.2f} bits; "
        f"top-5 events cover {stats.top5_coverage:.0%} of lines; "
        f"(position, word) vocabulary {stats.vocabulary_size:,}"
    )
