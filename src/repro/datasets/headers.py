"""Per-system log-line header formats.

§IV-A notes that "only the parts of free-text log message contents are
used in evaluating the log parsing methods" — real log lines carry
system-specific header fields in front of the content.  This module
renders and strips those headers so that generated files look like the
real datasets and loaders can exercise the header-stripping step of a
real pipeline:

* BGL: ``<label> <epoch> <date> <node> <full-time> <node> RAS <component> <level> <content>``
* HPC: ``<id> <node> <component> <state> <epoch> <content>``
* HDFS: ``<date> <time> <pid> <level> <class>: <content>``
* Zookeeper: ``<date> - <level> [<thread>] - <content>``
* Proxifier: ``[<time>] <program> - <content>``
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from random import Random
from collections.abc import Callable

from repro.common.errors import DatasetError
from repro.common.rng import spawn
from repro.common.types import LogRecord

_EPOCH = datetime.datetime(2005, 6, 3, 15, 42, 50)


def _bgl_header(rng: Random, moment: datetime.datetime) -> str:
    node = (
        f"R{rng.randint(0, 77):02d}-M{rng.randint(0, 1)}"
        f"-N{rng.randint(0, 15)}-C:J{rng.randint(0, 17):02d}"
        f"-U{rng.randint(1, 11):02d}"
    )
    level = rng.choice(["INFO", "WARNING", "ERROR", "FATAL", "SEVERE"])
    component = rng.choice(["KERNEL", "APP", "DISCOVERY", "HARDWARE", "MMCS"])
    epoch = int(moment.timestamp())
    date = moment.strftime("%Y.%m.%d")
    full = moment.strftime("%Y-%m-%d-%H.%M.%S.%f")
    return f"- {epoch} {date} {node} {full} {node} RAS {component} {level}"

def _hpc_header(rng: Random, moment: datetime.datetime) -> str:
    ident = rng.randint(100000, 999999)
    node = f"node-{rng.randint(0, 48)}"
    component = rng.choice(["unix.hw", "action", "boot_cmd", "state"])
    state = rng.choice(["state_change.unavailable", "error", "normal"])
    return f"{ident} {node} {component} {state} {int(moment.timestamp())}"

def _hdfs_header(rng: Random, moment: datetime.datetime) -> str:
    date = moment.strftime("%y%m%d")
    time = moment.strftime("%H%M%S")
    pid = rng.randint(10, 9999)
    level = rng.choice(["INFO", "WARN"])
    cls = rng.choice(
        [
            "dfs.DataNode$PacketResponder",
            "dfs.DataNode$DataXceiver",
            "dfs.FSNamesystem",
            "dfs.DataBlockScanner",
        ]
    )
    return f"{date} {time} {pid} {level} {cls}:"

def _zookeeper_header(rng: Random, moment: datetime.datetime) -> str:
    stamp = moment.strftime("%Y-%m-%d %H:%M:%S,%f")[:-3]
    level = rng.choice(["INFO", "WARN", "ERROR"])
    thread = rng.choice(
        [
            "main",
            "QuorumPeer[myid=1]/0.0.0.0:2181",
            "NIOServerCxn.Factory:0.0.0.0/0.0.0.0:2181",
            "SyncThread:0",
            "WorkerReceiver[myid=2]",
        ]
    )
    return f"{stamp} - {level} [{thread}] -"

def _proxifier_header(rng: Random, moment: datetime.datetime) -> str:
    stamp = moment.strftime("%m.%d %H:%M:%S")
    program = rng.choice(
        ["chrome.exe", "firefox.exe", "Dropbox.exe", "thunderbird.exe"]
    )
    return f"[{stamp}] {program} -"


_HEADERS: dict[str, Callable[[Random, datetime.datetime], str]] = {
    "BGL": _bgl_header,
    "HPC": _hpc_header,
    "HDFS": _hdfs_header,
    "Zookeeper": _zookeeper_header,
    "Proxifier": _proxifier_header,
}

#: Number of whitespace-delimited header tokens per system (used by
#: :func:`strip_header`).
HEADER_TOKENS: dict[str, int] = {
    "BGL": 9,
    "HPC": 5,
    "HDFS": 5,
    "Zookeeper": 6,
    "Proxifier": 4,
}


@dataclass(frozen=True)
class HeaderFormat:
    """Renderer/stripper pair for one system's log-line header."""

    system: str

    def __post_init__(self) -> None:
        if self.system not in _HEADERS:
            raise DatasetError(
                f"no header format for system {self.system!r}; "
                f"choose from {sorted(_HEADERS)}"
            )

    @property
    def n_tokens(self) -> int:
        return HEADER_TOKENS[self.system]

    def render(self, rng: Random, moment: datetime.datetime) -> str:
        return _HEADERS[self.system](rng, moment)

    def add_headers(
        self, records: list[LogRecord], seed: int | None = None
    ) -> list[str]:
        """Render full log lines (header + content) for *records*."""
        rng = spawn(seed, f"headers:{self.system}:{len(records)}")
        lines = []
        moment = _EPOCH
        for record in records:
            moment += datetime.timedelta(
                seconds=rng.choice([0, 0, 1, 1, 2])
            )
            lines.append(
                f"{self.render(rng, moment)} {record.content}"
            )
        return lines

    def strip_header(self, line: str) -> str:
        """Recover the free-text content from a full log line."""
        tokens = line.split(" ", self.n_tokens)
        if len(tokens) <= self.n_tokens:
            raise DatasetError(
                f"line has no content after the {self.system} header: "
                f"{line!r}"
            )
        return tokens[self.n_tokens]
