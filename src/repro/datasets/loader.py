"""File I/O for raw logs and parse results, plus record sampling.

The on-disk raw format matches the paper's Fig. 1: each line is
``<timestamp>\\t<session_id>\\t<content>`` (tab-separated header fields in
front of the free-text content; empty fields allowed).  Parse results
are written as the paper's two output files — ``*.events`` (one
``event_id<TAB>template`` per line) and ``*.structured`` (one parsed
line per input record).
"""

from __future__ import annotations

import os
from random import Random
from collections.abc import Iterator

from repro.common.errors import DatasetError
from repro.common.rng import spawn
from repro.common.types import LogRecord, ParseResult


def write_raw_log(records: list[LogRecord], path: str) -> None:
    """Write *records* to *path* in the tab-separated raw format.

    Ground-truth event ids are intentionally not persisted — the raw
    file is what a parser would see in the wild.
    """
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            if "\t" in record.content:
                raise DatasetError(
                    "raw log content must not contain tab characters"
                )
            handle.write(
                f"{record.timestamp}\t{record.session_id}\t{record.content}\n"
            )


def _parse_raw_line(line: str) -> LogRecord:
    """Decode one tab-separated raw log line into a LogRecord."""
    parts = line.split("\t")
    if len(parts) >= 3:
        timestamp, session_id, content = (
            parts[0],
            parts[1],
            "\t".join(parts[2:]),
        )
    elif len(parts) == 2:
        timestamp, session_id, content = parts[0], "", parts[1]
    else:
        timestamp, session_id, content = "", "", parts[0]
    return LogRecord(
        content=content, timestamp=timestamp, session_id=session_id
    )


def read_raw_log(path: str) -> list[LogRecord]:
    """Read a raw log file written by :func:`write_raw_log`.

    Lines without tabs are treated as bare content (header-less logs),
    so plain message-per-line files also load.
    """
    return list(iter_raw_log(path))


def iter_raw_log(path: str) -> Iterator[LogRecord]:
    """Lazily iterate a raw log file, one record at a time.

    The streaming counterpart of :func:`read_raw_log`: only one line is
    in memory at a time, so arbitrarily large files can be fed straight
    into :class:`~repro.streaming.engine.StreamingParser`.
    """
    if not os.path.exists(path):
        raise DatasetError(f"raw log file not found: {path}")
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.rstrip("\n")
            if not line:
                continue
            yield _parse_raw_line(line)


def write_parse_result(result: ParseResult, stem: str) -> tuple[str, str]:
    """Write the two parser output files next to *stem*.

    Returns the ``(events_path, structured_path)`` pair, matching the
    standard output contract of §II-C.
    """
    events_path = f"{stem}.events"
    structured_path = f"{stem}.structured"
    with open(events_path, "w", encoding="utf-8") as handle:
        for line in result.events_file_lines():
            handle.write(line + "\n")
    with open(structured_path, "w", encoding="utf-8") as handle:
        for line in result.structured_file_lines():
            handle.write(line + "\n")
    return events_path, structured_path


def write_real_format(
    records: list[LogRecord],
    path: str,
    system: str,
    seed: int | None = None,
) -> None:
    """Write *records* as full log lines with the system's real header.

    Produces files that look like the original datasets (BGL RAS
    prefixes, HDFS class prefixes, …) rather than the tab-separated
    internal format; see :mod:`repro.datasets.headers`.
    """
    from repro.datasets.headers import HeaderFormat

    header = HeaderFormat(system=system)
    with open(path, "w", encoding="utf-8") as handle:
        for line in header.add_headers(records, seed=seed):
            handle.write(line + "\n")


def read_real_format(path: str, system: str) -> list[LogRecord]:
    """Read a real-format log file, stripping the system's header.

    Only the free-text content survives (as in §IV-A: "only the parts
    of free-text log message contents are used"); header fields are
    discarded except that the raw line's leading fields could be
    re-parsed by callers needing them.
    """
    from repro.datasets.headers import HeaderFormat

    if not os.path.exists(path):
        raise DatasetError(f"raw log file not found: {path}")
    header = HeaderFormat(system=system)
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.rstrip("\n")
            if not line:
                continue
            records.append(
                LogRecord(content=header.strip_header(line))
            )
    return records


def sample_records(
    records: list[LogRecord],
    k: int,
    seed: int | None = None,
) -> list[LogRecord]:
    """Randomly sample *k* records without replacement (order preserved).

    The paper samples 2k messages per dataset for the accuracy study
    because LKE/LogSig cannot parse full datasets in reasonable time.
    If *k* exceeds the population, all records are returned.
    """
    if k <= 0:
        raise DatasetError(f"sample size must be positive, got {k}")
    if k >= len(records):
        return list(records)
    rng: Random = spawn(seed, f"sample:{k}:{len(records)}")
    indices = sorted(rng.sample(range(len(records)), k))
    return [records[i] for i in indices]
