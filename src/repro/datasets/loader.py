"""File I/O for raw logs and parse results, plus record sampling.

The on-disk raw format matches the paper's Fig. 1: each line is
``<timestamp>\\t<session_id>\\t<content>`` (tab-separated header fields in
front of the free-text content; empty fields allowed).  Parse results
are written as the paper's two output files — ``*.events`` (one
``event_id<TAB>template`` per line) and ``*.structured`` (one parsed
line per input record).
"""

from __future__ import annotations

import os
from random import Random
from collections.abc import Iterator

from repro.common.errors import DatasetError
from repro.common.rng import spawn
from repro.common.types import LogRecord, ParseResult
from repro.resilience.durability import AtomicWriter
from repro.resilience.quarantine import (
    REASON_OVERSIZED,
    REASON_UNDECODABLE,
    ErrorPolicy,
    QuarantineSink,
)


def write_raw_log(
    records: list[LogRecord], path: str, *, io=None
) -> None:
    """Write *records* to *path* in the tab-separated raw format.

    Ground-truth event ids are intentionally not persisted — the raw
    file is what a parser would see in the wild.  The write is atomic:
    a validation failure or crash mid-write leaves any previous file
    at *path* untouched.
    """
    with AtomicWriter(path, io=io) as writer:
        for record in records:
            if "\t" in record.content:
                raise DatasetError(
                    "raw log content must not contain tab characters"
                )
            writer.write(
                f"{record.timestamp}\t{record.session_id}\t{record.content}\n"
            )


def _parse_raw_line(line: str) -> LogRecord:
    """Decode one tab-separated raw log line into a LogRecord."""
    parts = line.split("\t")
    if len(parts) >= 3:
        timestamp, session_id, content = (
            parts[0],
            parts[1],
            "\t".join(parts[2:]),
        )
    elif len(parts) == 2:
        timestamp, session_id, content = parts[0], "", parts[1]
    else:
        timestamp, session_id, content = "", "", parts[0]
    return LogRecord(
        content=content, timestamp=timestamp, session_id=session_id
    )


def read_raw_log(
    path: str,
    *,
    policy: ErrorPolicy | str = "raise",
    quarantine: QuarantineSink | None = None,
    max_line_bytes: int | None = None,
    encoding_errors: str = "strict",
) -> list[LogRecord]:
    """Read a raw log file written by :func:`write_raw_log`.

    Lines without tabs are treated as bare content (header-less logs),
    so plain message-per-line files also load.  Keyword arguments are
    forwarded to :func:`iter_raw_log` — see there for the error
    policy semantics.
    """
    return list(
        iter_raw_log(
            path,
            policy=policy,
            quarantine=quarantine,
            max_line_bytes=max_line_bytes,
            encoding_errors=encoding_errors,
        )
    )


def iter_raw_log(
    path: str,
    *,
    policy: ErrorPolicy | str = "raise",
    quarantine: QuarantineSink | None = None,
    max_line_bytes: int | None = None,
    encoding_errors: str = "strict",
) -> Iterator[LogRecord]:
    """Lazily iterate a raw log file, one record at a time.

    The streaming counterpart of :func:`read_raw_log`: only one line is
    in memory at a time, so arbitrarily large files can be fed straight
    into :class:`~repro.streaming.engine.StreamingParser`.

    The file is read as bytes and decoded per line, so one dirty line
    cannot kill the whole run unless you ask it to:

    * a line that is not valid UTF-8 (under *encoding_errors*
      ``"strict"``, the default) or longer than *max_line_bytes* is
      handled by *policy* — ``"raise"`` aborts with a
      :class:`~repro.common.errors.DatasetError` naming the line
      number and byte offset, ``"skip"`` drops it, ``"quarantine"``
      diverts it (with provenance and an ``errors="replace"`` preview)
      into *quarantine*;
    * *encoding_errors* ``"replace"`` is the explicit lossy path for
      known non-UTF-8 logs: every line decodes (bad bytes become
      U+FFFD) and only the size cap can reject.
    """
    if not os.path.exists(path):
        raise DatasetError(f"raw log file not found: {path}")
    policy = ErrorPolicy.coerce(policy, sink=quarantine)
    offset = 0
    with open(path, "rb") as handle:
        for line_no, raw in enumerate(handle):
            start = offset
            offset += len(raw)
            stripped = raw.rstrip(b"\n")
            if not stripped:
                continue
            if (
                max_line_bytes is not None
                and len(stripped) > max_line_bytes
            ):
                policy.handle(
                    source=path,
                    line_no=line_no,
                    byte_offset=start,
                    reason=REASON_OVERSIZED,
                    detail=(
                        f"line is {len(stripped)} bytes "
                        f"(cap {max_line_bytes})"
                    ),
                    payload=stripped,
                )
                continue
            try:
                line = stripped.decode("utf-8", errors=encoding_errors)
            except UnicodeDecodeError as error:
                policy.handle(
                    source=path,
                    line_no=line_no,
                    byte_offset=start,
                    reason=REASON_UNDECODABLE,
                    detail=str(error),
                    payload=stripped,
                    error=error,
                )
                continue
            yield _parse_raw_line(line)


def write_parse_result(
    result: ParseResult, stem: str, *, io=None
) -> tuple[str, str]:
    """Write the two parser output files next to *stem*, atomically.

    Returns the ``(events_path, structured_path)`` pair, matching the
    standard output contract of §II-C.  Each file commits via
    temp-write-rename, so a crash mid-write can never leave a
    truncated ``.events`` / ``.structured`` pair to poison downstream
    mining (Finding 6).
    """
    events_path = f"{stem}.events"
    structured_path = f"{stem}.structured"
    with AtomicWriter(events_path, io=io) as writer:
        for line in result.events_file_lines():
            writer.write(line + "\n")
    with AtomicWriter(structured_path, io=io) as writer:
        for line in result.structured_file_lines():
            writer.write(line + "\n")
    return events_path, structured_path


def write_real_format(
    records: list[LogRecord],
    path: str,
    system: str,
    seed: int | None = None,
) -> None:
    """Write *records* as full log lines with the system's real header.

    Produces files that look like the original datasets (BGL RAS
    prefixes, HDFS class prefixes, …) rather than the tab-separated
    internal format; see :mod:`repro.datasets.headers`.
    """
    from repro.datasets.headers import HeaderFormat

    header = HeaderFormat(system=system)
    with AtomicWriter(path) as writer:
        for line in header.add_headers(records, seed=seed):
            writer.write(line + "\n")


def read_real_format(path: str, system: str) -> list[LogRecord]:
    """Read a real-format log file, stripping the system's header.

    Only the free-text content survives (as in §IV-A: "only the parts
    of free-text log message contents are used"); header fields are
    discarded except that the raw line's leading fields could be
    re-parsed by callers needing them.
    """
    from repro.datasets.headers import HeaderFormat

    if not os.path.exists(path):
        raise DatasetError(f"raw log file not found: {path}")
    header = HeaderFormat(system=system)
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.rstrip("\n")
            if not line:
                continue
            records.append(
                LogRecord(content=header.strip_header(line))
            )
    return records


def sample_records(
    records: list[LogRecord],
    k: int,
    seed: int | None = None,
) -> list[LogRecord]:
    """Randomly sample *k* records without replacement (order preserved).

    The paper samples 2k messages per dataset for the accuracy study
    because LKE/LogSig cannot parse full datasets in reasonable time.
    If *k* exceeds the population, all records are returned.
    """
    if k <= 0:
        raise DatasetError(f"sample size must be positive, got {k}")
    if k >= len(records):
        return list(records)
    rng: Random = spawn(seed, f"sample:{k}:{len(records)}")
    indices = sorted(rng.sample(range(len(records)), k))
    return [records[i] for i in indices]
