"""Zookeeper dataset: an 80-event bank modeled on ZooKeeper server logs.

The paper's Zookeeper data came from a 32-node lab cluster (74,380
messages, 80 event types, 8–27 tokens).  The bank covers the message
families a ZooKeeper ensemble actually emits: client connection
lifecycle (NIOServerCnxn), session tracking, leader election
(FastLeaderElection), quorum peer state, proposal/commit traffic,
snapshot and log persistence, and follower/learner handling.
"""

from __future__ import annotations

from repro.datasets.base import DatasetSpec, Template, TemplateBank

_HANDWRITTEN = [
    # Client connections.
    ("Accepted socket connection from /<ip>:<port>", 30),
    ("Closed socket connection for client /<ip>:<port> which had sessionid <session>", 25),
    ("Closed socket connection for client /<ip>:<port> (no session established for client)", 8),
    ("Client attempting to establish new session at /<ip>:<port>", 20),
    ("Client attempting to renew session <session> at /<ip>:<port>", 10),
    ("Established session <session> with negotiated timeout <num> for client /<ip>:<port>", 20),
    ("Invalid session <session> for client /<ip>:<port> probably expired", 4),
    ("caught end of stream exception EndOfStreamException: Unable to read additional data from client sessionid <session> likely client has closed socket", 8),
    ("Exception causing close of session <session> due to java.io.IOException: Connection reset by peer", 4),
    ("Connection broken for id <num> my id = <num> error =", 4),
    ("Connection request from old client /<ip>:<port> will be dropped if server is in r-o mode", 2),
    ("Refusing session request for client /<ip>:<port> as it has seen zxid <hex> our last zxid is <hex> client must try another server", 2),
    # Session tracker.
    ("Expiring session <session> timeout of <num>ms exceeded", 10),
    ("Processed session termination for sessionid: <session>", 10),
    ("Creating new session <session> with timeout <num>", 6),
    ("Session <session> closed by client", 4),
    # Quorum / election.
    ("New election. My id = <num> proposed zxid=<hex>", 4),
    ("Notification: <num> (n.leader) <hex> (n.zxid) <num> (n.round) LOOKING (n.state) <num> (n.sid) <hex> (n.peerEPoch) LOOKING (my state)", 6),
    ("Notification: <num> (n.leader) <hex> (n.zxid) <num> (n.round) FOLLOWING (n.state) <num> (n.sid) <hex> (n.peerEPoch) LOOKING (my state)", 4),
    ("Notification: <num> (n.leader) <hex> (n.zxid) <num> (n.round) LEADING (n.state) <num> (n.sid) <hex> (n.peerEPoch) LOOKING (my state)", 4),
    ("Notification time out: <num>", 4),
    ("FOLLOWING - LEADER ELECTION TOOK - <num>", 2),
    ("LEADING - LEADER ELECTION TOOK - <num>", 1),
    ("My election bind port: /<ip>:<port>", 2),
    ("LOOKING", 3),
    ("FOLLOWING", 3),
    ("LEADING", 1),
    ("shutdown of request processor complete", 3),
    ("Shutting down", 3),
    ("Shutdown called java.lang.Exception: shutdown Follower", 2),
    ("Shutdown called java.lang.Exception: shutdown Leader! reason: Not sufficient followers synced, only synced with sids: [ <num> ]", 1),
    # Leader/follower traffic.
    ("Follower sid: <num> : info : org.apache.zookeeper.server.quorum.QuorumPeer$QuorumServer@<hex>", 3),
    ("Synchronizing with Follower sid: <num> maxCommittedLog=<hex> minCommittedLog=<hex> peerLastZxid=<hex>", 3),
    ("Sending DIFF zxid=<hex> for peer sid: <num>", 3),
    ("Sending SNAP zxid=<hex> to sid: <num>", 2),
    ("Sending TRUNC zxid=<hex> to sid: <num>", 1),
    ("Received NEWLEADER-ACK message from <num>", 3),
    ("Have quorum of supporters; starting up and setting last processed zxid: <hex>", 2),
    ("Getting a diff from the leader <hex>", 3),
    ("Getting a snapshot from leader", 2),
    ("Snapshotting: <hex> to <path>", 6),
    ("Reading snapshot <path>", 4),
    ("Setting leader epoch <num>", 2),
    ("Updating epoch to <num> from <path>", 2),
    ("Follower <num> is ahead of the leader zxid <hex>", 1),
    ("ACK of proposal <hex> from sid <num> received after timeout", 1),
    # Request processing.
    ("Got user-level KeeperException when processing sessionid:<session> type:create cxid:<hex> zxid:<hex> txntype:-1 reqpath:n/a Error Path:<path> Error:KeeperErrorCode = NodeExists for <path>", 8),
    ("Got user-level KeeperException when processing sessionid:<session> type:delete cxid:<hex> zxid:<hex> txntype:-1 reqpath:n/a Error Path:<path> Error:KeeperErrorCode = NoNode for <path>", 6),
    ("Got user-level KeeperException when processing sessionid:<session> type:setData cxid:<hex> zxid:<hex> txntype:-1 reqpath:n/a Error Path:<path> Error:KeeperErrorCode = BadVersion for <path>", 4),
    ("Submitting global closeSession request for session <session>", 4),
    ("Dropping request: <num>", 2),
    ("Pending syncs: <num>", 2),
    # Persistence.
    ("Creating new log file: log.<hex>", 8),
    ("Too busy to snap, skipping", 2),
    ("fsync-ing the write ahead log in SyncThread:<snum> took <num>ms which will adversely effect operation latency. See the ZooKeeper troubleshooting guide", 4),
    ("Purging snapshots older than <num> hours", 1),
    ("Removing file: <path>", 2),
    # Server lifecycle / config.
    ("Server environment: zookeeper.version = <num>.<num>.<num>-<num> built on <num>/<num>/<num> <time> GMT", 2),
    ("Server environment: host.name = <host>", 2),
    ("Server environment: java.version = 1.<snum>.0_<num>", 2),
    ("Server environment: os.version = <num>.<num>.<num>-<num>-generic", 2),
    ("Reading configuration from: <path>", 2),
    ("Defaulting to majority quorums", 1),
    ("tickTime set to <num>", 1),
    ("minSessionTimeout set to <num>", 1),
    ("maxSessionTimeout set to <num>", 1),
    ("Starting quorum peer", 1),
    ("binding to port /<ip>:<port>", 2),
    ("Established connection with leader /<ip>:<port>", 2),
    ("Resolved hostname: <host> to address: /<ip>", 2),
    ("Cannot open channel to <num> at election address /<ip>:<port> java.net.ConnectException: Connection refused", 4),
    ("Interrupted while waiting for message on queue java.lang.InterruptedException", 1),
    ("Interrupting SendWorker", 2),
    ("Send worker leaving thread", 2),
    ("Received connection request /<ip>:<port>", 3),
    ("First is <num>", 1),
    ("<num> followers need to sync with leader", 1),
    ("Processing ruok command from /<ip>:<port>", 2),
    ("Processing stat command from /<ip>:<port>", 2),
    ("Processing srvr command from /<ip>:<port>", 1),
]


def _build_templates() -> list[Template]:
    templates: list[Template] = []
    for pattern, weight in _HANDWRITTEN:
        templates.append(
            Template(f"ZK{len(templates) + 1}", pattern, weight=weight)
        )
    if len(templates) != 80:
        raise AssertionError(
            f"Zookeeper bank has {len(templates)} templates, expected 80"
        )
    return templates


ZOOKEEPER_BANK = TemplateBank(
    name="Zookeeper", templates=tuple(_build_templates())
)

ZOOKEEPER_SPEC = DatasetSpec(
    name="Zookeeper",
    description="Distributed system coordinator (32-node lab cluster)",
    bank=ZOOKEEPER_BANK,
    reference_size=74_380,
    paper_events=80,
    paper_length_range=(8, 27),
)
