"""Name-based lookup for the five dataset specs (Table I)."""

from __future__ import annotations

from collections.abc import Iterator

from repro.common.errors import DatasetError
from repro.datasets.base import DatasetSpec
from repro.datasets.bgl import BGL_SPEC
from repro.datasets.hdfs import HDFS_SPEC
from repro.datasets.hpc import HPC_SPEC
from repro.datasets.proxifier import PROXIFIER_SPEC
from repro.datasets.zookeeper import ZOOKEEPER_SPEC

_SPECS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in (BGL_SPEC, HPC_SPEC, PROXIFIER_SPEC, HDFS_SPEC, ZOOKEEPER_SPEC)
}

#: Dataset names in the paper's Table I order.
DATASET_NAMES = ["BGL", "HPC", "Proxifier", "HDFS", "Zookeeper"]


def get_dataset_spec(name: str) -> DatasetSpec:
    """Look up a dataset spec by (case-insensitive) name."""
    for spec_name, spec in _SPECS.items():
        if spec_name.lower() == name.lower():
            return spec
    raise DatasetError(
        f"unknown dataset {name!r}; choose from {DATASET_NAMES}"
    )


def iter_dataset_specs() -> Iterator[DatasetSpec]:
    """Iterate over all five dataset specs in Table I order."""
    for name in DATASET_NAMES:
        yield _SPECS[name]
