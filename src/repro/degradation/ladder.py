"""The degradation ladder: ordered fidelity rungs and the step-down policy.

Table III orders the four parsers by accuracy — LKE and LogSig at the
top, then IPLoM, then SLCT — while Finding 3 orders them (roughly the
other way) by cost: the clustering parsers LKE and LogSig blow up with
log size, IPLoM and SLCT scale linearly.  A
:class:`DegradationLadder` encodes that trade as an ordered list of
:class:`LadderRung` entries, most faithful first, each rung naming a
parser plus the streaming-engine parameters (template-cache capacity,
flush batch size, admission sampling) appropriate to its cost class.

The policy is deliberately simple and auditable:

* a **soft** budget breach steps down exactly one rung, never more,
  and only after the breach has persisted for ``cooldown_checks``
  consecutive checks (so a single noisy sample cannot shed fidelity);
* a **hard** breach steps down immediately, ignoring the cooldown;
* the ladder never skips a rung and never steps back up mid-run —
  recovery is a restart decision, not a flapping one;
* every transition emits a :class:`DegradationEvent` carrying the
  budget evidence (sample + breaches) that justified it and the
  engine parameter changes actually applied.

When the bottom rung (the passthrough tagger) is itself insufficient,
the ladder is *exhausted* and the runtime escalates to the supervisor
layer (:class:`~repro.common.errors.BudgetExceededError`, then
:class:`~repro.common.errors.FallbackExhaustedError` if nothing in the
chain survives).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ValidationError
from repro.degradation.budget import BudgetBreach, BudgetSample
from repro.parsers.base import LogParser
from repro.parsers.registry import make_parser

#: Transition trigger tags recorded on :class:`DegradationEvent`.
TRIGGER_SOFT = "soft-breach"
TRIGGER_HARD = "hard-breach"
TRIGGER_SUPERVISED = "supervised-fallback"


@dataclass(frozen=True)
class LadderRung:
    """One fidelity level: a parser plus the engine shape it runs under.

    Args:
        parser: registry name (``LKE``, ``LogSig``, ``IPLoM``,
            ``Drain``, ``SLCT``, ``Passthrough``) used to build the
            flush parser.
        cache_capacity: template-cache size while on this rung (lower
            rungs shrink the cache to relieve memory).
        flush_size: miss-batch size handed to the parser per flush
            (lower rungs flush smaller batches, bounding latency and
            per-flush memory).
        sample_keep: admission sampling — keep 1 of every
            ``sample_keep`` records (1 = keep everything; lower rungs
            may shed input volume outright).
        params: extra keyword arguments for the parser constructor.
    """

    parser: str
    cache_capacity: int = 512
    flush_size: int = 200
    sample_keep: int = 1
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.cache_capacity < 1:
            raise ValidationError(
                f"rung cache_capacity must be >= 1, got {self.cache_capacity}"
            )
        if self.flush_size < 1:
            raise ValidationError(
                f"rung flush_size must be >= 1, got {self.flush_size}"
            )
        if self.sample_keep < 1:
            raise ValidationError(
                f"rung sample_keep must be >= 1, got {self.sample_keep}"
            )

    def build_parser(self) -> LogParser:
        return make_parser(self.parser, **self.params)

    def describe(self) -> str:
        bits = [
            f"cache={self.cache_capacity}",
            f"flush={self.flush_size}",
        ]
        if self.sample_keep > 1:
            bits.append(f"sample=1/{self.sample_keep}")
        return f"{self.parser} ({', '.join(bits)})"


def default_ladder() -> list[LadderRung]:
    """The standard six-rung ladder, most faithful first.

    LKE → LogSig → IPLoM → Drain → SLCT → Passthrough: descending
    Table III fidelity, descending cost.  Drain slots in below IPLoM
    (comparable template quality at strictly lower, single-pass cost)
    and above SLCT (which starts shedding rare events outright).
    Engine parameters tighten with each step: the cache shrinks
    (memory relief), flush batches shrink (latency/heap relief), and
    the bottom rungs shed input volume.
    """
    return [
        LadderRung("LKE", cache_capacity=1024, flush_size=400),
        # LogSig demands a group count up front; a ladder rung cannot
        # know the dataset's true event count, so use a mid-range
        # default (seeded for deterministic local search).
        LadderRung(
            "LogSig",
            cache_capacity=512,
            flush_size=200,
            params={"groups": 64, "seed": 1},
        ),
        LadderRung("IPLoM", cache_capacity=256, flush_size=100),
        LadderRung("Drain", cache_capacity=192, flush_size=75),
        LadderRung("SLCT", cache_capacity=128, flush_size=50, sample_keep=2),
        LadderRung(
            "Passthrough", cache_capacity=64, flush_size=25, sample_keep=4
        ),
    ]


@dataclass(frozen=True)
class DegradationEvent:
    """One audited fidelity transition, with the evidence behind it."""

    sequence: int
    from_rung: str
    to_rung: str
    trigger: str
    at_line: int
    sample: BudgetSample | None
    breaches: tuple[BudgetBreach, ...]
    actions: dict
    mining_impact: str = ""

    def to_dict(self) -> dict:
        return {
            "sequence": self.sequence,
            "from": self.from_rung,
            "to": self.to_rung,
            "trigger": self.trigger,
            "at_line": self.at_line,
            "sample": self.sample.to_dict() if self.sample else None,
            "breaches": [breach.describe() for breach in self.breaches],
            "actions": dict(self.actions),
            "mining_impact": self.mining_impact,
        }

    def to_record(self) -> dict:
        """Structured-event-log shape (common ``kind`` envelope).

        The same contract as ``FailureReport.to_record`` and
        ``QuarantineRecord.to_record``, so ladder steps interleave with
        fallback reports and quarantined records in one timeline.
        """
        return {"kind": "ladder_step", **self.to_dict()}

    def describe(self) -> str:
        evidence = (
            "; ".join(breach.describe() for breach in self.breaches)
            or "no budget evidence (supervised fallback)"
        )
        lines = [
            f"#{self.sequence} {self.from_rung} -> {self.to_rung} "
            f"[{self.trigger}] at line {self.at_line}",
            f"    evidence: {evidence}",
        ]
        if self.sample is not None:
            lines.append(f"    sample:   {self.sample.describe()}")
        if self.actions:
            applied = ", ".join(
                f"{key}={value}" for key, value in sorted(self.actions.items())
            )
            lines.append(f"    applied:  {applied}")
        if self.mining_impact:
            lines.append(f"    impact:   {self.mining_impact}")
        return "\n".join(lines)


class DegradationLadder:
    """Position tracking and step-down policy over an ordered rung list.

    The ladder owns *policy only* — which rung is current, whether a
    step is allowed, and the audit trail of
    :class:`DegradationEvent` records.  Applying a rung to a live
    engine is the runtime's job
    (:class:`~repro.degradation.runtime.DegradedSession`).

    Args:
        rungs: ordered rungs, most faithful first (defaults to
            :func:`default_ladder`).
        cooldown_checks: consecutive breached checks required before a
            *soft* breach may step down, and again between successive
            soft steps.  Hard breaches ignore the cooldown.
    """

    def __init__(
        self,
        rungs: list[LadderRung] | None = None,
        *,
        cooldown_checks: int = 2,
    ) -> None:
        self.rungs = list(rungs) if rungs is not None else default_ladder()
        if not self.rungs:
            raise ValidationError("a degradation ladder needs >= 1 rung")
        if cooldown_checks < 1:
            raise ValidationError(
                f"cooldown_checks must be >= 1, got {cooldown_checks}"
            )
        self.cooldown_checks = cooldown_checks
        self.position = 0
        self.events: list[DegradationEvent] = []
        self._pressure_streak = 0

    @property
    def current(self) -> LadderRung:
        return self.rungs[self.position]

    @property
    def exhausted(self) -> bool:
        """True when there is no rung left below the current one."""
        return self.position >= len(self.rungs) - 1

    def peek_next(self) -> LadderRung | None:
        if self.exhausted:
            return None
        return self.rungs[self.position + 1]

    def note_check(self, breached: bool) -> None:
        """Record one budget check's outcome for the soft cooldown."""
        if breached:
            self._pressure_streak += 1
        else:
            self._pressure_streak = 0

    def ready(self) -> bool:
        """Whether sustained pressure has earned a soft step-down."""
        return self._pressure_streak >= self.cooldown_checks

    def step_down(
        self,
        *,
        trigger: str,
        at_line: int,
        sample: BudgetSample | None = None,
        breaches: tuple[BudgetBreach, ...] = (),
        actions: dict | None = None,
        mining_impact: str = "",
    ) -> DegradationEvent:
        """Advance exactly one rung and record the transition.

        Raises :class:`~repro.common.errors.ValidationError` when the
        ladder is already exhausted — callers must check
        :attr:`exhausted` and escalate instead.
        """
        if self.exhausted:
            raise ValidationError(
                "degradation ladder exhausted: already on "
                f"{self.current.parser}, nothing below it"
            )
        from_rung = self.current.parser
        self.position += 1
        self._pressure_streak = 0
        event = DegradationEvent(
            sequence=len(self.events) + 1,
            from_rung=from_rung,
            to_rung=self.current.parser,
            trigger=trigger,
            at_line=at_line,
            sample=sample,
            breaches=tuple(breaches),
            actions=dict(actions or {}),
            mining_impact=mining_impact,
        )
        self.events.append(event)
        return event

    def describe(self) -> str:
        path = " -> ".join(
            (f"[{rung.parser}]" if i == self.position else rung.parser)
            for i, rung in enumerate(self.rungs)
        )
        return (
            f"ladder: {path} | {len(self.events)} transition(s), "
            f"cooldown={self.cooldown_checks} check(s)"
        )
