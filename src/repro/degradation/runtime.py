"""The adaptive runtime: budgets + ladder wired into a live stream.

Three integration points, one per enforcement layer:

* :class:`DegradedSession` wraps a
  :class:`~repro.streaming.session.ParseSession` and checks the
  :class:`~repro.degradation.budget.BudgetMonitor` every
  ``check_every`` fed records.  Sustained *soft* breaches walk the
  :class:`~repro.degradation.ladder.DegradationLadder` one rung at a
  time (swapping the flush parser, shrinking the cache and flush batch
  via :meth:`~repro.streaming.engine.StreamingParser.reconfigure`,
  tightening admission sampling); a *hard* breach steps immediately,
  and once the ladder is exhausted escalates as
  :class:`~repro.common.errors.BudgetExceededError`.
* :class:`BudgetedParser` decorates any batch parser so a hard breach
  *during a supervised parse* raises ``BudgetExceededError`` — which
  :class:`~repro.resilience.supervisor.ParserSupervisor` records as a
  ``budget`` attempt and converts into a fallback instead of a crash.
* :func:`ladder_chain` turns a ladder into a supervisor fallback
  chain of budget-wrapped parsers, so the acceptance contract holds:
  a run under hard budget pressure either completes on some lower
  rung (the report says which rung won) or raises
  :class:`~repro.common.errors.FallbackExhaustedError` only after the
  *entire* ladder has been tried.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Sequence

from repro.common.errors import BudgetExceededError, ValidationError
from repro.common.types import LogRecord, ParseResult
from repro.degradation.budget import LEVEL_HARD, BudgetMonitor
from repro.degradation.ladder import (
    TRIGGER_HARD,
    TRIGGER_SOFT,
    DegradationEvent,
    DegradationLadder,
)
from repro.degradation.ledger import MiningImpactLedger
from repro.mining.event_matrix import EventCountMatrix
from repro.parsers.base import LogParser
from repro.resilience.quarantine import ErrorPolicy, QuarantineSink
from repro.streaming.engine import StreamingParser
from repro.streaming.session import ParseSession, SessionCounters


@dataclass(frozen=True)
class DegradedRunReport:
    """Everything a budgeted run produced, audit trail included."""

    result: ParseResult | None
    matrix: EventCountMatrix | None
    counters: SessionCounters
    events: tuple[DegradationEvent, ...]
    final_rung: str
    checks: int
    sampled_out: int
    ledger: MiningImpactLedger

    @property
    def degraded(self) -> bool:
        return bool(self.events)

    def describe(self) -> str:
        lines = [
            f"finished on rung {self.final_rung} after "
            f"{len(self.events)} degradation(s), {self.checks} budget "
            f"check(s), {self.sampled_out} line(s) sampled out",
            self.counters.describe(),
        ]
        for event in self.events:
            lines.append(event.describe())
        lines.append(self.ledger.describe())
        return "\n".join(lines)


class DegradedSession:
    """A budget-supervised streaming parse that sheds fidelity to survive.

    Builds the engine from the ladder's *top* rung and steps down per
    the policy in :class:`~repro.degradation.ladder.DegradationLadder`
    whenever the monitor reports breaches.  Lower rungs may also shed
    input volume (``sample_keep``): admission sampling happens *here*,
    before the engine sees the record, so the engine's own counters
    stay truthful about what it actually parsed.

    Args:
        ladder: rung order and step-down policy (position 0 on entry).
        monitor: the budget to check; its cache/queue probes are wired
            to the live engine automatically.
        ledger: mining-impact accounting (defaults to the reference
            table).
        check_every: fed records between budget checks.
        engine_kwargs: forwarded to :class:`StreamingParser` (e.g.
            ``retain``, ``error_policy``, ``quarantine``,
            ``preprocessor``, ``max_pending``, ``overflow``).
        track_matrix: maintain the live session-by-event matrix.
        telemetry: optional
            :class:`~repro.observability.telemetry.Telemetry` handle,
            threaded into the engine (and from there the cache and any
            parallel flush backend).  Budget breaches are counted by
            dimension and level, ladder steps by trigger, the current
            rung index is exported as a gauge, and every
            :class:`DegradationEvent` lands on the event timeline plus
            a ``rung_change`` instant marker in the trace.
    """

    def __init__(
        self,
        ladder: DegradationLadder,
        monitor: BudgetMonitor,
        *,
        ledger: MiningImpactLedger | None = None,
        check_every: int = 100,
        track_matrix: bool = True,
        error_policy: ErrorPolicy | str | None = None,
        quarantine: QuarantineSink | None = None,
        telemetry=None,
        **engine_kwargs,
    ) -> None:
        self.ladder = ladder
        self.monitor = monitor
        self.ledger = ledger if ledger is not None else MiningImpactLedger()
        if check_every < 1:
            raise ValidationError(
                f"check_every must be >= 1, got {check_every}"
            )
        self.check_every = check_every
        self.telemetry = telemetry
        rung = ladder.current
        self.engine = StreamingParser(
            rung.build_parser,
            cache_capacity=rung.cache_capacity,
            flush_size=rung.flush_size,
            error_policy=error_policy,
            quarantine=quarantine,
            telemetry=telemetry,
            **engine_kwargs,
        )
        self.session = ParseSession(self.engine, track_matrix=track_matrix)
        self.checks = 0
        self.sampled_out = 0
        self._fed = 0
        self._finalized: ParseResult | None = None
        if telemetry is not None:
            telemetry.metrics.register_collector(self._collect_metrics)

    def _collect_metrics(self) -> None:
        self.telemetry.metrics.get("repro_ladder_position").set(
            self.ladder.position
        )

    # ------------------------------------------------------------------

    def feed(self, record: LogRecord) -> int:
        """Admit (or sample out) one record, then maybe check the budget.

        Returns the engine line number, or -1 when the record was
        sampled out by the current rung or rejected/shed downstream.
        Raises :class:`BudgetExceededError` when a hard breach lands
        with the ladder already exhausted.
        """
        self.monitor.start_if_needed()
        self._fed += 1
        keep = self.ladder.current.sample_keep
        if keep > 1 and self._fed % keep != 0:
            self.sampled_out += 1
            line_no = -1
        else:
            line_no = self.session.feed(record)
        if self._fed % self.check_every == 0:
            self.check_budget()
        return line_no

    def consume(self, records: Iterable[LogRecord]) -> None:
        for record in records:
            self.feed(record)

    def check_budget(self) -> list[DegradationEvent]:
        """Sample the budget now and apply the step-down policy.

        Returns the transitions applied by this check (empty for a
        clean or merely-cooling-down check).
        """
        self.checks += 1
        sample, breaches = self.monitor.evaluate(
            cache_entries=len(self.engine.cache),
            queue_depth=self.engine.pending_count,
        )
        if self.telemetry is not None:
            family = self.telemetry.metrics.get("repro_budget_breaches_total")
            for breach in breaches:
                family.labels(
                    dimension=breach.dimension, level=breach.level
                ).inc()
        if not breaches:
            self.ladder.note_check(False)
            return []
        hard = [b for b in breaches if b.level == LEVEL_HARD]
        if hard and self.ladder.exhausted:
            raise BudgetExceededError(
                "hard resource budget breached with the degradation ladder "
                f"exhausted (on {self.ladder.current.parser}): "
                + "; ".join(breach.describe() for breach in hard),
                breaches=hard,
            )
        self.ladder.note_check(True)
        if hard:
            trigger = TRIGGER_HARD
        elif self.ladder.ready() and not self.ladder.exhausted:
            trigger = TRIGGER_SOFT
        else:
            return []
        return [self._step_down(trigger, sample, breaches)]

    def _step_down(self, trigger, sample, breaches) -> DegradationEvent:
        """Apply the next rung to the live engine and record the event."""
        from_rung = self.ladder.current
        to_rung = self.ladder.peek_next()
        assert to_rung is not None  # callers checked exhausted
        cost = self.ledger.record(
            len(self.ladder.events) + 1, from_rung.parser, to_rung.parser
        )
        actions = self.engine.reconfigure(
            to_rung.build_parser,
            flush_size=to_rung.flush_size,
            cache_capacity=to_rung.cache_capacity,
        )
        if to_rung.sample_keep != from_rung.sample_keep:
            actions["sample_keep"] = (
                from_rung.sample_keep,
                to_rung.sample_keep,
            )
        event = self.ladder.step_down(
            trigger=trigger,
            at_line=self.engine.counters.lines,
            sample=sample,
            breaches=tuple(breaches),
            actions=actions,
            mining_impact=cost.describe(),
        )
        if self.telemetry is not None:
            self.telemetry.metrics.get("repro_ladder_steps_total").labels(
                trigger=trigger
            ).inc()
            self.telemetry.events.record(event)
            self.telemetry.tracer.instant(
                "rung_change",
                from_rung=event.from_rung,
                to_rung=event.to_rung,
                trigger=trigger,
                at_line=event.at_line,
            )
        return event

    # ------------------------------------------------------------------

    def finalize(self) -> DegradedRunReport:
        """Drain the engine and assemble the full audited report."""
        self._finalized = self.session.finalize()
        matrix = (
            self.session.matrix()
            if self.session.accumulator is not None
            else None
        )
        return DegradedRunReport(
            result=self._finalized,
            matrix=matrix,
            counters=self.session.counters(),
            events=tuple(self.ladder.events),
            final_rung=self.ladder.current.parser,
            checks=self.checks,
            sampled_out=self.sampled_out,
            ledger=self.ledger,
        )


class BudgetedParser(LogParser):
    """Decorates a batch parser with hard-budget enforcement.

    The budget is checked before and after the wrapped ``parse`` and
    every ``check_every`` records of input pre-screening, raising
    :class:`~repro.common.errors.BudgetExceededError` on a hard breach
    so the supervisor treats it as a fallback trigger (status
    ``budget``) rather than a crash.
    """

    def __init__(
        self,
        parser: LogParser,
        monitor: BudgetMonitor,
    ) -> None:
        super().__init__()
        self.parser = parser
        self.monitor = monitor
        self.name = f"Budgeted({parser.name})"

    def parse(self, records: Sequence[LogRecord]) -> ParseResult:
        self.monitor.start_if_needed()
        self.monitor.enforce(context=f"{self.parser.name} admission")
        result = self.parser.parse(records)
        self.monitor.enforce(context=f"{self.parser.name} completion")
        return result

    def _cluster(self, token_lists):  # pragma: no cover - parse() overridden
        raise NotImplementedError("BudgetedParser overrides parse() directly")


def ladder_chain(
    ladder: DegradationLadder,
    monitor: BudgetMonitor,
) -> list[tuple[str, object]]:
    """Supervisor fallback chain over a ladder's rungs, budget-wrapped.

    Feed the result to
    :class:`~repro.resilience.supervisor.ParserSupervisor`: each rung
    becomes one chain entry whose parser enforces the hard budget, so
    a breach mid-parse falls through to the next (cheaper) rung, and
    :class:`~repro.common.errors.FallbackExhaustedError` can only be
    raised after the whole ladder — passthrough included — was tried.
    """

    def make_factory(rung):
        def factory():
            return BudgetedParser(rung.build_parser(), monitor)

        return factory

    return [(rung.parser, make_factory(rung)) for rung in ladder.rungs]
