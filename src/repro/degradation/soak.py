"""Deterministic chaos-soak harness for the degradation runtime.

A soak replays one *pressure scenario* — memory ramp, slow consumer,
deadline squeeze — against a :class:`~repro.degradation.runtime.
DegradedSession` parsing a seeded HDFS session stream, then audits the
outcome against the graceful-degradation contract:

* the ladder fired at least ``min_transitions`` times, **in order**,
  never skipping a rung;
* every transition carries budget evidence (a sample plus at least one
  breach) and a non-empty mining-impact estimate;
* the run still *finalized validly*: no line left ``PENDING``, the
  assignment vector covers exactly the admitted lines, and the live
  session-by-event matrix is consistent with the structured output;
* no clean record was quarantined (the scenarios inject pressure, not
  corruption — a record lost to the quarantine would mean degradation
  broke correctness, not just fidelity).

Everything is deterministic: pressure comes from *scripted probes*
(seeded memory ramps, scripted clocks) or from genuinely deterministic
engine state (the miss-buffer depth of a synchronous pipeline), so the
same seed always produces the same transition schedule.  That is what
lets CI assert on chaos.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random

from repro.common.errors import ValidationError
from repro.datasets.hdfs import generate_hdfs_sessions
from repro.degradation.budget import (
    BudgetLimit,
    BudgetMonitor,
    ResourceBudget,
)
from repro.degradation.ladder import DegradationLadder, LadderRung
from repro.degradation.runtime import DegradedRunReport, DegradedSession
from repro.resilience.quarantine import QuarantineSink
from repro.streaming.engine import PENDING_EVENT_ID

#: Scenario kinds the harness can replay.
KIND_MEMORY = "memory-pressure"
KIND_SLOW_CONSUMER = "slow-consumer"
KIND_DEADLINE = "deadline-squeeze"
SCENARIO_KINDS = (KIND_MEMORY, KIND_SLOW_CONSUMER, KIND_DEADLINE)


@dataclass(frozen=True)
class SoakScenario:
    """One reproducible pressure scenario.

    Args:
        kind: one of :data:`SCENARIO_KINDS`.
        seed: drives the dataset *and* the scripted pressure schedule.
        n_blocks: HDFS sessions in the generated stream.
        check_every: fed records between budget checks.
        cooldown_checks: soft-breach persistence required per step.
        min_transitions: contract floor the audit enforces.
    """

    kind: str
    seed: int = 7
    n_blocks: int = 40
    check_every: int = 20
    cooldown_checks: int = 2
    min_transitions: int = 2

    def __post_init__(self) -> None:
        if self.kind not in SCENARIO_KINDS:
            raise ValidationError(
                f"unknown soak kind {self.kind!r}; choose from {SCENARIO_KINDS}"
            )
        for knob in ("n_blocks", "check_every", "cooldown_checks", "min_transitions"):
            if getattr(self, knob) < 1:
                raise ValidationError(
                    f"{knob} must be >= 1, got {getattr(self, knob)}"
                )

    @property
    def name(self) -> str:
        return f"{self.kind}[seed={self.seed}]"


def soak_ladder(cooldown_checks: int = 2) -> DegradationLadder:
    """A fast three-rung ladder for soak runs: IPLoM → SLCT → Passthrough.

    Same ordering rules as :func:`~repro.degradation.ladder.
    default_ladder` (descending fidelity and cost) but starting at the
    linear-time rungs, so chaos runs finish in CI time.  Flush sizes
    deliberately exceed any soak stream length: the miss buffer only
    drains on step-down or finalize, which keeps the slow-consumer
    scenario's queue-depth signal monotonic and deterministic.
    """
    return DegradationLadder(
        [
            LadderRung("IPLoM", cache_capacity=64, flush_size=5000),
            LadderRung("SLCT", cache_capacity=8, flush_size=5000),
            LadderRung(
                "Passthrough", cache_capacity=4, flush_size=5000, sample_keep=2
            ),
        ],
        cooldown_checks=cooldown_checks,
    )


def _scripted_memory_ramp(seed: int, soft: float, hard: float):
    """Seeded memory probe: 2 calm samples, then a sustained soft breach.

    Values stay strictly between the soft and hard limits, so the
    ladder walks down rung by rung but the run is never killed.
    """
    rng = Random(seed)
    calls = {"n": 0}

    def probe() -> float:
        calls["n"] += 1
        if calls["n"] <= 2:
            return soft * (0.2 + 0.2 * rng.random())
        return soft + (0.1 + 0.75 * rng.random()) * (hard - soft)

    return probe


def _scripted_clock(seed: int):
    """Seeded monotonic clock advancing 100–200 ms per observation.

    The >= 100 ms floor guarantees (for *any* seed) that the soft wall
    limit of the deadline scenario is crossed within its first five
    budget checks, so both required transitions land well inside the
    stream.
    """
    rng = Random(seed)
    state = {"now": 0.0}

    def clock() -> float:
        state["now"] += 0.1 + 0.1 * rng.random()
        return state["now"]

    return clock


def build_session(
    scenario: SoakScenario,
    telemetry=None,
) -> tuple[list, DegradedSession, QuarantineSink]:
    """Materialize a scenario: records + budgeted session + sink.

    With *telemetry*, the sink and session report into its registry,
    trace, and event timeline like any other instrumented run.
    """
    dataset = generate_hdfs_sessions(scenario.n_blocks, seed=scenario.seed)
    ladder = soak_ladder(scenario.cooldown_checks)
    sink = QuarantineSink(telemetry=telemetry)
    mb = 1024 * 1024
    if scenario.kind == KIND_MEMORY:
        budget = ResourceBudget(
            memory_bytes=BudgetLimit(soft=32 * mb, hard=64 * mb)
        )
        monitor = BudgetMonitor(
            budget,
            memory_probe=_scripted_memory_ramp(
                scenario.seed, 32 * mb, 64 * mb
            ),
        )
    elif scenario.kind == KIND_SLOW_CONSUMER:
        # Real signal: the miss buffer of a synchronous pipeline grows
        # deterministically (flush sizes exceed the stream), so the
        # queue-depth dimension needs no scripting at all.
        budget = ResourceBudget(
            queue_depth=BudgetLimit(soft=10, hard=100_000)
        )
        monitor = BudgetMonitor(budget, memory_probe=lambda: 0.0)
    else:  # KIND_DEADLINE
        budget = ResourceBudget(
            wall_seconds=BudgetLimit(soft=0.5, hard=10_000.0)
        )
        monitor = BudgetMonitor(
            budget,
            clock=_scripted_clock(scenario.seed),
            memory_probe=lambda: 0.0,
        )
    session = DegradedSession(
        ladder,
        monitor,
        check_every=scenario.check_every,
        error_policy="quarantine",
        quarantine=sink,
        telemetry=telemetry,
    )
    return list(dataset.records), session, sink


@dataclass
class SoakReport:
    """Outcome of one soak run plus every contract violation found."""

    scenario: SoakScenario
    report: DegradedRunReport
    quarantined: int
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def describe(self) -> str:
        verdict = (
            "PASS"
            if self.ok
            else "FAIL: " + "; ".join(self.violations)
        )
        return (
            f"soak {self.scenario.name}: {verdict}\n"
            + self.report.describe()
        )


def _audit(
    scenario: SoakScenario,
    report: DegradedRunReport,
    quarantined: int,
) -> list[str]:
    """Grade one finished run against the degradation contract."""
    violations: list[str] = []
    rungs = [rung.parser for rung in soak_ladder().rungs]
    events = report.events
    if len(events) < scenario.min_transitions:
        violations.append(
            f"only {len(events)} transition(s), "
            f"contract requires >= {scenario.min_transitions}"
        )
    for index, event in enumerate(events):
        if index + 1 >= len(rungs):
            violations.append(f"transition #{event.sequence} below the ladder")
            continue
        if event.from_rung != rungs[index] or event.to_rung != rungs[index + 1]:
            violations.append(
                f"transition #{event.sequence} "
                f"{event.from_rung}->{event.to_rung} skips the ladder order "
                f"(expected {rungs[index]}->{rungs[index + 1]})"
            )
        if event.sample is None or not event.breaches:
            violations.append(
                f"transition #{event.sequence} lacks budget evidence"
            )
        if not event.mining_impact:
            violations.append(
                f"transition #{event.sequence} lacks a mining-impact estimate"
            )
    result = report.result
    if result is None:
        violations.append("run did not retain a structured result")
    else:
        if len(result.assignments) != report.counters.stream.lines:
            violations.append(
                f"{len(result.assignments)} assignments for "
                f"{report.counters.stream.lines} admitted lines"
            )
        pending = sum(
            1 for event_id in result.assignments if event_id == PENDING_EVENT_ID
        )
        if pending:
            violations.append(f"{pending} line(s) left PENDING after finalize")
        known = {event.event_id for event in result.events}
        unknown = {
            event_id
            for event_id in result.assignments
            if event_id not in known
            and event_id != result.OUTLIER_EVENT_ID
            and event_id != PENDING_EVENT_ID
        }
        if unknown:
            violations.append(
                f"assignments reference unknown events: {sorted(unknown)[:3]}"
            )
        if report.matrix is None:
            violations.append("no event matrix was accumulated")
        else:
            assigned_sessions = {
                record.session_id
                for record, event_id in zip(result.records, result.assignments)
                if record.session_id and event_id != result.OUTLIER_EVENT_ID
            }
            if report.matrix.n_sessions < len(assigned_sessions):
                violations.append(
                    f"matrix covers {report.matrix.n_sessions} sessions, "
                    f"stream assigned {len(assigned_sessions)}"
                )
    if quarantined:
        violations.append(
            f"{quarantined} clean record(s) quarantined under pure pressure"
        )
    return violations


def run_soak(scenario: SoakScenario, telemetry=None) -> SoakReport:
    """Replay *scenario* end to end and audit the outcome."""
    records, session, sink = build_session(scenario, telemetry=telemetry)
    session.consume(records)
    report = session.finalize()
    quarantined = len(sink.records)
    return SoakReport(
        scenario=scenario,
        report=report,
        quarantined=quarantined,
        violations=_audit(scenario, report, quarantined),
    )
