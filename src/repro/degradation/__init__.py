"""Resource-budgeted adaptive parsing: degrade gracefully, never die.

The paper's cost findings (Finding 3: clustering parsers do not scale;
Finding 6: the *kind* of parsing error determines mining damage) imply
a production trade-off this package makes explicit and enforceable:

* :mod:`~repro.degradation.budget` — declare soft/hard limits on
  wall-clock, memory, template-cache size, and ingest-queue depth, and
  sample a live run against them (:class:`ResourceBudget`,
  :class:`BudgetMonitor`).
* :mod:`~repro.degradation.ladder` — an ordered fidelity ladder
  (LKE → LogSig → IPLoM → SLCT → passthrough tagger) stepped one rung
  at a time on sustained breaches, each transition audited as a
  :class:`DegradationEvent` with the budget evidence that caused it.
* :mod:`~repro.degradation.ledger` — what each downgrade is expected
  to cost downstream mining, seeded from the measured Table III
  reproduction (:class:`MiningImpactLedger`).
* :mod:`~repro.degradation.runtime` — the wiring:
  :class:`DegradedSession` (budgeted streaming),
  :class:`BudgetedParser` + :func:`ladder_chain` (budgets inside
  supervised fallback chains).
* :mod:`~repro.degradation.soak` — deterministic chaos-soak scenarios
  that replay seeded pressure schedules and audit the contract.
"""

from repro.degradation.budget import (
    BudgetBreach,
    BudgetLimit,
    BudgetMonitor,
    BudgetSample,
    ResourceBudget,
    default_memory_probe,
)
from repro.degradation.ladder import (
    DegradationEvent,
    DegradationLadder,
    LadderRung,
    default_ladder,
)
from repro.degradation.ledger import (
    ImpactEstimate,
    MiningImpactLedger,
    TransitionCost,
)
from repro.degradation.runtime import (
    BudgetedParser,
    DegradedRunReport,
    DegradedSession,
    ladder_chain,
)
from repro.degradation.soak import (
    SCENARIO_KINDS,
    SoakReport,
    SoakScenario,
    run_soak,
    soak_ladder,
)

__all__ = [
    "BudgetBreach",
    "BudgetLimit",
    "BudgetMonitor",
    "BudgetSample",
    "ResourceBudget",
    "default_memory_probe",
    "DegradationEvent",
    "DegradationLadder",
    "LadderRung",
    "default_ladder",
    "ImpactEstimate",
    "MiningImpactLedger",
    "TransitionCost",
    "BudgetedParser",
    "DegradedRunReport",
    "DegradedSession",
    "ladder_chain",
    "SCENARIO_KINDS",
    "SoakReport",
    "SoakScenario",
    "run_soak",
    "soak_ladder",
]
