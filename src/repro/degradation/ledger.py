"""Mining-impact accounting for degradation decisions.

Stepping down the ladder is not free: Table III shows the *same* PCA
mining pipeline detects 64% of true anomalies over IPLoM's parse but
11% over SLCT's (with a 74.5% false-alarm rate), and Finding 6 shows
fragmentation errors — the exact shape the passthrough rung produces —
are the most destructive kind.  The
:class:`MiningImpactLedger` makes that cost explicit: every ladder
transition is annotated with the estimated change in parsing accuracy,
anomaly-detection rate, and false-alarm rate between the rung being
left and the rung being entered.

Estimates come from a reference table seeded with this repo's measured
Table III reproduction (see ``EXPERIMENTS.md``), and can be replaced by
live measurements via :meth:`MiningImpactLedger.calibrate`, which runs
the real RQ3 harness (:func:`~repro.evaluation.mining_impact.
evaluate_mining_impact`) over a labelled HDFS dataset.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ValidationError
from repro.evaluation.mining_impact import (
    TABLE3_CONFIGS,
    evaluate_mining_impact,
    table3_parser_factory,
)


@dataclass(frozen=True)
class ImpactEstimate:
    """Expected mining quality when parsing with one ladder rung.

    ``source`` is ``"reference"`` for table-seeded values and
    ``"measured"`` after :meth:`MiningImpactLedger.calibrate` replaced
    them with a live Table III run.
    """

    parser: str
    parsing_accuracy: float
    detection_rate: float
    false_alarm_rate: float
    source: str = "reference"

    def describe(self) -> str:
        return (
            f"{self.parser}: accuracy {self.parsing_accuracy:.2f}, "
            f"detects {self.detection_rate:.0%} of anomalies, "
            f"{self.false_alarm_rate:.1%} false alarms [{self.source}]"
        )


#: Reference rows.  SLCT/LogSig/IPLoM/GroundTruth come from this repo's
#: measured Table III reproduction; LKE is estimated (the paper excludes
#: it from RQ3 because it cannot parse the volume — Finding 3 — so we
#: extrapolate from its RQ1 accuracy band); Drain is estimated from the
#: "Tools and Benchmarks" accuracy band, a notch under IPLoM on HDFS;
#: Passthrough is estimated from the Finding 6 fragment ablation
#: (exact-signature templates fragment parameterized events, the most
#: damaging error shape).
REFERENCE_IMPACT: dict[str, ImpactEstimate] = {
    est.parser: est
    for est in (
        ImpactEstimate("GroundTruth", 1.00, 0.53, 0.000),
        ImpactEstimate("LKE", 0.91, 0.55, 0.030, source="estimate"),
        ImpactEstimate("LogSig", 0.86, 0.55, 0.025),
        ImpactEstimate("IPLoM", 0.99, 0.64, 0.000),
        ImpactEstimate("Drain", 0.97, 0.61, 0.005, source="estimate"),
        ImpactEstimate("SLCT", 0.82, 0.11, 0.745),
        ImpactEstimate("Passthrough", 0.35, 0.05, 0.900, source="estimate"),
    )
}


@dataclass(frozen=True)
class TransitionCost:
    """Estimated mining-quality delta of one ladder transition."""

    from_estimate: ImpactEstimate
    to_estimate: ImpactEstimate

    @property
    def accuracy_delta(self) -> float:
        return (
            self.to_estimate.parsing_accuracy
            - self.from_estimate.parsing_accuracy
        )

    @property
    def detection_delta(self) -> float:
        return (
            self.to_estimate.detection_rate
            - self.from_estimate.detection_rate
        )

    @property
    def false_alarm_delta(self) -> float:
        return (
            self.to_estimate.false_alarm_rate
            - self.from_estimate.false_alarm_rate
        )

    def describe(self) -> str:
        return (
            f"{self.from_estimate.parser} -> {self.to_estimate.parser}: "
            f"accuracy {self.accuracy_delta:+.2f}, "
            f"detection {self.detection_delta:+.0%}, "
            f"false alarms {self.false_alarm_delta:+.1%} "
            f"(now: {self.to_estimate.describe()})"
        )


class MiningImpactLedger:
    """Accumulates the estimated mining cost of every ladder transition.

    Args:
        estimates: per-parser quality rows; defaults to a copy of
            :data:`REFERENCE_IMPACT`.
    """

    def __init__(
        self, estimates: dict[str, ImpactEstimate] | None = None
    ) -> None:
        self.estimates = dict(
            estimates if estimates is not None else REFERENCE_IMPACT
        )
        self.entries: list[tuple[int, TransitionCost]] = []

    def estimate_for(self, parser: str) -> ImpactEstimate:
        try:
            return self.estimates[parser]
        except KeyError:
            raise ValidationError(
                f"no mining-impact estimate for parser {parser!r}; "
                f"known: {sorted(self.estimates)}"
            ) from None

    def cost(self, from_parser: str, to_parser: str) -> TransitionCost:
        return TransitionCost(
            from_estimate=self.estimate_for(from_parser),
            to_estimate=self.estimate_for(to_parser),
        )

    def record(
        self, sequence: int, from_parser: str, to_parser: str
    ) -> TransitionCost:
        """Account one transition; returns the cost for the event record."""
        cost = self.cost(from_parser, to_parser)
        self.entries.append((sequence, cost))
        return cost

    def calibrate(self, dataset, seed: int | None = None) -> None:
        """Replace reference rows with a live Table III measurement.

        Runs the RQ3 pipeline (parse + PCA detection) once per parser
        that has a Table III configuration over *dataset* (an
        :class:`~repro.datasets.hdfs.HdfsSessionDataset`).  Expensive —
        meant for offline calibration, not the hot path.
        """
        for parser_name in TABLE3_CONFIGS:
            parser = table3_parser_factory(parser_name, seed=seed)
            row = evaluate_mining_impact(parser, dataset)
            self.estimates[parser_name] = ImpactEstimate(
                parser=parser_name,
                parsing_accuracy=row.parsing_accuracy,
                detection_rate=row.detection_rate,
                false_alarm_rate=row.false_alarm_rate,
                source="measured",
            )

    @property
    def total_detection_delta(self) -> float:
        return sum(cost.detection_delta for _, cost in self.entries)

    def describe(self) -> str:
        if not self.entries:
            return "mining-impact ledger: no degradations recorded"
        lines = ["mining-impact ledger:"]
        lines.extend(
            f"  #{sequence} {cost.describe()}"
            for sequence, cost in self.entries
        )
        lines.append(
            f"  net estimated anomaly-detection change: "
            f"{self.total_detection_delta:+.0%}"
        )
        return "\n".join(lines)
