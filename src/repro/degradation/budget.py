"""Resource budgets and the monitor that samples a run against them.

Finding 3 is that the clustering parsers do not scale with log volume;
a production session therefore needs *enforceable* resource envelopes
rather than hope.  A :class:`ResourceBudget` declares soft and hard
limits over four dimensions of a parsing session:

* **wall seconds** — elapsed time since the monitor started;
* **memory bytes** — process heap, sampled via :mod:`tracemalloc`
  when tracing is active, else the :mod:`resource` high-water RSS
  (no new dependencies either way);
* **cache entries** — resident templates in the streaming engine's
  :class:`~repro.streaming.cache.TemplateCache`;
* **queue depth** — the engine's pending miss buffer (the ingest
  queue producers are filling).

A :class:`BudgetMonitor` turns the budget into evidence: every
:meth:`~BudgetMonitor.sample` produces a :class:`BudgetSample` and
:meth:`~BudgetMonitor.check` grades it into :class:`BudgetBreach`
records — ``soft`` breaches feed the
:class:`~repro.degradation.ladder.DegradationLadder` (step down, shed
fidelity, survive), ``hard`` breaches are enforced (raise
:class:`~repro.common.errors.BudgetExceededError`) once there is no
rung left to step to.  All probes (clock, memory, cache, queue) are
injectable, which the chaos-soak harness uses to replay seeded
pressure schedules deterministically.
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass
from collections.abc import Callable

from repro.common.errors import BudgetExceededError, ValidationError

try:  # pragma: no cover - resource is POSIX-only
    import resource as _resource
except ImportError:  # pragma: no cover
    _resource = None

#: Budget dimension tags.
DIM_WALL = "wall-seconds"
DIM_MEMORY = "memory-bytes"
DIM_CACHE = "cache-entries"
DIM_QUEUE = "queue-depth"
DIMENSIONS = (DIM_WALL, DIM_MEMORY, DIM_CACHE, DIM_QUEUE)

#: Breach severity levels.
LEVEL_SOFT = "soft"
LEVEL_HARD = "hard"


def default_memory_probe() -> float:
    """Current process memory in bytes, from the best free source.

    Prefers :func:`tracemalloc.get_traced_memory` (current heap, can
    go *down* after relief) when tracing is active; falls back to the
    ``ru_maxrss`` high-water mark (kilobytes on Linux) and finally to
    0 when neither source exists.
    """
    if tracemalloc.is_tracing():
        return float(tracemalloc.get_traced_memory()[0])
    if _resource is not None:
        return float(
            _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss * 1024
        )
    return 0.0


@dataclass(frozen=True)
class BudgetLimit:
    """Soft/hard limit pair over one dimension (``None`` = unlimited)."""

    soft: float | None = None
    hard: float | None = None

    def __post_init__(self) -> None:
        for value in (self.soft, self.hard):
            if value is not None and value <= 0:
                raise ValidationError(
                    f"budget limits must be > 0, got {value}"
                )
        if (
            self.soft is not None
            and self.hard is not None
            and self.soft > self.hard
        ):
            raise ValidationError(
                f"soft limit {self.soft} exceeds hard limit {self.hard}"
            )

    def grade(self, observed: float) -> str | None:
        """``"hard"`` / ``"soft"`` when *observed* breaches, else None."""
        if self.hard is not None and observed >= self.hard:
            return LEVEL_HARD
        if self.soft is not None and observed >= self.soft:
            return LEVEL_SOFT
        return None


@dataclass(frozen=True)
class ResourceBudget:
    """Per-session resource envelope over the four monitored dimensions."""

    wall_seconds: BudgetLimit | None = None
    memory_bytes: BudgetLimit | None = None
    cache_entries: BudgetLimit | None = None
    queue_depth: BudgetLimit | None = None

    #: Default soft limit as a fraction of the hard limit in :meth:`of`.
    SOFT_FRACTION = 0.5

    @classmethod
    def of(
        cls,
        *,
        wall_seconds: float | None = None,
        memory_mb: float | None = None,
        cache_entries: float | None = None,
        queue_depth: float | None = None,
        soft_fraction: float = SOFT_FRACTION,
    ) -> "ResourceBudget":
        """Build a budget from hard limits; soft = ``soft_fraction`` × hard."""
        if not 0.0 < soft_fraction <= 1.0:
            raise ValidationError(
                f"soft_fraction must be in (0, 1], got {soft_fraction}"
            )

        def limit(hard: float | None) -> BudgetLimit | None:
            if hard is None:
                return None
            return BudgetLimit(soft=hard * soft_fraction, hard=hard)

        return cls(
            wall_seconds=limit(wall_seconds),
            memory_bytes=limit(
                memory_mb * 1024 * 1024 if memory_mb is not None else None
            ),
            cache_entries=limit(cache_entries),
            queue_depth=limit(queue_depth),
        )

    def limits(self) -> dict[str, BudgetLimit]:
        """The declared limits, keyed by dimension tag."""
        pairs = {
            DIM_WALL: self.wall_seconds,
            DIM_MEMORY: self.memory_bytes,
            DIM_CACHE: self.cache_entries,
            DIM_QUEUE: self.queue_depth,
        }
        return {dim: lim for dim, lim in pairs.items() if lim is not None}

    def describe(self) -> str:
        if not self.limits():
            return "budget: unlimited"
        parts = [
            f"{dim} soft={lim.soft:g} hard={lim.hard:g}"
            if lim.soft is not None and lim.hard is not None
            else f"{dim} soft={lim.soft} hard={lim.hard}"
            for dim, lim in self.limits().items()
        ]
        return "budget: " + ", ".join(parts)


@dataclass(frozen=True)
class BudgetSample:
    """One observation of every monitored dimension."""

    wall_seconds: float
    memory_bytes: float
    cache_entries: float
    queue_depth: float

    def value(self, dimension: str) -> float:
        return {
            DIM_WALL: self.wall_seconds,
            DIM_MEMORY: self.memory_bytes,
            DIM_CACHE: self.cache_entries,
            DIM_QUEUE: self.queue_depth,
        }[dimension]

    def to_dict(self) -> dict:
        return {
            "wall_seconds": self.wall_seconds,
            "memory_bytes": self.memory_bytes,
            "cache_entries": self.cache_entries,
            "queue_depth": self.queue_depth,
        }

    def describe(self) -> str:
        return (
            f"wall {self.wall_seconds:.3f}s | "
            f"mem {self.memory_bytes / (1024 * 1024):.1f}MB | "
            f"cache {self.cache_entries:g} | queue {self.queue_depth:g}"
        )


@dataclass(frozen=True)
class BudgetBreach:
    """One dimension observed at or past one of its limits."""

    dimension: str
    level: str
    observed: float
    soft_limit: float | None
    hard_limit: float | None

    def describe(self) -> str:
        limit = self.hard_limit if self.level == LEVEL_HARD else self.soft_limit
        return (
            f"{self.level} breach of {self.dimension}: "
            f"observed {self.observed:g} >= limit {limit:g}"
        )


class BudgetMonitor:
    """Samples a running session against a :class:`ResourceBudget`.

    Args:
        budget: the envelope to grade samples against.
        clock: monotonic time source (injectable; the soak harness
            scripts it to replay deadline squeezes).
        memory_probe: zero-argument callable returning process memory
            in bytes (defaults to :func:`default_memory_probe`).
        cache_probe / queue_probe: optional zero-argument callables
            supplying the cache and queue dimensions when the caller
            does not pass them to :meth:`sample` explicitly.

    The monitor is passive — it never raises on its own.  Callers
    decide what a breach means: the degradation runtime steps its
    ladder on soft breaches and only :meth:`enforce` (or an exhausted
    ladder) escalates hard breaches into
    :class:`~repro.common.errors.BudgetExceededError`.
    """

    def __init__(
        self,
        budget: ResourceBudget,
        *,
        clock: Callable[[], float] = time.monotonic,
        memory_probe: Callable[[], float] | None = None,
        cache_probe: Callable[[], float] | None = None,
        queue_probe: Callable[[], float] | None = None,
    ) -> None:
        self.budget = budget
        self._clock = clock
        self._memory_probe = memory_probe or default_memory_probe
        self._cache_probe = cache_probe
        self._queue_probe = queue_probe
        self._started: float | None = None
        #: Samples taken since construction (soak schedules key off it).
        self.samples_taken = 0

    def start(self) -> None:
        """(Re)anchor the wall-clock dimension at *now*."""
        self._started = self._clock()

    def start_if_needed(self) -> None:
        if self._started is None:
            self.start()

    @property
    def elapsed(self) -> float:
        if self._started is None:
            return 0.0
        return self._clock() - self._started

    def sample(
        self,
        *,
        cache_entries: float | None = None,
        queue_depth: float | None = None,
    ) -> BudgetSample:
        """Observe every dimension right now."""
        self.start_if_needed()
        if cache_entries is None:
            cache_entries = (
                self._cache_probe() if self._cache_probe is not None else 0.0
            )
        if queue_depth is None:
            queue_depth = (
                self._queue_probe() if self._queue_probe is not None else 0.0
            )
        self.samples_taken += 1
        return BudgetSample(
            wall_seconds=self.elapsed,
            memory_bytes=self._memory_probe(),
            cache_entries=float(cache_entries),
            queue_depth=float(queue_depth),
        )

    def check(self, sample: BudgetSample) -> list[BudgetBreach]:
        """Grade *sample* against the budget; hard breaches sort first."""
        breaches = []
        for dimension, limit in self.budget.limits().items():
            level = limit.grade(sample.value(dimension))
            if level is not None:
                breaches.append(
                    BudgetBreach(
                        dimension=dimension,
                        level=level,
                        observed=sample.value(dimension),
                        soft_limit=limit.soft,
                        hard_limit=limit.hard,
                    )
                )
        breaches.sort(key=lambda breach: breach.level != LEVEL_HARD)
        return breaches

    def evaluate(
        self,
        *,
        cache_entries: float | None = None,
        queue_depth: float | None = None,
    ) -> tuple[BudgetSample, list[BudgetBreach]]:
        """Sample and grade in one call."""
        sample = self.sample(
            cache_entries=cache_entries, queue_depth=queue_depth
        )
        return sample, self.check(sample)

    def enforce(
        self,
        *,
        cache_entries: float | None = None,
        queue_depth: float | None = None,
        context: str = "parse",
    ) -> tuple[BudgetSample, list[BudgetBreach]]:
        """Sample, grade, and raise on any hard breach.

        Used by :class:`~repro.degradation.runtime.BudgetedParser` to
        turn a hard-limit breach inside a supervised parse into a
        :class:`~repro.common.errors.BudgetExceededError` the
        supervisor converts into a fallback instead of a crash.
        """
        sample, breaches = self.evaluate(
            cache_entries=cache_entries, queue_depth=queue_depth
        )
        hard = [b for b in breaches if b.level == LEVEL_HARD]
        if hard:
            raise BudgetExceededError(
                f"hard resource budget breached during {context}: "
                + "; ".join(breach.describe() for breach in hard),
                breaches=hard,
            )
        return sample, breaches
