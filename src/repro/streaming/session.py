"""Parse sessions: timed streaming runs with live mining integration.

A :class:`ParseSession` drives a :class:`~repro.streaming.engine.StreamingParser`
over a record stream and adds what the engine itself deliberately does
not track: wall-clock throughput, periodic progress reporting, and a
live session-by-event count matrix
(:class:`~repro.mining.event_matrix.EventMatrixAccumulator`) updated
the moment each line is assigned — so PCA anomaly detection can run on
a snapshot at any point without re-parsing the stream.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from collections.abc import Callable, Iterable

from repro.common.errors import ValidationError

from repro.common.types import LogRecord, ParseResult
from repro.mining.event_matrix import EventCountMatrix, EventMatrixAccumulator
from repro.observability.report import format_stream_summary
from repro.observability.tracing import SPAN_PARSE_RUN
from repro.streaming.engine import StreamingCounters, StreamingParser


def _factory_name(factory) -> str:
    """Best-effort parser name for the run span's ``parser`` attribute.

    ``functools.partial`` wrappers (the CLI's idiom) would otherwise
    stringify as ``partial``; reach through to the bound parser name
    when one is visible in the partial's arguments.
    """
    bound_args = getattr(factory, "args", None)
    if bound_args and isinstance(bound_args[0], str):
        return bound_args[0]
    inner = getattr(factory, "func", factory)
    return getattr(inner, "__name__", type(factory).__name__)


@dataclass(frozen=True)
class SessionCounters:
    """Engine counters plus wall-clock throughput."""

    stream: StreamingCounters
    elapsed_seconds: float

    @property
    def lines_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.stream.lines / self.elapsed_seconds

    def describe(self) -> str:
        """One human-readable progress line (used by the CLI).

        Delegates to the shared observability formatter so this line
        and registry-derived summaries cannot drift apart.
        """
        s = self.stream
        return format_stream_summary(
            lines=s.lines,
            events=s.events,
            exact_hits=s.exact_hits,
            template_hits=s.template_hits,
            misses=s.misses,
            flushes=s.flushes,
            lines_per_second=self.lines_per_second,
            rejected=s.rejected,
            shed=s.shed,
        )


class ParseSession:
    """One streaming parse run: engine + clock + live event matrix.

    Args:
        parser: the streaming engine to drive.  Its ``on_assign`` /
            ``on_remap`` hooks are claimed by the session.
        track_matrix: maintain a live
            :class:`EventMatrixAccumulator` keyed by each record's
            ``session_id`` (records without one are skipped, as in
            :func:`~repro.mining.event_matrix.build_event_matrix`).
    """

    def __init__(
        self, parser: StreamingParser, track_matrix: bool = True
    ) -> None:
        self.parser = parser
        self.accumulator = EventMatrixAccumulator() if track_matrix else None
        self._started: float | None = None
        self._elapsed = 0.0
        self.telemetry = parser.telemetry
        self._run_span = None
        if self.telemetry is not None:
            self.telemetry.metrics.register_collector(self._collect_metrics)
        parser.on_assign = self._on_assign
        parser.on_remap = self._on_remap

    def _collect_metrics(self) -> None:
        self.telemetry.metrics.get("repro_run_elapsed_seconds").set(
            self._elapsed
        )

    # ------------------------------------------------------------------

    def _on_assign(self, line_no: int, record: LogRecord, slot: int) -> None:
        if self.accumulator is not None and record.session_id:
            self.accumulator.add(record.session_id, slot)

    def _on_remap(self, old_slot: int, new_slot: int) -> None:
        if self.accumulator is not None:
            self.accumulator.remap(old_slot, new_slot)

    # ------------------------------------------------------------------

    def feed(self, record: LogRecord) -> int:
        if self._started is None:
            self._started = time.perf_counter()
            if self.telemetry is not None:
                self._run_span = self.telemetry.tracer.start(
                    SPAN_PARSE_RUN, parser=_factory_name(self.parser.factory)
                )
        line_no = self.parser.feed(record)
        self._elapsed = time.perf_counter() - self._started
        return line_no

    def consume(
        self,
        records: Iterable[LogRecord],
        report_every: int | None = None,
        report: Callable[[SessionCounters], None] | None = None,
    ) -> None:
        """Feed a whole stream, optionally reporting progress.

        ``report`` (default: print the counters' describe line) fires
        after every ``report_every`` lines.
        """
        if report is None:
            report = lambda counters: print(counters.describe())  # noqa: E731
        for record in records:
            line_no = self.feed(record)
            if report_every and (line_no + 1) % report_every == 0:
                report(self.counters())
        return None

    def finalize(self) -> ParseResult | None:
        """Flush everything; returns the ParseResult in retained mode."""
        if self._started is None:
            self._started = time.perf_counter()
        self.parser.finalize()
        self._elapsed = time.perf_counter() - self._started
        if self._run_span is not None:
            counters = self.parser.counters
            self._run_span.attrs["lines"] = counters.lines
            self._run_span.attrs["events"] = counters.events
            self.telemetry.tracer.finish(self._run_span)
            self._run_span = None
        if self.parser.retain:
            return self.parser.result()
        return None

    # ------------------------------------------------------------------

    def counters(self) -> SessionCounters:
        return SessionCounters(
            stream=self.parser.counters, elapsed_seconds=self._elapsed
        )

    def snapshot(self) -> ParseResult:
        """The incremental ParseResult right now (retained mode).

        Lines still buffered appear with the ``PENDING`` pseudo event
        id; :meth:`finalize` resolves them.
        """
        return self.parser.result()

    def matrix(self) -> EventCountMatrix:
        """Materialize the live session-by-event count matrix.

        Under the prefix flush policy each flush rewrites history, so
        the matrix is rebuilt from the engine's current assignments
        rather than from the (now stale) live accumulator.
        """
        if self.accumulator is None:
            raise ValidationError("session was created with track_matrix=False")
        if self.parser.flush_policy == "prefix":
            accumulator = EventMatrixAccumulator()
            for record, slot in self.parser.iter_assigned():
                if record.session_id:
                    accumulator.add(record.session_id, slot)
            return accumulator.build(self.parser.event_label)
        return self.accumulator.build(self.parser.event_label)
