"""The incremental parse engine: cache hits stream, misses batch-flush.

:class:`StreamingParser` consumes :class:`~repro.common.types.LogRecord`
streams one record at a time.  Each line is first matched against the
:class:`~repro.streaming.cache.TemplateCache`; a hit assigns the line
immediately in O(tokens).  Misses accumulate in a bounded buffer and,
once ``flush_size`` of them are waiting, are parsed together by the
wrapped *batch* parser (any parser from
:mod:`repro.parsers.registry`, or a
:class:`~repro.parsers.parallel.ChunkedParallelParser` over it when
``workers > 1``).  Templates the flush discovers are merged back into
the cache, so the next occurrence of each event is a cache hit.

Two flush policies trade fidelity against cost, mirroring the
exact/approximate split already documented for
:class:`~repro.parsers.parallel.ChunkedParallelParser`:

* ``flush_policy="delta"`` (production) parses **only the buffered
  misses**.  Flush cost is O(misses), and with ``retain=False`` the
  cache and miss buffer are the only per-line state, so memory stays
  bounded no matter how long the stream runs.  The result *converges
  toward* the batch result — helped by outlier retry (lines a flush
  refuses to cluster are re-buffered and re-flushed with later misses,
  up to ``max_flush_retries``) and subsumption merge (a flush-learned
  template that strictly generalizes an earlier one absorbs it, and
  previous assignments are remapped) — but the paper's parsers are
  global algorithms whose decisions depend on corpus-wide frequencies
  (SLCT's support, IPLoM's partition goodness, LKE's estimated
  threshold), so delta streaming is approximate by nature, exactly
  like every online parser in the literature.
* ``flush_policy="prefix"`` (certified) re-parses the **entire
  retained prefix** on every flush and replaces the model and all
  per-line assignments with that authoritative result, so after
  :meth:`finalize` the engine's output is *identical* to one batch
  ``parse()`` over the whole stream — template set, event numbering
  and per-line assignments — which is the property
  :mod:`repro.streaming.equivalence` certifies.  The cache still earns
  its keep: it absorbs repetitive lines so flushes fire only on
  novelty, bounding how often the O(prefix) re-parse runs.  Requires
  ``retain=True``.

The engine's per-event state (the *slot table*) is permanent and small
— one entry per distinct template string ever learned — so an evicted
template re-learned later maps back to its original slot and event.
"""

from __future__ import annotations

import threading
import time
from collections import Counter
from dataclasses import dataclass
from collections.abc import Callable, Iterable, Sequence

from repro.common.errors import (
    CheckpointError,
    ConcurrencyError,
    ParserConfigurationError,
)
from repro.common.tokenize import render_template, tokenize
from repro.common.types import EventTemplate, LogRecord, ParseResult
from repro.observability.tracing import SPAN_CHUNK, SPAN_PARSER_CALL
from repro.parsers.base import LogParser
from repro.parsers.parallel import ChunkedParallelParser, ParserFactory
from repro.parsers.preprocess import Preprocessor
from repro.resilience.quarantine import (
    ErrorPolicy,
    QuarantineSink,
    REASON_PARSE_FAILURE,
    is_clean_content,
)
from repro.streaming.cache import TemplateCache

#: Internal slot markers for lines not (yet) assigned to an event.
OUTLIER_SLOT = -1
PENDING_SLOT = -2

#: Event id reported in snapshots for lines still awaiting a flush.
PENDING_EVENT_ID = "PENDING"

#: Overflow modes for bounded ingest (``max_pending``).
OVERFLOW_MODES = ("block", "shed", "sample")


def _single_writer(method):
    """Enforce the engine's single-writer ownership contract.

    The engine and its :class:`~repro.streaming.cache.TemplateCache`
    are deliberately lock-free: exactly one thread may mutate a given
    engine at a time (the service layer serializes per tenant shard).
    This decorator is the enforcement half — a cheap, best-effort
    tripwire that raises :class:`~repro.common.errors.ConcurrencyError`
    when a second thread enters ``feed``/``flush``/``finalize``/
    ``reconfigure`` while another thread is still inside.  Same-thread
    reentrancy (``feed`` → ``flush``) is allowed via depth counting.
    It is a detector, not a lock: two perfectly interleaved writers can
    slip past it, which is why the contract is ownership, not locking.
    """

    def wrapper(self, *args, **kwargs):
        me = threading.get_ident()
        owner = self._busy_thread
        if owner is not None and owner != me:
            raise ConcurrencyError(
                f"StreamingParser.{method.__name__} called from thread "
                f"{me} while thread {owner} is inside the engine; "
                "engines are single-writer — give each thread its own "
                "engine or serialize access (as TenantShard does)"
            )
        self._busy_thread = me
        self._busy_depth += 1
        try:
            return method(self, *args, **kwargs)
        finally:
            self._busy_depth -= 1
            if self._busy_depth <= 0:
                self._busy_depth = 0
                self._busy_thread = None

    wrapper.__name__ = method.__name__
    wrapper.__qualname__ = method.__qualname__
    wrapper.__doc__ = method.__doc__
    return wrapper


@dataclass
class _Pending:
    """One buffered cache miss awaiting a flush."""

    line_no: int
    record: LogRecord
    flush_record: LogRecord
    tokens: tuple[str, ...]
    tries: int = 0


@dataclass(frozen=True)
class StreamingCounters:
    """Per-stage counters of one streaming parse."""

    lines: int
    exact_hits: int
    template_hits: int
    misses: int
    flushes: int
    evictions: int
    outliers: int
    pending: int
    events: int
    rejected: int = 0
    shed: int = 0

    @property
    def hits(self) -> int:
        return self.exact_hits + self.template_hits

    @property
    def hit_rate(self) -> float:
        seen = self.hits + self.misses
        return self.hits / seen if seen else 0.0


class StreamingParser(LogParser):
    """Incremental parser: template-cache fast path + batched flushes.

    Args:
        factory: zero-argument callable building the batch parser used
            to cluster flushed cache misses (must be picklable when
            ``workers > 1``).
        flush_policy: ``"delta"`` flushes only the buffered misses
            (fast, approximate); ``"prefix"`` re-parses the whole
            retained prefix on each flush, making the finalized result
            identical to a single batch parse (requires ``retain``).
        flush_size: cache misses buffered before a flush is forced.
        cache_capacity: LRU capacity of the template cache.
        exact_capacity: LRU capacity of the exact-signature memo.
        max_flush_retries: how many flushes a line may go through
            before it is declared a permanent outlier.
        workers: when > 1, flushes run through a
            :class:`ChunkedParallelParser` over *factory* with this
            many worker processes.
        chunk_size: chunk size of the parallel flush backend.
        retain: keep records and per-line assignments so
            :meth:`result` can build a full
            :class:`~repro.common.types.ParseResult`.  ``False`` keeps
            only per-event counts — bounded memory for arbitrarily
            long streams.
        preprocessor: optional domain-knowledge preprocessing, applied
            once per line before cache matching *and* flushing (do not
            also give one to the factory's parser).
        error_policy: per-record fault handling — ``None`` (default)
            preserves the historical behavior (a crashing preprocessor
            propagates, dirty content flows through); ``"raise"`` /
            ``"skip"`` / ``"quarantine"`` (or an
            :class:`~repro.resilience.quarantine.ErrorPolicy`) screens
            every record: undecodable/unprintable or oversized content
            and preprocessor crashes are handled per the policy and
            the record never enters the stream (``feed`` returns -1).
        quarantine: sink receiving rejected records under the
            ``quarantine`` policy (in-memory sink by default).
        max_record_len: content length cap enforced by the screen
            (``None`` = no cap).
        max_pending: backpressure bound on the miss buffer.  ``None``
            (default) keeps the historical unbounded-producer behavior;
            otherwise a cache miss arriving while ``max_pending``
            misses are already buffered is handled per *overflow*, so a
            producer can never outrun the flush parser without the
            engine noticing.
        overflow: what to do with a miss that hits the ``max_pending``
            bound — ``"block"`` flushes the buffer synchronously before
            admitting the line (the producer pays the flush latency,
            memory stays bounded); ``"shed"`` drops the line (counted
            in ``counters.shed``, ``feed`` returns -1); ``"sample"``
            admits every ``overflow_sample_keep``-th overflowing miss
            and sheds the rest, preserving a census of novel lines
            under sustained overload.
        overflow_sample_keep: with ``overflow="sample"``, admit one of
            every this-many overflowing misses.
        on_assign: callback ``(line_no, record, slot)`` fired when a
            line first receives an event slot (``OUTLIER_SLOT`` for
            permanent outliers).
        on_remap: callback ``(old_slot, new_slot)`` fired when a
            subsumption merge folds one event into another.
        source_label: the ``source`` stamped on quarantine records the
            screen rejects — multi-tenant callers set it to the
            tenant's identity so quarantined garbage keeps provenance.
        telemetry: optional
            :class:`~repro.observability.telemetry.Telemetry` handle.
            When set, the engine registers a metrics collector syncing
            its counters (lines, flushes, cache hits/misses/evictions,
            outliers, backpressure) into the registry, records a
            ``chunk`` span plus latency/size histograms per flush, and
            threads the handle into the cache and any parallel flush
            backend.  The default ``None`` keeps the per-line fast
            path untouched — flushes pay one ``is None`` check.
    """

    name = "Streaming"

    def __init__(
        self,
        factory: ParserFactory,
        *,
        flush_policy: str = "delta",
        flush_size: int = 512,
        cache_capacity: int = 4096,
        exact_capacity: int = 8192,
        max_flush_retries: int = 3,
        workers: int = 1,
        chunk_size: int = 10_000,
        retain: bool = True,
        preprocessor: Preprocessor | None = None,
        error_policy: ErrorPolicy | str | None = None,
        quarantine: QuarantineSink | None = None,
        max_record_len: int | None = None,
        max_pending: int | None = None,
        overflow: str = "block",
        overflow_sample_keep: int = 2,
        on_assign: Callable[[int, LogRecord, int], None] | None = None,
        on_remap: Callable[[int, int], None] | None = None,
        source_label: str = "<stream>",
        telemetry=None,
    ) -> None:
        super().__init__(preprocessor=preprocessor)
        if flush_size < 1:
            raise ParserConfigurationError(
                f"flush_size must be >= 1, got {flush_size}"
            )
        if max_flush_retries < 1:
            raise ParserConfigurationError(
                f"max_flush_retries must be >= 1, got {max_flush_retries}"
            )
        if flush_policy not in ("delta", "prefix"):
            raise ParserConfigurationError(
                f"flush_policy must be 'delta' or 'prefix', got {flush_policy!r}"
            )
        if flush_policy == "prefix" and not retain:
            raise ParserConfigurationError(
                "flush_policy='prefix' re-parses the retained prefix and "
                "therefore requires retain=True"
            )
        if overflow not in OVERFLOW_MODES:
            raise ParserConfigurationError(
                f"overflow must be one of {OVERFLOW_MODES}, got {overflow!r}"
            )
        if max_pending is not None and max_pending < 1:
            raise ParserConfigurationError(
                f"max_pending must be >= 1, got {max_pending}"
            )
        if overflow_sample_keep < 1:
            raise ParserConfigurationError(
                f"overflow_sample_keep must be >= 1, got {overflow_sample_keep}"
            )
        self.factory = factory
        self.flush_policy = flush_policy
        self.flush_size = flush_size
        self.cache_capacity = cache_capacity
        self.exact_capacity = exact_capacity
        self.max_flush_retries = max_flush_retries
        self.workers = workers
        self.chunk_size = chunk_size
        self.retain = retain
        self.error_policy = (
            ErrorPolicy.coerce(error_policy, sink=quarantine)
            if error_policy is not None
            else None
        )
        self.max_record_len = max_record_len
        self.max_pending = max_pending
        self.overflow = overflow
        self.overflow_sample_keep = overflow_sample_keep
        self.on_assign = on_assign
        self.on_remap = on_remap
        self.source_label = source_label
        self.telemetry = telemetry
        #: Single-writer tripwire state (see :func:`_single_writer`).
        self._busy_thread: int | None = None
        self._busy_depth = 0
        if workers > 1:
            self._flush_parser: LogParser = ChunkedParallelParser(
                factory,
                chunk_size=chunk_size,
                workers=workers,
                telemetry=telemetry,
            )
        else:
            self._flush_parser = factory()
        if telemetry is not None:
            telemetry.metrics.register_collector(self._collect_metrics)
        self.reset()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def reset(self) -> None:
        """Forget all stream state (slot table, cache, buffers)."""
        self.cache = TemplateCache(
            capacity=self.cache_capacity,
            exact_capacity=self.exact_capacity,
            telemetry=self.telemetry,
        )
        self._slot_templates: list[str] = []
        self._template_to_slot: dict[str, int] = {}
        self._redirect: dict[int, int] = {}
        self._pending: list[_Pending] = []
        self._n_lines = 0
        self._flushes = 0
        self._outliers = 0
        self._records: list[LogRecord] = []
        self._assignments: list[int] = []
        self._slot_counts: Counter[int] = Counter()
        #: prefix policy: preprocessed records for the full re-parse.
        self._flush_records: list[LogRecord] = []
        #: prefix policy: slots of the latest authoritative result, in
        #: its event order (None before the first flush).
        self._active_slots: list[int] | None = None
        self._lines_since_flush = 0
        self._fed = 0
        self._rejected = 0
        self._shed = 0
        self._overflowed = 0

    @property
    def counters(self) -> StreamingCounters:
        return StreamingCounters(
            lines=self._n_lines,
            exact_hits=self.cache.exact_hits,
            template_hits=self.cache.template_hits,
            misses=self.cache.misses,
            flushes=self._flushes,
            evictions=self.cache.evictions,
            outliers=self._outliers,
            pending=len(self._pending),
            events=self.n_events,
            rejected=self._rejected,
            shed=self._shed,
        )

    @property
    def n_events(self) -> int:
        """Distinct live events discovered so far (merges collapsed)."""
        if self.flush_policy == "prefix":
            return len(self._active_slots or ())
        return len(self._slot_templates) - len(self._redirect)

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    # ------------------------------------------------------------------
    # Streaming interface
    # ------------------------------------------------------------------

    @_single_writer
    def feed(self, record: LogRecord) -> int:
        """Consume one record; returns its line number in the stream.

        The line is assigned immediately on a cache hit; otherwise it
        joins the miss buffer (flushed automatically at
        ``flush_size``) and is assigned during a later flush.  With an
        ``error_policy`` configured, records failing the screen
        (unprintable/oversized content, crashing preprocessor) are
        handled per the policy and never enter the stream: ``feed``
        returns ``-1`` for them instead of a line number.  Likewise a
        miss shed by backpressure (``max_pending`` reached under the
        ``shed``/``sample`` overflow modes) returns ``-1`` and is
        counted in ``counters.shed``.
        """
        stream_index = self._fed
        self._fed += 1
        if self.error_policy is not None:
            try:
                content, flush_record = self._prepare(record)
            except Exception as error:  # noqa: BLE001 - policy-routed
                self._reject(
                    record,
                    stream_index,
                    REASON_PARSE_FAILURE,
                    f"{type(error).__name__}: {error}",
                    error,
                )
                return -1
            reason = is_clean_content(content, self.max_record_len)
            if reason is not None:
                self._reject(
                    record,
                    stream_index,
                    reason,
                    f"content of length {len(content)} rejected by screen",
                    None,
                )
                return -1
        else:
            content, flush_record = self._prepare(record)
        tokens = tuple(tokenize(content))
        slot = self.cache.match(tokens)
        if (
            slot is None
            and self.max_pending is not None
            and len(self._pending) >= self.max_pending
        ):
            # Backpressure: the miss buffer is full, so the producer has
            # outrun the flush parser.  Block drains synchronously (the
            # producer pays the latency); shed/sample drop the line
            # before it enters any per-line state.
            if self.overflow == "block":
                self.flush()
            else:
                self._overflowed += 1
                admit = (
                    self.overflow == "sample"
                    and self._overflowed % self.overflow_sample_keep == 0
                )
                if not admit:
                    self._shed += 1
                    return -1
        line_no = self._n_lines
        self._n_lines += 1
        if self.retain:
            self._records.append(record)
            self._assignments.append(PENDING_SLOT)
        if self.flush_policy == "prefix":
            self._flush_records.append(flush_record)
        self._lines_since_flush += 1
        if slot is not None:
            self._assign(line_no, record, self._resolve(slot))
        else:
            self._pending.append(
                _Pending(
                    line_no=line_no,
                    record=record,
                    flush_record=flush_record,
                    tokens=tokens,
                )
            )
            if len(self._pending) >= self.flush_size:
                self.flush()
        return line_no

    def feed_many(self, records: Iterable[LogRecord]) -> None:
        for record in records:
            self.feed(record)

    @_single_writer
    def flush(self) -> None:
        """Run the batch parser now, on the policy's scope.

        Delta policy parses the buffered misses; prefix policy
        re-parses everything streamed so far and adopts that result
        wholesale.
        """
        if self.flush_policy == "prefix":
            if self._n_lines:
                self._flush_prefix()
            return
        if not self._pending:
            return
        batch = self._pending
        self._pending = []
        result = self._parse_flush(
            [entry.flush_record for entry in batch], scope="delta"
        )
        self._flushes += 1
        slot_of = {
            event.event_id: self._integrate_template(event.template)
            for event in result.events
        }
        for entry, event_id in zip(batch, result.assignments):
            if event_id != ParseResult.OUTLIER_EVENT_ID:
                slot = self._resolve(slot_of[event_id])
                self.cache.remember_exact(" ".join(entry.tokens), slot)
                self._assign(entry.line_no, entry.record, slot)
                continue
            # Flush declined the line: maybe a template learned in this
            # very flush covers it now; otherwise retry or give up.
            entry.tries += 1
            slot = self.cache.match(entry.tokens)
            if slot is not None:
                self._assign(entry.line_no, entry.record, self._resolve(slot))
            elif entry.tries >= self.max_flush_retries:
                self._outliers += 1
                self._assign(entry.line_no, entry.record, OUTLIER_SLOT)
            else:
                self._pending.append(entry)

    def _flush_prefix(self) -> None:
        """Re-parse the full prefix; adopt its result as ground truth.

        Every flush-discovered template keeps (or gets) a permanent
        slot, and :attr:`_active_slots` records the authoritative
        result's event order so :meth:`result` reproduces the batch
        numbering exactly.  The cache is rebuilt to hold precisely the
        authoritative template set.
        """
        result = self._parse_flush(list(self._flush_records), scope="prefix")
        self._flushes += 1
        self._pending = []
        self._lines_since_flush = 0
        slot_of: dict[str, int] = {}
        active: list[int] = []
        for event in result.events:
            slot = self._template_to_slot.get(event.template)
            if slot is None:
                slot = len(self._slot_templates)
                self._slot_templates.append(event.template)
                self._template_to_slot[event.template] = slot
            slot_of[event.event_id] = slot
            if slot not in active:
                active.append(slot)
        self._active_slots = active
        self._slot_counts = Counter()
        self._outliers = 0
        assignments: list[int] = []
        for event_id in result.assignments:
            if event_id == ParseResult.OUTLIER_EVENT_ID:
                slot = OUTLIER_SLOT
                self._outliers += 1
            else:
                slot = slot_of[event_id]
            assignments.append(slot)
            self._slot_counts[slot] += 1
        self._assignments = assignments
        self.cache.clear_templates()
        for slot in active:
            self.cache.insert(
                slot, tuple(tokenize(self._slot_templates[slot]))
            )

    @_single_writer
    def finalize(self) -> None:
        """Flush until every streamed line has its final assignment.

        Prefix policy: one last full re-parse if anything arrived since
        the previous flush, which is what makes the finalized result
        identical to batch parsing.  Delta policy: flush (with retries)
        until the miss buffer drains.
        """
        if self.flush_policy == "prefix":
            if self._pending or self._lines_since_flush:
                self.flush()
            return
        while self._pending:
            self.flush()

    # ------------------------------------------------------------------
    # Live reconfiguration (graceful degradation)
    # ------------------------------------------------------------------

    @_single_writer
    def reconfigure(
        self,
        factory: ParserFactory | None = None,
        *,
        flush_size: int | None = None,
        cache_capacity: int | None = None,
        max_pending: int | None = None,
        overflow: str | None = None,
    ) -> dict:
        """Swap the flush parser and/or shrink parameters mid-stream.

        The degradation runtime's step-down hook: the slot table,
        per-line assignments, and already-cached templates all survive
        untouched — only the machinery for *future* flushes changes, so
        a downgrade can never corrupt what was already parsed.  Returns
        a dict of the changes applied (old -> new), which the ladder
        records as the :class:`DegradationEvent`'s actions.
        """
        applied: dict = {}
        if factory is not None:
            self.factory = factory
            if self.workers > 1:
                self._flush_parser = ChunkedParallelParser(
                    factory,
                    chunk_size=self.chunk_size,
                    workers=self.workers,
                    telemetry=self.telemetry,
                )
            else:
                self._flush_parser = factory()
            applied["flush_parser"] = getattr(
                self._flush_parser, "name", type(self._flush_parser).__name__
            )
        if flush_size is not None:
            if flush_size < 1:
                raise ParserConfigurationError(
                    f"flush_size must be >= 1, got {flush_size}"
                )
            applied["flush_size"] = (self.flush_size, flush_size)
            self.flush_size = flush_size
            if (
                self.flush_policy == "delta"
                and len(self._pending) >= self.flush_size
            ):
                self.flush()
        if cache_capacity is not None:
            applied["cache_capacity"] = (self.cache_capacity, cache_capacity)
            self.cache_capacity = cache_capacity
            self.cache.resize(cache_capacity)
        if max_pending is not None:
            if max_pending < 1:
                raise ParserConfigurationError(
                    f"max_pending must be >= 1, got {max_pending}"
                )
            applied["max_pending"] = (self.max_pending, max_pending)
            self.max_pending = max_pending
        if overflow is not None:
            if overflow not in OVERFLOW_MODES:
                raise ParserConfigurationError(
                    f"overflow must be one of {OVERFLOW_MODES}, got {overflow!r}"
                )
            applied["overflow"] = (self.overflow, overflow)
            self.overflow = overflow
        return applied

    # ------------------------------------------------------------------
    # Batch-contract interface
    # ------------------------------------------------------------------

    def parse(self, records: Sequence[LogRecord]) -> ParseResult:
        """One-shot contract of §II-C: stream *records* and finalize.

        Resets any previous stream state first, so a StreamingParser
        can be reused like any batch parser.
        """
        if not self.retain:
            raise ParserConfigurationError(
                "parse() needs retain=True (unretained engines do not "
                "keep per-line assignments)"
            )
        self.reset()
        self.feed_many(records)
        self.finalize()
        return self.result()

    def _cluster(self, token_lists):  # pragma: no cover - parse() overridden
        raise NotImplementedError("StreamingParser overrides parse() directly")

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def _live_slots(self) -> list[int]:
        """Slots backing current events, in event-numbering order.

        Prefix policy uses the latest authoritative result's own event
        order (so numbering matches batch output); delta policy uses
        discovery order with merged slots collapsed.
        """
        if self.flush_policy == "prefix":
            return list(self._active_slots or ())
        return [
            slot
            for slot in range(len(self._slot_templates))
            if slot not in self._redirect
        ]

    def event_ids(self) -> dict[int, str]:
        """Map live slots to their final ``E<n>`` event ids."""
        return {
            slot: f"E{index + 1}"
            for index, slot in enumerate(self._live_slots())
        }

    def events(self) -> list[EventTemplate]:
        """The current event table, in event-numbering order."""
        ids = self.event_ids()
        return [
            EventTemplate(event_id=ids[slot], template=self._slot_templates[slot])
            for slot in self._live_slots()
        ]

    def iter_assigned(self) -> Iterable[tuple[LogRecord, int]]:
        """Yield ``(record, slot)`` for every already-assigned line.

        Lines still pending a flush are skipped.  Requires
        ``retain=True``; used to rebuild live mining state after a
        prefix flush rewrites history.
        """
        if not self.retain:
            raise ParserConfigurationError(
                "iter_assigned() needs retain=True"
            )
        for record, slot in zip(self._records, self._assignments):
            if slot != PENDING_SLOT:
                yield record, slot

    def event_label(self, slot: int) -> str:
        """Final event id for *slot* (outlier/pending markers included)."""
        if slot == OUTLIER_SLOT:
            return ParseResult.OUTLIER_EVENT_ID
        if slot == PENDING_SLOT:
            return PENDING_EVENT_ID
        return self.event_ids()[self._resolve(slot)]

    def result(self) -> ParseResult:
        """Build the ParseResult over everything streamed so far.

        Lines still in the miss buffer are reported as
        :data:`PENDING_EVENT_ID`; call :meth:`finalize` first for a
        final result.  Requires ``retain=True``.
        """
        if not self.retain:
            raise ParserConfigurationError(
                "result() needs retain=True; use counters/event streams "
                "in unretained mode"
            )
        ids = self.event_ids()
        events = [
            EventTemplate(event_id=ids[slot], template=self._slot_templates[slot])
            for slot in self._live_slots()
        ]
        assignments = []
        for slot in self._assignments:
            if slot == OUTLIER_SLOT:
                assignments.append(ParseResult.OUTLIER_EVENT_ID)
            elif slot == PENDING_SLOT:
                assignments.append(PENDING_EVENT_ID)
            else:
                assignments.append(ids[self._resolve(slot)])
        return ParseResult(
            events=events,
            assignments=assignments,
            records=list(self._records),
        )

    def event_counts(self) -> dict[str, int]:
        """Lines per final event id (works in unretained mode too)."""
        counts: Counter[str] = Counter()
        for slot, count in self._slot_counts.items():
            counts[self.event_label(slot)] += count
        return dict(counts)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def checkpoint_config(self) -> dict:
        """The constructor parameters a resuming engine must match.

        Code-valued parameters (factory, preprocessor, callbacks) are
        deliberately absent — they cannot be serialized safely, so the
        resumer must supply equivalent ones; see
        :mod:`repro.resilience.checkpoint`.
        """
        return {
            "flush_policy": self.flush_policy,
            "flush_size": self.flush_size,
            "cache_capacity": self.cache_capacity,
            "exact_capacity": self.exact_capacity,
            "max_flush_retries": self.max_flush_retries,
            "retain": self.retain,
            "max_pending": self.max_pending,
            "overflow": self.overflow,
        }

    def checkpoint_state(self) -> dict:
        """JSON-ready snapshot of the entire mutable stream state.

        Everything :meth:`reset` initializes is captured — slot table,
        redirects, miss buffer, per-line assignments, retained
        records, cache (in LRU order), and counters — so an engine
        restored from this snapshot continues the stream exactly where
        this one stands and finalizes to the identical result.
        """
        return {
            "config": self.checkpoint_config(),
            "slot_templates": list(self._slot_templates),
            "template_to_slot": dict(self._template_to_slot),
            "redirect": [[old, new] for old, new in self._redirect.items()],
            "pending": [
                {
                    "line_no": entry.line_no,
                    "tries": entry.tries,
                    "record": entry.record.to_dict(),
                    "flush_record": entry.flush_record.to_dict(),
                    "tokens": list(entry.tokens),
                }
                for entry in self._pending
            ],
            "n_lines": self._n_lines,
            "flushes": self._flushes,
            "outliers": self._outliers,
            "fed": self._fed,
            "rejected": self._rejected,
            "shed": self._shed,
            "overflowed": self._overflowed,
            "records": [record.to_dict() for record in self._records],
            "assignments": list(self._assignments),
            "slot_counts": [
                [slot, count] for slot, count in self._slot_counts.items()
            ],
            "flush_records": [
                record.to_dict() for record in self._flush_records
            ],
            "active_slots": (
                list(self._active_slots)
                if self._active_slots is not None
                else None
            ),
            "lines_since_flush": self._lines_since_flush,
            "cache": self.cache.state(),
        }

    def restore_state(self, state: dict) -> None:
        """Adopt a :meth:`checkpoint_state` snapshot wholesale.

        The engine must have been constructed with the same
        configuration the snapshot records (the factory and
        preprocessor are the caller's responsibility); a mismatch
        raises :class:`~repro.common.errors.CheckpointError` because a
        silently different configuration would break the resumed
        stream's equivalence guarantee.
        """
        config = self.checkpoint_config()
        saved = state["config"]
        if config != saved:
            diffs = ", ".join(
                f"{key}: saved={saved.get(key)!r} engine={config[key]!r}"
                for key in sorted(set(config) | set(saved))
                if config.get(key) != saved.get(key)
            )
            raise CheckpointError(
                f"engine configuration does not match checkpoint ({diffs})"
            )
        self._slot_templates = list(state["slot_templates"])
        self._template_to_slot = {
            template: int(slot)
            for template, slot in state["template_to_slot"].items()
        }
        self._redirect = {
            int(old): int(new) for old, new in state["redirect"]
        }
        self._pending = [
            _Pending(
                line_no=entry["line_no"],
                record=LogRecord.from_dict(entry["record"]),
                flush_record=LogRecord.from_dict(entry["flush_record"]),
                tokens=tuple(entry["tokens"]),
                tries=entry["tries"],
            )
            for entry in state["pending"]
        ]
        self._n_lines = state["n_lines"]
        self._flushes = state["flushes"]
        self._outliers = state["outliers"]
        self._fed = state["fed"]
        self._rejected = state["rejected"]
        self._shed = state.get("shed", 0)
        self._overflowed = state.get("overflowed", 0)
        self._records = [
            LogRecord.from_dict(record) for record in state["records"]
        ]
        self._assignments = list(state["assignments"])
        self._slot_counts = Counter(
            {int(slot): count for slot, count in state["slot_counts"]}
        )
        self._flush_records = [
            LogRecord.from_dict(record) for record in state["flush_records"]
        ]
        self._active_slots = (
            list(state["active_slots"])
            if state["active_slots"] is not None
            else None
        )
        self._lines_since_flush = state["lines_since_flush"]
        self.cache.restore(state["cache"])

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _parse_flush(self, records: list[LogRecord], scope: str) -> ParseResult:
        """Run the flush parser, recording the chunk when instrumented.

        Each flush is one ``chunk`` span; the parser invocation inside
        is a ``parser_call`` span — except when the flush backend is a
        telemetry-carrying :class:`ChunkedParallelParser`, which emits
        its own per-dispatch ``parser_call`` spans (worker-side, shipped
        back across the process boundary) under this chunk.
        """
        if self.telemetry is None:
            return self._flush_parser.parse(records)
        tracer = self.telemetry.tracer
        started = time.perf_counter()
        with tracer.span(
            SPAN_CHUNK, scope=scope, size=len(records), flush=self._flushes + 1
        ):
            if isinstance(self._flush_parser, ChunkedParallelParser):
                result = self._flush_parser.parse(records)
            else:
                with tracer.span(
                    SPAN_PARSER_CALL,
                    parser=getattr(
                        self._flush_parser,
                        "name",
                        type(self._flush_parser).__name__,
                    ),
                    records=len(records),
                ):
                    result = self._flush_parser.parse(records)
        elapsed = time.perf_counter() - started
        metrics = self.telemetry.metrics
        metrics.get("repro_stream_flush_seconds").observe(elapsed)
        metrics.get("repro_stream_flush_size_records").observe(len(records))
        return result

    def _collect_metrics(self) -> None:
        """Sync the engine's own counters into the metrics registry.

        Collector pattern: the hot path keeps its existing plain-int
        counters as the source of truth; this runs only when the
        registry is read (export, snapshot, summary), so instrumenting
        costs the fast path nothing.
        """
        metrics = self.telemetry.metrics
        metrics.get("repro_stream_lines_total").sync(self._n_lines)
        metrics.get("repro_stream_flushes_total").sync(self._flushes)
        metrics.get("repro_stream_outliers_total").sync(self._outliers)
        metrics.get("repro_stream_rejected_total").sync(self._rejected)
        metrics.get("repro_stream_shed_total").sync(self._shed)
        metrics.get("repro_stream_events").set(self.n_events)
        metrics.get("repro_stream_pending").set(len(self._pending))
        hits = metrics.get("repro_cache_hits_total")
        hits.labels(kind="exact").sync(self.cache.exact_hits)
        hits.labels(kind="template").sync(self.cache.template_hits)
        metrics.get("repro_cache_misses_total").sync(self.cache.misses)
        metrics.get("repro_cache_evictions_total").sync(self.cache.evictions)

    def _prepare(self, record: LogRecord) -> tuple[str, LogRecord]:
        """Preprocessed content + the record handed to flushes."""
        if self.preprocessor is None:
            return record.content, record
        content = self.preprocessor(record.content)
        return content, LogRecord(
            content=content,
            timestamp=record.timestamp,
            session_id=record.session_id,
            truth_event=record.truth_event,
        )

    def _reject(
        self,
        record: LogRecord,
        stream_index: int,
        reason: str,
        detail: str,
        error: Exception | None,
    ) -> None:
        """Route one screened-out record through the error policy."""
        self._rejected += 1
        assert self.error_policy is not None
        self.error_policy.handle(
            source=self.source_label,
            line_no=stream_index,
            byte_offset=-1,
            reason=reason,
            detail=detail,
            payload=record.content,
            error=error,
        )

    def _resolve(self, slot: int) -> int:
        """Follow (and compress) redirect chains from merged events."""
        root = slot
        while root in self._redirect:
            root = self._redirect[root]
        while slot in self._redirect and self._redirect[slot] != root:
            self._redirect[slot], slot = root, self._redirect[slot]
        return root

    def _assign(self, line_no: int, record: LogRecord, slot: int) -> None:
        if self.retain:
            self._assignments[line_no] = slot
        self._slot_counts[slot] += 1
        if self.on_assign is not None:
            self.on_assign(line_no, record, slot)

    def _integrate_template(self, template: str) -> int:
        """Fold one flush-discovered template into the slot table/cache.

        Exact re-discoveries reuse their permanent slot (that is what
        makes eviction harmless).  A template subsumed by a cached one
        maps onto the more general event; a template that strictly
        generalizes cached ones absorbs them via redirect.
        """
        existing = self._template_to_slot.get(template)
        if existing is not None:
            slot = self._resolve(existing)
            self.cache.insert(slot, tuple(tokenize(self._slot_templates[slot])))
            return slot
        tokens = tuple(tokenize(template))
        general = self.cache.find_generalizer(tokens)
        if general is not None:
            slot = self._resolve(general)
            self._template_to_slot[template] = slot
            return slot
        slot = len(self._slot_templates)
        self._slot_templates.append(render_template(tokens))
        self._template_to_slot[template] = slot
        for specific in self.cache.find_specializations(tokens):
            specific = self._resolve(specific)
            if specific != slot:
                self._merge_slots(specific, slot)
        self.cache.insert(slot, tokens)
        return slot

    def _merge_slots(self, old: int, new: int) -> None:
        self._redirect[old] = new
        self.cache.remove(old)
        self._slot_counts[new] += self._slot_counts.pop(old, 0)
        if self.on_remap is not None:
            self.on_remap(old, new)
