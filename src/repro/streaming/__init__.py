"""Streaming log parsing: bounded-memory ingestion over batch parsers.

The paper's Finding 3 is that clustering-based parsers do not scale
with log volume, and §V names parallelization as the remedy.  This
package supplies the complementary production answer — *incremental*
parsing: a :class:`TemplateCache` answers repeat lines in O(tokens), a
:class:`StreamingParser` batches the rare cache misses through any
registered batch parser (optionally the chunked parallel backend), and
a :class:`ParseSession` exposes live snapshots, throughput counters,
and an incrementally maintained event count matrix for log mining.

Two flush policies are offered: ``delta`` (parse only the buffered
misses — O(misses) per flush, bounded memory, approximate) and
``prefix`` (re-parse the retained prefix — the finalized result is
identical to one batch parse by construction).  The
:mod:`~repro.streaming.equivalence` harness certifies that identity —
same templates and per-line assignments as one batch parse — and, in
delta mode, measures how closely the fast path tracks it.
"""

from repro.streaming.cache import TemplateCache, subsumes
from repro.streaming.engine import (
    OUTLIER_SLOT,
    PENDING_EVENT_ID,
    StreamingCounters,
    StreamingParser,
)
from repro.streaming.equivalence import (
    EquivalenceReport,
    compare_stream_to_batch,
    diff_results,
    template_assignments,
)
from repro.streaming.session import ParseSession, SessionCounters

__all__ = [
    "TemplateCache",
    "subsumes",
    "OUTLIER_SLOT",
    "PENDING_EVENT_ID",
    "StreamingCounters",
    "StreamingParser",
    "EquivalenceReport",
    "compare_stream_to_batch",
    "diff_results",
    "template_assignments",
    "ParseSession",
    "SessionCounters",
]
