"""The template cache behind the streaming parse engine.

A :class:`TemplateCache` holds the *matchable working set* of discovered
templates, bounded by an LRU capacity, and answers "which known template
covers this line?" in roughly O(tokens):

* an **exact-match fast path** keyed on the line's tokenized signature
  (the single-space join of its tokens), so repeats of a literal message
  skip template matching entirely; and
* a **wildcard index** keyed on ``(token count, first token)`` — a
  template can only cover a line when the lengths agree and its first
  token is either the line's first token or the wildcard, so a lookup
  probes exactly two buckets.

The cache stores opaque integer *slots* (the engine's permanent event
table indices), never event ids: eviction forgets how to *match* a
template but the engine still remembers the event, so a re-learned
template maps back to the identical :class:`~repro.common.types.EventTemplate`.

Concurrency contract — **single-writer ownership, not locking**.  The
cache (like the engine holding it) is deliberately lock-free: ``match``
mutates LRU order, so even "reads" are writes, and a per-call lock
would tax the per-line fast path that makes streaming cheap.  Instead,
exactly one thread may touch a given cache at a time.  In-process that
is trivially true (one engine, one loop); the multi-tenant service
keeps it true by giving every tenant shard its own engine+cache behind
the shard's lock (:mod:`repro.service.shard`), and the engine's
``@_single_writer`` tripwire raises
:class:`~repro.common.errors.ConcurrencyError` on cross-thread entry.
Hot-path counters (``exact_hits``/``template_hits``/``misses``/
``evictions``) are plain ints under the same ownership rule; telemetry
reads them via a read-time collector, which may observe a value at
most one line stale — acceptable for metrics, never used for control
flow.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Sequence

from repro.common.errors import ParserConfigurationError
from repro.common.tokenize import is_wildcard

#: Bucket anchor used for templates whose first token is the wildcard.
_ANY = ""


def subsumes(general: Sequence[str], specific: Sequence[str]) -> bool:
    """True if every line matching *specific* also matches *general*.

    Both are template token sequences; *general* subsumes *specific*
    when the lengths agree and at every position *general* holds either
    the wildcard or exactly the token *specific* holds (a wildcard in
    *specific* therefore requires a wildcard in *general*).

    >>> subsumes(["open", "*", "*"], ["open", "file", "*"])
    True
    >>> subsumes(["open", "file", "*"], ["open", "*", "*"])
    False
    """
    if len(general) != len(specific):
        return False
    return all(
        is_wildcard(g) or g == s for g, s in zip(general, specific)
    )


class TemplateCache:
    """LRU-bounded template store with an exact-match fast path.

    Args:
        capacity: maximum number of templates held for matching; the
            least recently *used* (matched or re-inserted) template is
            evicted first.
        exact_capacity: maximum number of memoized exact line
            signatures (its own LRU, independent of the template LRU).

    Counters ``exact_hits``, ``template_hits``, ``misses`` and
    ``evictions`` are plain attributes; :attr:`hit_rate` derives from
    them.  They stay the source of truth even when *telemetry* is set:
    the engine's metrics collector syncs them into the registry at
    read time, so the per-lookup fast path carries no instrumentation.
    The telemetry handle itself is used only on the rare structural
    transitions (capacity resizes), which land on the event timeline.
    """

    def __init__(
        self,
        capacity: int = 4096,
        exact_capacity: int = 8192,
        telemetry=None,
    ) -> None:
        if capacity < 1:
            raise ParserConfigurationError(
                f"cache capacity must be >= 1, got {capacity}"
            )
        if exact_capacity < 0:
            raise ParserConfigurationError(
                f"exact_capacity must be >= 0, got {exact_capacity}"
            )
        self.capacity = capacity
        self.exact_capacity = exact_capacity
        self.telemetry = telemetry
        #: slot -> template tokens, in LRU order (least recent first).
        self._templates: OrderedDict[int, tuple[str, ...]] = OrderedDict()
        #: (length, anchor token) -> slots; anchor is ``_ANY`` for
        #: wildcard-first templates.
        self._buckets: dict[tuple[int, str], list[int]] = {}
        #: length -> slots (for subsumption scans).
        self._by_length: dict[int, list[int]] = {}
        #: tokenized signature -> slot (exact fast path, own LRU).
        self._exact: OrderedDict[str, int] = OrderedDict()
        self.exact_hits = 0
        self.template_hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._templates)

    def __contains__(self, slot: int) -> bool:
        return slot in self._templates

    @property
    def hits(self) -> int:
        return self.exact_hits + self.template_hits

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0 when idle)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def template_tokens(self, slot: int) -> tuple[str, ...]:
        return self._templates[slot]

    # ------------------------------------------------------------------

    @staticmethod
    def _anchor(tokens: Sequence[str]) -> str:
        return _ANY if not tokens or is_wildcard(tokens[0]) else tokens[0]

    def _candidate_slots(self, tokens: Sequence[str]) -> list[int]:
        """Slots whose templates could possibly cover *tokens*."""
        length = len(tokens)
        candidates = list(self._buckets.get((length, _ANY), ()))
        if tokens and not is_wildcard(tokens[0]):
            candidates.extend(self._buckets.get((length, tokens[0]), ()))
        return candidates

    def match(self, tokens: Sequence[str]) -> int | None:
        """Return the slot of the template covering *tokens*, or None.

        When several cached templates cover the line the most specific
        one (fewest wildcards) wins; ties go to the oldest slot, i.e.
        the template discovered first.  Hits refresh the winner's LRU
        position and memoize the line's exact signature.
        """
        signature = " ".join(tokens)
        slot = self._exact.get(signature)
        if slot is not None:
            self._exact.move_to_end(signature)
            # The slot's template may have been evicted or merged away;
            # the memoized assignment itself stays correct (the engine
            # resolves merged slots), so only refresh the LRU when the
            # template is still resident.
            if slot in self._templates:
                self._templates.move_to_end(slot)
            self.exact_hits += 1
            return slot
        best: int | None = None
        best_constants = -1
        for candidate in self._candidate_slots(tokens):
            template = self._templates[candidate]
            if not all(
                is_wildcard(t) or t == token
                for t, token in zip(template, tokens)
            ):
                continue
            constants = sum(1 for t in template if not is_wildcard(t))
            if constants > best_constants or (
                constants == best_constants
                and (best is None or candidate < best)
            ):
                best = candidate
                best_constants = constants
        if best is None:
            self.misses += 1
            return None
        self.template_hits += 1
        self._templates.move_to_end(best)
        self.remember_exact(signature, best)
        return best

    def remember_exact(self, signature: str, slot: int) -> None:
        """Memoize an exact line signature -> slot association."""
        if self.exact_capacity == 0:
            return
        self._exact[signature] = slot
        self._exact.move_to_end(signature)
        while len(self._exact) > self.exact_capacity:
            self._exact.popitem(last=False)

    # ------------------------------------------------------------------

    def insert(self, slot: int, tokens: Sequence[str]) -> None:
        """Admit (or refresh) a template; may evict the LRU entry."""
        if slot in self._templates:
            self._templates.move_to_end(slot)
            return
        tokens = tuple(tokens)
        self._templates[slot] = tokens
        self._buckets.setdefault(
            (len(tokens), self._anchor(tokens)), []
        ).append(slot)
        self._by_length.setdefault(len(tokens), []).append(slot)
        while len(self._templates) > self.capacity:
            victim, _ = self._templates.popitem(last=False)
            self._unindex(victim)
            self.evictions += 1

    def resize(self, capacity: int) -> None:
        """Change the template capacity, evicting LRU entries if needed.

        Shrinking is the degradation runtime's cheapest relief valve:
        the evicted templates remain valid events in the engine's
        permanent table, so a resize can never corrupt assignments —
        it only trades hit rate for memory.
        """
        if capacity < 1:
            raise ParserConfigurationError(
                f"cache capacity must be >= 1, got {capacity}"
            )
        previous = self.capacity
        self.capacity = capacity
        evicted = 0
        while len(self._templates) > self.capacity:
            victim, _ = self._templates.popitem(last=False)
            self._unindex(victim)
            self.evictions += 1
            evicted += 1
        if self.telemetry is not None and capacity != previous:
            direction = "shrink" if capacity < previous else "grow"
            self.telemetry.metrics.get("repro_cache_resizes_total").labels(
                direction=direction
            ).inc()
            self.telemetry.events.emit(
                "cache_resize",
                previous=previous,
                capacity=capacity,
                evicted=evicted,
            )

    def remove(self, slot: int) -> None:
        """Drop a template without counting an eviction (merges)."""
        if self._templates.pop(slot, None) is not None:
            self._unindex(slot)

    def clear_templates(self) -> None:
        """Forget every template and exact memo; counters survive.

        Used by the prefix flush policy, which replaces the whole
        working set with the authoritative template set of the latest
        full re-parse.
        """
        self._templates.clear()
        self._buckets.clear()
        self._by_length.clear()
        self._exact.clear()

    # ------------------------------------------------------------------

    def state(self) -> dict:
        """JSON-ready snapshot of the cache for checkpointing.

        Captures the template working set and exact memo *in LRU
        order* plus the hit counters, so a restored cache behaves
        identically — same residents, same next eviction victim.
        """
        return {
            "capacity": self.capacity,
            "exact_capacity": self.exact_capacity,
            "templates": [
                [slot, list(tokens)]
                for slot, tokens in self._templates.items()
            ],
            "exact": [[sig, slot] for sig, slot in self._exact.items()],
            "exact_hits": self.exact_hits,
            "template_hits": self.template_hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def restore(self, state: dict) -> None:
        """Rebuild this cache from a :meth:`state` snapshot."""
        self.clear_templates()
        for slot, tokens in state["templates"]:
            self.insert(int(slot), tuple(tokens))
        for signature, slot in state["exact"]:
            self.remember_exact(signature, int(slot))
        self.exact_hits = state["exact_hits"]
        self.template_hits = state["template_hits"]
        self.misses = state["misses"]
        self.evictions = state["evictions"]

    # ------------------------------------------------------------------

    def _unindex(self, slot: int) -> None:
        for index in (self._buckets, self._by_length):
            for key, slots in list(index.items()):
                if slot in slots:
                    slots.remove(slot)
                    if not slots:
                        del index[key]
        # Exact memos pointing at the slot are left in place: the slot
        # remains a valid event in the engine's permanent table, so a
        # stale memo still yields a correct assignment.

    # ------------------------------------------------------------------

    def find_generalizer(self, tokens: Sequence[str]) -> int | None:
        """A cached template that subsumes *tokens* (most general wins)."""
        best: int | None = None
        best_constants: int | None = None
        for candidate in self._candidate_slots(tokens):
            template = self._templates[candidate]
            if template == tuple(tokens) or not subsumes(template, tokens):
                continue
            constants = sum(1 for t in template if not is_wildcard(t))
            if best_constants is None or constants < best_constants:
                best = candidate
                best_constants = constants
        return best

    def find_specializations(self, tokens: Sequence[str]) -> list[int]:
        """Cached slots whose templates are strictly subsumed by *tokens*."""
        tokens = tuple(tokens)
        found = []
        for candidate in self._by_length.get(len(tokens), ()):
            template = self._templates[candidate]
            if template != tokens and subsumes(tokens, template):
                found.append(candidate)
        return found
