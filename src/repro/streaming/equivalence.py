"""Parser-equivalence harness: does streaming agree with batch?

The streaming engine is only trustworthy if feeding a dataset through
it line by line produces the *same parse* as handing the whole dataset
to the underlying batch parser at once — same template set, same
per-line event assignment.  This module makes that property checkable:

* :func:`template_assignments` canonicalizes a
  :class:`~repro.common.types.ParseResult` into per-line template
  strings, erasing the arbitrary ``E<n>`` numbering that legitimately
  differs between two parses of the same data;
* :func:`compare_stream_to_batch` runs both paths over the same
  records and returns an :class:`EquivalenceReport` with the template
  sets, the mismatching line indices, and an agreement ratio.

The report powers both ``tests/test_streaming_equivalence.py`` and the
CLI's ``repro stream --verify``.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.common.types import LogRecord, ParseResult
from repro.parsers.parallel import ParserFactory
from repro.streaming.engine import StreamingParser


def template_assignments(result: ParseResult) -> list[str]:
    """Per-line assigned *template string* (``OUTLIER`` kept verbatim).

    Comparing template strings instead of event ids makes two parses
    comparable even though each numbers its events independently.
    """
    by_id = {event.event_id: event.template for event in result.events}
    return [
        by_id.get(event_id, ParseResult.OUTLIER_EVENT_ID)
        for event_id in result.assignments
    ]


@dataclass(frozen=True)
class EquivalenceReport:
    """Outcome of one streaming-vs-batch comparison."""

    parser: str
    lines: int
    batch_templates: frozenset[str]
    stream_templates: frozenset[str]
    mismatched_lines: tuple[int, ...]

    @property
    def templates_equal(self) -> bool:
        return self.batch_templates == self.stream_templates

    @property
    def agreement(self) -> float:
        """Fraction of lines assigned identically (1.0 when empty)."""
        if not self.lines:
            return 1.0
        return 1.0 - len(self.mismatched_lines) / self.lines

    @property
    def equivalent(self) -> bool:
        return self.templates_equal and not self.mismatched_lines

    def describe(self) -> str:
        if self.equivalent:
            return (
                f"{self.parser}: streaming == batch on {self.lines} lines "
                f"({len(self.batch_templates)} templates)"
            )
        only_batch = sorted(self.batch_templates - self.stream_templates)
        only_stream = sorted(self.stream_templates - self.batch_templates)
        return (
            f"{self.parser}: {len(self.mismatched_lines)} of {self.lines} "
            f"lines disagree (agreement {self.agreement:.3%}); "
            f"templates only in batch: {only_batch[:5]}; "
            f"only in stream: {only_stream[:5]}"
        )


def diff_results(
    parser_name: str,
    batch: ParseResult,
    stream: ParseResult,
) -> EquivalenceReport:
    """Diff two canonicalized parses of the same record sequence."""
    batch_lines = template_assignments(batch)
    stream_lines = template_assignments(stream)
    mismatched = tuple(
        i
        for i, (a, b) in enumerate(zip(batch_lines, stream_lines))
        if a != b
    )
    return EquivalenceReport(
        parser=parser_name,
        lines=len(batch.records),
        batch_templates=frozenset(e.template for e in batch.events),
        stream_templates=frozenset(e.template for e in stream.events),
        mismatched_lines=mismatched,
    )


def compare_stream_to_batch(
    factory: ParserFactory,
    records: Sequence[LogRecord],
    *,
    flush_policy: str = "prefix",
    flush_size: int = 512,
    cache_capacity: int = 4096,
    max_flush_retries: int = 3,
    workers: int = 1,
) -> EquivalenceReport:
    """Parse *records* both ways and diff the canonicalized results.

    Defaults to the engine's ``prefix`` flush policy — the certified
    mode whose finalized output is identical to batch by construction,
    so any mismatch the report shows is an engine bug.  Pass
    ``flush_policy="delta"`` to *measure* how far the fast approximate
    mode drifts instead (its ``agreement`` is then a quality metric,
    not a pass/fail bit).
    """
    records = list(records)
    batch_parser = factory()
    batch = batch_parser.parse(records)
    streaming = StreamingParser(
        factory,
        flush_policy=flush_policy,
        flush_size=flush_size,
        cache_capacity=cache_capacity,
        max_flush_retries=max_flush_retries,
        workers=workers,
    )
    stream = streaming.parse(records)
    return diff_results(batch_parser.name, batch, stream)
