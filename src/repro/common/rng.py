"""Deterministic random-number helpers.

Every stochastic component (dataset generators, LKE/LogSig clustering)
accepts an explicit seed so that experiments are reproducible run-to-run,
and derives child generators through :func:`spawn` so that adding a new
consumer does not perturb existing streams.
"""

from __future__ import annotations

import random

import numpy as np

#: Default seed used across examples and benchmarks.
DEFAULT_SEED = 20160628  # DSN 2016 conference start date


def make_rng(seed: int | None = None) -> random.Random:
    """Create a stdlib ``random.Random`` from *seed* (default if None)."""
    return random.Random(DEFAULT_SEED if seed is None else seed)


def make_numpy_rng(seed: int | None = None) -> np.random.Generator:
    """Create a numpy Generator from *seed* (default if None)."""
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)


def spawn(seed: int | None, label: str) -> random.Random:
    """Derive an independent child generator from a base *seed* and *label*.

    The label keys the child stream, so two spawns with different labels
    are decorrelated, and streams are stable regardless of call order
    (no parent generator is consumed).
    """
    base = DEFAULT_SEED if seed is None else seed
    return random.Random(f"{base}:{label}")
