"""Shared utilities: tokenization, core data types, errors, RNG helpers."""

from repro.common.errors import (
    ReproError,
    ParserConfigurationError,
    DatasetError,
    EvaluationError,
)
from repro.common.types import (
    EventTemplate,
    LogRecord,
    ParseResult,
    StructuredLog,
)
from repro.common.tokenize import (
    WILDCARD,
    is_wildcard,
    render_template,
    template_matches,
    tokenize,
)

__all__ = [
    "ReproError",
    "ParserConfigurationError",
    "DatasetError",
    "EvaluationError",
    "EventTemplate",
    "LogRecord",
    "ParseResult",
    "StructuredLog",
    "WILDCARD",
    "is_wildcard",
    "render_template",
    "template_matches",
    "tokenize",
]
