"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single ``except`` clause
while still being able to distinguish configuration problems from data
problems.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ParserConfigurationError(ReproError):
    """A log parser was constructed or invoked with invalid parameters."""


class DatasetError(ReproError):
    """A dataset could not be generated, loaded, or validated."""


class EvaluationError(ReproError):
    """An evaluation harness was given inconsistent or unusable inputs."""


class MiningError(ReproError):
    """A log mining model was given inconsistent or unusable inputs."""
