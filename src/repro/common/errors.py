"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single ``except`` clause
while still being able to distinguish configuration problems from data
problems.  The CLI maps the hierarchy onto exit codes (configuration
errors exit 2, data errors exit 3, runtime failures exit 4); see
:func:`repro.cli.exit_code_for`.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ValidationError(ReproError, ValueError):
    """A public API was called with invalid argument values.

    Doubles as a :class:`ValueError` so callers following the builtin
    convention (``except ValueError``) keep working.
    """


class ParserConfigurationError(ReproError):
    """A log parser was constructed or invoked with invalid parameters."""


class DatasetError(ReproError):
    """A dataset could not be generated, loaded, or validated."""


class EvaluationError(ReproError):
    """An evaluation harness was given inconsistent or unusable inputs."""


class MiningError(ReproError):
    """A log mining model was given inconsistent or unusable inputs."""


class ParserTimeoutError(ReproError):
    """A supervised parse exceeded its wall-clock deadline.

    ``leaked_thread`` is True when the deadline-expired worker thread
    survived its grace-period join and was abandoned still running —
    the supervisor totals these in ``FailureReport.leaked_threads``.
    """

    def __init__(self, message: str, *, leaked_thread: bool = False) -> None:
        super().__init__(message)
        self.leaked_thread = leaked_thread


class WorkerCrashError(ReproError):
    """A parallel parsing worker died or hung and could not be recovered."""


class CheckpointError(ReproError):
    """A streaming checkpoint could not be written, read, or applied."""


class BudgetExceededError(ReproError):
    """A resource budget's hard limit was breached during a parse.

    Carries the :class:`~repro.degradation.budget.BudgetBreach` list
    that triggered it as the ``breaches`` attribute, so supervisors and
    degradation runtimes can report *which* dimension (wall clock,
    memory, cache, queue depth) blew the budget and by how much.
    """

    def __init__(self, message: str, breaches=()) -> None:
        super().__init__(message)
        self.breaches = tuple(breaches)


class ArtifactWriteError(ReproError):
    """An output artifact could not be durably committed.

    Raised by the durability layer (:mod:`repro.resilience.durability`)
    after its retry/divert ladder is exhausted — the write sequence
    (temp file, fsync, rename, directory fsync) failed persistently.
    The target artifact is left in its previous complete state, never
    half-written.  Maps to the runtime-failure exit code (4).
    """


class IntegrityError(ReproError):
    """A persisted artifact failed an integrity check.

    Covers manifest verification mismatches (hash/size/record-count
    drift, missing artifacts), invalid JSONL frames, and checkpoint/
    artifact reconciliation conflicts.  The CLI maps it to the
    data-error exit code (3): the inputs to the next pipeline stage
    are not trustworthy.
    """


class ConcurrencyError(ReproError):
    """A single-writer component was entered from two threads at once.

    The streaming engine (and the :class:`~repro.streaming.cache.TemplateCache`
    inside it) is deliberately lock-free: each
    :class:`~repro.service.shard.TenantShard` owns exactly one engine
    and serializes access behind its own lock.  This error is the
    enforcement half of that contract — a best-effort tripwire raised
    when a second thread calls ``feed``/``flush``/``finalize``/
    ``reconfigure`` while another thread is still inside the engine.
    Maps to the runtime-failure exit code (4).
    """


class FallbackExhaustedError(ReproError):
    """Every parser in a supervision fallback chain failed.

    Carries the :class:`~repro.resilience.supervisor.FailureReport` of
    the attempts as the ``report`` attribute when raised by
    :class:`~repro.resilience.supervisor.ParserSupervisor`.
    """

    def __init__(self, message: str, report=None) -> None:
        super().__init__(message)
        self.report = report


class DeliveryError(ReproError):
    """Exactly-once delivery could not be completed.

    Raised by :class:`~repro.service.client.DurableSender` when the
    flush deadline expires with lines still unacknowledged — the lines
    are safe in the client's durable spool and a later flush (or a
    fresh sender over the same spool) will deliver them, but the
    caller's synchronous delivery guarantee did not land.  Maps to the
    runtime-failure exit code (4).
    """
