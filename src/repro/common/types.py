"""Core data types: log records, event templates, and parse results.

These types fix the standard input/output contract described in §II-C of
the paper: a parser consumes a file (or list) of raw log messages and
produces two artifacts —

* a list of **log events** (:class:`EventTemplate`), each the constant
  part of one message type with variables masked by ``*``; and
* **structured logs** (:class:`StructuredLog`), the original message
  sequence with each message mapped to its event id.

Both are bundled in :class:`ParseResult`, whose ``assignments`` vector
(one event id per input line, in input order) is what every evaluation
in the paper consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterator, Sequence

from repro.common.errors import ValidationError

from repro.common.tokenize import template_matches, tokenize


@dataclass(frozen=True)
class LogRecord:
    """One raw log message, split into header fields and free-text content.

    Attributes:
        content: the free-text message content (the part parsers see).
        timestamp: the header timestamp string (may be empty).
        session_id: identifier grouping related records (e.g. the HDFS
            block id), used by log mining; empty when not applicable.
        truth_event: ground-truth event id when known (synthetic datasets
            carry it; real logs would not), else ``None``.
    """

    content: str
    timestamp: str = ""
    session_id: str = ""
    truth_event: str | None = None

    @property
    def tokens(self) -> list[str]:
        """Whitespace tokens of the message content."""
        return tokenize(self.content)

    def to_dict(self) -> dict:
        """JSON-ready form, used by streaming checkpoints."""
        return {
            "content": self.content,
            "timestamp": self.timestamp,
            "session_id": self.session_id,
            "truth_event": self.truth_event,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LogRecord":
        return cls(
            content=data["content"],
            timestamp=data.get("timestamp", ""),
            session_id=data.get("session_id", ""),
            truth_event=data.get("truth_event"),
        )


@dataclass(frozen=True)
class EventTemplate:
    """A log event: an id plus its template string with ``*`` wildcards."""

    event_id: str
    template: str

    @property
    def tokens(self) -> list[str]:
        return tokenize(self.template)

    def matches(self, message: str) -> bool:
        """True if *message* is an instance of this template."""
        return template_matches(self.template, message)


@dataclass(frozen=True)
class StructuredLog:
    """One structured (parsed) log line: original record + assigned event."""

    line_no: int
    record: LogRecord
    event_id: str


@dataclass
class ParseResult:
    """The two-file output of a log parser, as in-memory objects.

    Attributes:
        events: the extracted event templates, in discovery order.
        assignments: for input line ``i``, ``assignments[i]`` is the event
            id assigned to that line.  Lines a parser declines to cluster
            (e.g. SLCT outliers) get :data:`OUTLIER_EVENT_ID`.
        records: the input records in original order.
    """

    OUTLIER_EVENT_ID = "OUTLIER"

    events: list[EventTemplate] = field(default_factory=list)
    assignments: list[str] = field(default_factory=list)
    records: list[LogRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.assignments) != len(self.records):
            raise ValidationError(
                f"assignments ({len(self.assignments)}) and records "
                f"({len(self.records)}) must have equal length"
            )

    def __len__(self) -> int:
        return len(self.records)

    @property
    def event_ids(self) -> list[str]:
        return [event.event_id for event in self.events]

    def template_of(self, event_id: str) -> str:
        """Return the template string for *event_id*.

        Raises ``KeyError`` for unknown ids (including the outlier id,
        which deliberately has no template).
        """
        for event in self.events:
            if event.event_id == event_id:
                return event.template
        raise KeyError(event_id)

    def structured(self) -> Iterator[StructuredLog]:
        """Iterate over structured log lines in input order."""
        for i, (record, event_id) in enumerate(
            zip(self.records, self.assignments)
        ):
            yield StructuredLog(line_no=i, record=record, event_id=event_id)

    def groups(self) -> dict[str, list[int]]:
        """Map each event id to the list of line indices assigned to it."""
        clusters: dict[str, list[int]] = {}
        for i, event_id in enumerate(self.assignments):
            clusters.setdefault(event_id, []).append(i)
        return clusters

    def events_file_lines(self) -> list[str]:
        """Render the 'log events' output file (one ``id<TAB>template``)."""
        return [f"{e.event_id}\t{e.template}" for e in self.events]

    def structured_file_lines(self) -> list[str]:
        """Render the 'structured logs' output file.

        One line per input record: ``line_no<TAB>timestamp<TAB>session``
        ``<TAB>event_id`` — matching the structured-log table of Fig. 1.
        """
        return [
            f"{s.line_no}\t{s.record.timestamp}\t{s.record.session_id}"
            f"\t{s.event_id}"
            for s in self.structured()
        ]


def records_from_contents(
    contents: Sequence[str],
    session_ids: Sequence[str] | None = None,
) -> list[LogRecord]:
    """Wrap bare message strings into :class:`LogRecord` objects.

    Convenience for tests and examples that start from plain strings.
    """
    if session_ids is not None and len(session_ids) != len(contents):
        raise ValidationError("session_ids must be as long as contents")
    return [
        LogRecord(
            content=content,
            session_id=session_ids[i] if session_ids is not None else "",
        )
        for i, content in enumerate(contents)
    ]
