"""Low-level string/sequence helpers used by the parsers.

Includes the weighted edit distance LKE clusters with, longest common
subsequence extraction for template generation, and small formatting
helpers for the report renderers.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence

from repro.common.errors import ValidationError


def edit_distance(
    a: Sequence[str],
    b: Sequence[str],
    weight: Callable[[int], float] | None = None,
) -> float:
    """Token-level (weighted) edit distance between token sequences.

    With *weight* ``None`` this is the classic Levenshtein distance over
    tokens (each insert/delete/substitute costs 1).  With a *weight*
    function, an edit touching position ``i`` (0-based, in whichever
    sequence the operation indexes) costs ``weight(i)`` — LKE uses a
    weight that decays with the token index so that early tokens (likely
    constants) dominate the distance.
    """
    cost = weight if weight is not None else (lambda _i: 1.0)
    n, m = len(a), len(b)
    # dp[j] = distance between a[:i] and b[:j] for the current row i.
    previous = [0.0] * (m + 1)
    for j in range(1, m + 1):
        previous[j] = previous[j - 1] + cost(j - 1)
    for i in range(1, n + 1):
        current = [previous[0] + cost(i - 1)] + [0.0] * m
        for j in range(1, m + 1):
            if a[i - 1] == b[j - 1]:
                substitution = previous[j - 1]
            else:
                substitution = previous[j - 1] + cost(max(i, j) - 1)
            deletion = previous[j] + cost(i - 1)
            insertion = current[j - 1] + cost(j - 1)
            current[j] = min(substitution, deletion, insertion)
        previous = current
    return previous[m]


def sigmoid_position_weight(length_a: int, length_b: int) -> Callable[[int], float]:
    """LKE's position weight: high for early tokens, decaying smoothly.

    Fu et al. weight an edit at token index ``x`` by a logistic curve
    centred mid-message, ``1 / (1 + e^(x - midpoint))`` — edits near the
    head of the message (where constants live) cost nearly 1, edits in
    the tail (where parameters live) cost nearly 0.
    """
    midpoint = min(length_a, length_b) / 2.0

    def weight(index: int) -> float:
        return 1.0 / (1.0 + math.exp(index - midpoint))

    return weight


def longest_common_subsequence(
    a: Sequence[str], b: Sequence[str]
) -> list[str]:
    """Longest common subsequence of two token sequences.

    Used by LKE's template generation: the template of a cluster is the
    common token skeleton of its members.
    """
    n, m = len(a), len(b)
    lengths = [[0] * (m + 1) for _ in range(n + 1)]
    for i in range(n - 1, -1, -1):
        row = lengths[i]
        below = lengths[i + 1]
        for j in range(m - 1, -1, -1):
            if a[i] == b[j]:
                row[j] = below[j + 1] + 1
            else:
                row[j] = max(below[j], row[j + 1])
    # Recover one LCS by walking the table.
    result: list[str] = []
    i = j = 0
    while i < n and j < m:
        if a[i] == b[j]:
            result.append(a[i])
            i += 1
            j += 1
        elif lengths[i + 1][j] >= lengths[i][j + 1]:
            i += 1
        else:
            j += 1
    return result


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render a plain-text table with left-aligned, width-padded columns."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValidationError("row width must match header width")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    lines.extend(
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        for row in cells
    )
    return "\n".join(lines)
