"""Tokenization and template conventions shared by every parser.

The paper's parsers all operate on whitespace-delimited tokens of the free
text *content* of a log message (headers such as timestamps are stripped by
the dataset loader before parsing).  A *template* is a token sequence in
which variable positions are replaced by the wildcard token ``*`` — e.g.
``Receiving block * src: * dest: *``.

This module fixes those conventions in one place:

* :func:`tokenize` — split a message into tokens,
* :data:`WILDCARD` — the variable-position marker,
* :func:`render_template` — join a token sequence back into a template
  string,
* :func:`template_matches` — check whether a template covers a concrete
  message.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.common.errors import ValidationError

#: Marker used in templates for a variable (parameter) position.
WILDCARD = "*"


def tokenize(message: str) -> list[str]:
    """Split a raw log message content into whitespace-delimited tokens.

    Consecutive whitespace is collapsed; leading/trailing whitespace is
    ignored.  The empty message tokenizes to an empty list.

    >>> tokenize("Receiving block blk_123  src: /10.0.0.1:50010")
    ['Receiving', 'block', 'blk_123', 'src:', '/10.0.0.1:50010']
    """
    return message.split()


def is_wildcard(token: str) -> bool:
    """Return True if *token* marks a variable position in a template."""
    return token == WILDCARD


def render_template(tokens: Sequence[str]) -> str:
    """Join template tokens into the canonical single-space-separated form.

    >>> render_template(["Receiving", "block", "*"])
    'Receiving block *'
    """
    return " ".join(tokens)


def template_matches(template: str, message: str) -> bool:
    """Return True if *message* is an instance of *template*.

    Matching is positional: both are tokenized, lengths must agree, and at
    every position the template token must either equal the message token
    or be the wildcard.

    >>> template_matches("Receiving block *", "Receiving block blk_1")
    True
    >>> template_matches("Receiving block *", "Deleting block blk_1")
    False
    """
    t_tokens = tokenize(template)
    m_tokens = tokenize(message)
    if len(t_tokens) != len(m_tokens):
        return False
    return all(
        is_wildcard(t) or t == m for t, m in zip(t_tokens, m_tokens)
    )


def generalize(tokens_a: Sequence[str], tokens_b: Sequence[str]) -> list[str]:
    """Merge two equal-length token sequences into their common template.

    Positions where the sequences agree keep the token; positions where
    they differ become wildcards.  Raises :class:`ValidationError` on length
    mismatch — same-length membership is each parser's responsibility.

    >>> generalize(["open", "file", "a.txt"], ["open", "file", "b.txt"])
    ['open', 'file', '*']
    """
    if len(tokens_a) != len(tokens_b):
        raise ValidationError(
            f"cannot generalize sequences of different lengths "
            f"({len(tokens_a)} vs {len(tokens_b)})"
        )
    return [
        a if a == b and not is_wildcard(a) and not is_wildcard(b) else WILDCARD
        for a, b in zip(tokens_a, tokens_b)
    ]


def template_from_cluster(token_lists: Sequence[Sequence[str]]) -> list[str]:
    """Build a template from a cluster of same-length token sequences.

    A position keeps its token only when every member agrees on it;
    otherwise it becomes a wildcard.  This is the "log template
    generation" step shared by SLCT, IPLoM, LKE, and LogSig.

    Raises :class:`ValidationError` when the cluster is empty or lengths disagree.
    """
    if not token_lists:
        raise ValidationError("cannot build a template from an empty cluster")
    width = len(token_lists[0])
    template = list(token_lists[0])
    for tokens in token_lists[1:]:
        if len(tokens) != width:
            raise ValidationError(
                "cannot build a template from sequences of different lengths"
            )
        for i, token in enumerate(tokens):
            if template[i] != token:
                template[i] = WILDCARD
    return template
