"""Small networking helpers shared by the service and telemetry planes.

The one thing both TCP front ends (:class:`~repro.service.server.LineServer`
and :class:`~repro.observability.httpd.TelemetryServer`) need beyond the
standard library is tolerance for ``EADDRINUSE`` races: a rapid
``serve`` restart — exactly the respawn path the exactly-once delivery
contract exercises — can land while the previous life's listening
socket is still lingering in ``TIME_WAIT`` or being torn down.  A
bounded retry with exponential backoff absorbs that window; a port
that is *genuinely* owned by someone else still fails after the
retries are spent, so misconfiguration is not masked.
"""

from __future__ import annotations

import errno
import socket
import time

#: Default bind-retry shape: 5 retries at 0.05 * 2**n seconds spans
#: roughly 1.5 s — comfortably past a same-host socket teardown, far
#: below any human-visible startup delay.
DEFAULT_BIND_RETRIES = 5
DEFAULT_BIND_BACKOFF = 0.05


def retry_eaddrinuse(
    attempt,
    *,
    retries: int = DEFAULT_BIND_RETRIES,
    backoff: float = DEFAULT_BIND_BACKOFF,
    sleep=time.sleep,
):
    """Call *attempt* until it stops raising ``EADDRINUSE``.

    *attempt* is a zero-argument callable whose result is returned on
    success.  Any other ``OSError`` — permission denied, bad address —
    propagates immediately; only the address-in-use race is retried,
    *retries* times with exponential backoff, after which the final
    error propagates.
    """
    tries = 0
    while True:
        try:
            return attempt()
        except OSError as error:
            if error.errno != errno.EADDRINUSE or tries >= retries:
                raise
            tries += 1
            sleep(backoff * (2 ** (tries - 1)))


def bind_with_retry(
    host: str,
    port: int,
    *,
    retries: int = DEFAULT_BIND_RETRIES,
    backoff: float = DEFAULT_BIND_BACKOFF,
    sleep=time.sleep,
) -> socket.socket:
    """A bound (not yet listening) TCP socket, retrying ``EADDRINUSE``."""

    def attempt() -> socket.socket:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            sock.bind((host, port))
        except OSError:
            sock.close()
            raise
        return sock

    return retry_eaddrinuse(
        attempt, retries=retries, backoff=backoff, sleep=sleep
    )
