"""Per-record error policies and the quarantine sink.

Production log pipelines cannot afford to die on the first dirty line:
the paper's Finding 6 shows that even a 4% parsing error rate on
critical events degrades PCA mining by an order of magnitude, so the
interesting question is never *whether* input is dirty but *what to do*
with the dirty part while the clean part keeps flowing.  This module
supplies the shared answer used by :mod:`repro.datasets.loader`,
:class:`~repro.streaming.engine.StreamingParser`, and the
``repro supervise`` CLI:

* an :class:`ErrorPolicy` — ``raise`` (fail fast, the historical
  behavior), ``skip`` (drop silently but count), or ``quarantine``
  (divert to a sink with full provenance); and
* a :class:`QuarantineSink` that collects :class:`QuarantineRecord`
  entries in memory and, when given a path, appends them as JSON lines
  so a human (or a replay job) can inspect exactly what was rejected,
  where it came from, and why.
"""

from __future__ import annotations

import os
from dataclasses import asdict, dataclass
from collections.abc import Iterable, Iterator

from repro.common.errors import DatasetError, ValidationError
from repro.common.types import LogRecord
from repro.resilience.durability import (
    DurableJsonlWriter,
    RealIO,
    read_jsonl_payloads,
    recover_jsonl,
)

#: The three per-record error policies, in escalating tolerance order.
ERROR_POLICIES = ("raise", "skip", "quarantine")

#: Reason tags used across the hardened ingestion paths.
REASON_UNDECODABLE = "undecodable"
REASON_OVERSIZED = "oversized"
REASON_UNPRINTABLE = "unprintable"
REASON_PARSE_FAILURE = "parse-failure"

#: How much of a rejected line is preserved in its quarantine record.
_PREVIEW_CHARS = 200


@dataclass(frozen=True)
class QuarantineRecord:
    """Provenance of one rejected input record.

    Attributes:
        source: originating file path, or ``"<stream>"`` for in-memory
            record streams.
        line_no: 0-based line (or record) index within the source.
        byte_offset: byte position of the line start in the source
            file; ``-1`` when the source is not a file.
        reason: machine-readable reason tag (one of the ``REASON_*``
            constants).
        detail: human-readable explanation (exception message, size
            overflow, ...).
        preview: best-effort text preview of the rejected payload,
            decoded with ``errors="replace"`` and truncated.
    """

    source: str
    line_no: int
    byte_offset: int
    reason: str
    detail: str
    preview: str

    def to_record(self) -> dict:
        """Structured-event-log shape (common ``kind`` envelope), the
        same contract as ``FailureReport.to_record`` and
        ``DegradationEvent.to_record``."""
        return {"kind": "quarantine", **asdict(self)}


def preview_text(payload: bytes | str) -> str:
    """Best-effort printable preview of a rejected payload."""
    if isinstance(payload, bytes):
        payload = payload.decode("utf-8", errors="replace")
    return payload[:_PREVIEW_CHARS]


class QuarantineSink:
    """Collects quarantined records; optionally persists them durably.

    Args:
        path: when given, every quarantined record is also appended to
            this file as one length+CRC32-framed JSON line (created
            lazily on the first record, so an untouched sink leaves no
            file).  Persistence goes through
            :class:`~repro.resilience.durability.DurableJsonlWriter`:
            a pre-existing file has its torn tail recovered before the
            first append, transient IO faults are retried, and a
            persistently failing path diverts to ``path + ".alt"`` so
            records still land somewhere durable.
        io: IO seam for fault injection (defaults to the real thing).

    The sink always keeps records in memory too, so tests and the CLI
    can report counts without re-reading the file.  With a *telemetry*
    handle attached, every addition is counted by reason in the metrics
    registry and emitted onto the structured event timeline, where it
    interleaves with ladder steps and fallback reports.
    """

    def __init__(
        self,
        path: str | None = None,
        telemetry=None,
        io: "RealIO | None" = None,
    ) -> None:
        self.path = path
        self.telemetry = telemetry
        self.io = io
        self.records: list[QuarantineRecord] = []
        self._writer: DurableJsonlWriter | None = None

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[QuarantineRecord]:
        return iter(self.records)

    def add(self, record: QuarantineRecord) -> None:
        self.records.append(record)
        if self.path is not None:
            if self._writer is None:
                self._writer = DurableJsonlWriter(
                    self.path, io=self.io, telemetry=self.telemetry
                )
            self._writer.append(asdict(record))
        if self.telemetry is not None:
            self.telemetry.metrics.get(
                "repro_quarantine_records_total"
            ).labels(reason=record.reason).inc()
            self.telemetry.events.record(record)

    def offset(self) -> tuple[int, int]:
        """``(bytes, records)`` durably framed on disk so far.

        This is what checkpoints record: a resume truncates the file
        back to this offset so re-fed records do not duplicate.  A
        sink without a path (or one that has not opened its file yet)
        reports the on-disk state, not the in-memory record count.
        """
        if self._writer is not None:
            return self._writer.offset()
        if self.path is not None and os.path.exists(self.path):
            recovery = recover_jsonl(self.path, truncate=False, io=self.io)
            return recovery.valid_bytes, len(recovery.records)
        return 0, 0

    def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            self._writer = None

    def __enter__(self) -> "QuarantineSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def reasons(self) -> dict[str, int]:
        """Count of quarantined records per reason tag."""
        counts: dict[str, int] = {}
        for record in self.records:
            counts[record.reason] = counts.get(record.reason, 0) + 1
        return counts

    def describe(self) -> str:
        if not self.records:
            return "quarantine: empty"
        parts = ", ".join(
            f"{count} {reason}" for reason, count in sorted(self.reasons().items())
        )
        where = f" -> {self.path}" if self.path else ""
        return f"quarantine: {len(self.records)} records ({parts}){where}"

    @staticmethod
    def read(path: str) -> list[QuarantineRecord]:
        """Load a quarantine file back into records.

        Accepts both the framed format the sink writes and legacy
        plain JSONL.
        """
        if not os.path.exists(path):
            raise DatasetError(f"quarantine file not found: {path}")
        return [
            QuarantineRecord(**payload)
            for payload in read_jsonl_payloads(path)
        ]


class ErrorPolicy:
    """One per-record error policy plus the sink it diverts into.

    Args:
        mode: ``"raise"``, ``"skip"``, or ``"quarantine"``.
        sink: destination for quarantined records; an in-memory
            :class:`QuarantineSink` is created when omitted.

    The ``skipped`` counter includes quarantined records — it counts
    every record that did *not* reach the downstream consumer.
    """

    def __init__(
        self, mode: str = "raise", sink: QuarantineSink | None = None
    ) -> None:
        if mode not in ERROR_POLICIES:
            raise ValidationError(
                f"error policy must be one of {ERROR_POLICIES}, got {mode!r}"
            )
        self.mode = mode
        self.sink = sink if sink is not None else QuarantineSink()
        self.skipped = 0

    @classmethod
    def coerce(
        cls, policy: "ErrorPolicy | str", sink: QuarantineSink | None = None
    ) -> "ErrorPolicy":
        """Accept either a policy object or a bare mode string."""
        if isinstance(policy, ErrorPolicy):
            return policy
        return cls(policy, sink=sink)

    def handle(
        self,
        *,
        source: str,
        line_no: int,
        byte_offset: int,
        reason: str,
        detail: str,
        payload: bytes | str,
        error: Exception | None = None,
    ) -> None:
        """Apply the policy to one bad record.

        ``raise`` mode raises a :class:`DatasetError` carrying the
        provenance (chained to *error* when given); the other modes
        return normally so the caller can continue with the next
        record.
        """
        if self.mode == "raise":
            message = (
                f"{reason} record at {source}:{line_no}"
                f" (byte offset {byte_offset}): {detail}"
            )
            raise DatasetError(message) from error
        self.skipped += 1
        if self.mode == "quarantine":
            self.sink.add(
                QuarantineRecord(
                    source=source,
                    line_no=line_no,
                    byte_offset=byte_offset,
                    reason=reason,
                    detail=detail,
                    preview=preview_text(payload),
                )
            )


def is_clean_content(content: str, max_len: int | None = None) -> str | None:
    """Reason tag when *content* should be rejected, else ``None``.

    Rejects contents carrying control characters (anything below
    U+0020 except plain whitespace, plus the Unicode replacement
    character left behind by lossy decoding) and, when *max_len* is
    given, contents longer than *max_len* characters.
    """
    if max_len is not None and len(content) > max_len:
        return REASON_OVERSIZED
    for char in content:
        if (ord(char) < 0x20 and char not in "\t\n\r") or char == "�":
            return REASON_UNPRINTABLE
    return None


def screen_records(
    records: Iterable[LogRecord],
    policy: ErrorPolicy | str = "raise",
    *,
    source: str = "<stream>",
    max_len: int | None = None,
    sink: QuarantineSink | None = None,
) -> Iterator[LogRecord]:
    """Yield only records whose content passes :func:`is_clean_content`.

    The record-level twin of the loader's byte-level hardening: use it
    on in-memory streams (generators, already-loaded datasets) where
    byte offsets do not exist.  Rejected records are handled by
    *policy*, with the stream index standing in for the line number.
    """
    policy = ErrorPolicy.coerce(policy, sink=sink)
    for index, record in enumerate(records):
        reason = is_clean_content(record.content, max_len=max_len)
        if reason is None:
            yield record
            continue
        policy.handle(
            source=source,
            line_no=index,
            byte_offset=-1,
            reason=reason,
            detail=(
                f"content length {len(record.content)} exceeds {max_len}"
                if reason == REASON_OVERSIZED
                else "content contains control or replacement characters"
            ),
            payload=record.content,
        )
