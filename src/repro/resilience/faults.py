"""Deterministic, seeded fault injection for the resilience suite.

Every recovery path in the runtime — quarantine, retry, circuit
breaking, worker re-dispatch, checkpoint resume — is only trustworthy
if it is *exercised*, and real faults are rare and irreproducible.
This module manufactures them on a fixed schedule derived from a seed,
so a failing resilience test replays bit-for-bit:

* :func:`corrupt_records` / :func:`corrupt_raw_file` dirty an input
  stream (binary garbage, oversized payloads, mid-token truncation,
  invalid UTF-8 bytes) — exercised against the loader's and engine's
  error policies;
* :class:`FlakyFactory` builds parsers that crash or stall on their
  first *n* calls — exercised against
  :class:`~repro.resilience.supervisor.ParserSupervisor` retries,
  deadlines, and fallback chains;
* :class:`ChunkFault` fires inside chunk workers on scheduled
  ``(chunk, attempt)`` pairs — exercised against
  :class:`~repro.parsers.parallel.ChunkedParallelParser` re-dispatch
  and in-process fallback.

Everything here is picklable (plain module-level classes over plain
data) so faults survive the trip into worker processes.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from random import Random
from collections.abc import Iterable, Iterator, Sequence

from repro.common.errors import ReproError, ValidationError
from repro.common.types import LogRecord, ParseResult
from repro.parsers.base import LogParser
from repro.parsers.parallel import ParserFactory


class InjectedFault(ReproError, RuntimeError):
    """Raised by the harness where a real crash would occur.

    Subclasses :class:`RuntimeError` so recovery code that catches
    broad runtime failures treats it exactly like the genuine article.
    """


# ----------------------------------------------------------------------
# Input corruption
# ----------------------------------------------------------------------

#: Record-level corruption kinds.
KIND_BINARY = "binary"
KIND_OVERSIZED = "oversized"
KIND_TRUNCATED = "truncated"
RECORD_KINDS = (KIND_BINARY, KIND_OVERSIZED, KIND_TRUNCATED)

_BINARY_JUNK = "\x00\x07\x1b[31m"


def corrupt_records(
    records: Iterable[LogRecord],
    *,
    seed: int,
    every: int,
    kinds: Sequence[str] = RECORD_KINDS,
    oversize_to: int = 5000,
) -> Iterator[LogRecord]:
    """Yield *records* with every ``every``-th one corrupted.

    The corruption kind for each victim is drawn from a
    ``Random(seed)`` stream, so the same seed always corrupts the same
    records the same way.  Kinds:

    * ``binary`` — control bytes spliced into the content (caught by
      :func:`~repro.resilience.quarantine.is_clean_content`);
    * ``oversized`` — content padded past *oversize_to* characters;
    * ``truncated`` — content cut mid-token (stays printable: models
      a log line chopped by a crashing writer, dirty but parseable).
    """
    if every < 1:
        raise ValidationError(f"every must be >= 1, got {every}")
    for kind in kinds:
        if kind not in RECORD_KINDS:
            raise ValidationError(
                f"unknown corruption kind {kind!r}; choose from {RECORD_KINDS}"
            )
    rng = Random(seed)
    for index, record in enumerate(records):
        if (index + 1) % every != 0:
            yield record
            continue
        kind = rng.choice(list(kinds))
        content = record.content
        if kind == KIND_BINARY:
            cut = rng.randrange(len(content) + 1)
            content = content[:cut] + _BINARY_JUNK + content[cut:]
        elif kind == KIND_OVERSIZED:
            pad = "A" * (oversize_to + 1 - len(content))
            content = content + pad
        else:  # truncated
            keep = max(1, len(content) // 3)
            content = content[:keep]
        yield LogRecord(
            content=content,
            timestamp=record.timestamp,
            session_id=record.session_id,
            truth_event=record.truth_event,
        )


def corrupt_raw_file(
    src: str,
    dst: str,
    *,
    seed: int,
    every: int,
    oversize_to: int = 100_000,
) -> int:
    """Copy raw log *src* to *dst*, corrupting every ``every``-th line.

    Works at the byte level so the loader's decode path is exercised:
    victims alternately get invalid UTF-8 bytes spliced in or are
    padded past *oversize_to* bytes.  Returns the number of corrupted
    lines.
    """
    if every < 1:
        raise ValidationError(f"every must be >= 1, got {every}")
    rng = Random(seed)
    corrupted = 0
    with open(src, "rb") as infile, open(dst, "wb") as outfile:
        for index, raw in enumerate(infile):
            line = raw.rstrip(b"\n")
            if line and (index + 1) % every == 0:
                corrupted += 1
                if rng.random() < 0.5:
                    cut = rng.randrange(len(line) + 1)
                    line = line[:cut] + b"\xff\xfe\xfd" + line[cut:]
                else:
                    line = line + b"A" * (oversize_to + 1 - len(line))
            outfile.write(line + b"\n")
    return corrupted


# ----------------------------------------------------------------------
# Flaky parsers (supervisor faults)
# ----------------------------------------------------------------------


class FlakyFactory:
    """Parser factory whose first *n* parses crash and/or stall.

    Args:
        inner: the real factory to delegate to.
        fail_times: the first *fail_times* ``parse()`` calls raise
            :class:`InjectedFault`.
        hang_seconds: when > 0, the first *fail_times* calls sleep this
            long *instead of* raising — long enough past a supervisor
            deadline, that registers as a timeout.
        name: reported parser name (defaults to the inner parser's).

    Call-count state lives on the factory instance, so it spans the
    fresh parser objects a supervisor builds per attempt.  That makes
    the factory in-process only; use :class:`ChunkFault` for faults
    that must fire inside worker processes.
    """

    def __init__(
        self,
        inner: ParserFactory,
        *,
        fail_times: int = 1,
        hang_seconds: float = 0.0,
        name: str | None = None,
    ) -> None:
        if fail_times < 0:
            raise ValidationError(
                f"fail_times must be >= 0, got {fail_times}"
            )
        self.inner = inner
        self.fail_times = fail_times
        self.hang_seconds = hang_seconds
        self.name = name
        self.calls = 0

    def __call__(self) -> LogParser:
        return _FlakyParser(self)


class _FlakyParser(LogParser):
    """The per-call wrapper :class:`FlakyFactory` hands out."""

    def __init__(self, gate: FlakyFactory) -> None:
        super().__init__(preprocessor=None)
        self._gate = gate
        inner = gate.inner()
        self._inner = inner
        self.name = gate.name or inner.name

    def parse(self, records: Sequence[LogRecord]) -> ParseResult:
        gate = self._gate
        gate.calls += 1
        if gate.calls <= gate.fail_times:
            if gate.hang_seconds > 0:
                time.sleep(gate.hang_seconds)
            else:
                raise InjectedFault(
                    f"injected crash on parse call {gate.calls} "
                    f"of {self.name}"
                )
        return self._inner.parse(records)

    def _cluster(self, token_lists):  # pragma: no cover - parse() overridden
        raise NotImplementedError("_FlakyParser overrides parse() directly")


# ----------------------------------------------------------------------
# Worker-chunk faults
# ----------------------------------------------------------------------

#: Chunk fault modes.
MODE_RAISE = "raise"
MODE_EXIT = "exit"
MODE_HANG = "hang"
CHUNK_MODES = (MODE_RAISE, MODE_EXIT, MODE_HANG)


@dataclass(frozen=True)
class ChunkFault:
    """Scheduled fault firing inside chunk parses.

    Args:
        chunks: chunk indices to sabotage.
        attempts: the fault fires on attempts ``1..attempts`` of a
            sabotaged chunk and then lets it succeed — raise
            ``attempts`` past the dispatcher's ``max_chunk_attempts``
            to force the in-process fallback.
        mode: ``raise`` (exception in the worker), ``exit`` (hard
            ``os._exit``, i.e. a dead worker process and a broken
            pool), or ``hang`` (sleep ``hang_seconds`` before parsing,
            tripping a chunk deadline).
        hang_seconds: stall length for ``hang`` mode.
        worker_only: when True (default), the fault never fires for
            in-process parses — so the dispatcher's in-process
            fallback, which models escaping a poisoned worker
            environment, genuinely recovers.

    Frozen and built from plain data, so it pickles into workers and
    the schedule is identical on every replay.
    """

    chunks: tuple[int, ...]
    attempts: int = 1
    mode: str = MODE_RAISE
    hang_seconds: float = 5.0
    worker_only: bool = True

    def __post_init__(self) -> None:
        if self.mode not in CHUNK_MODES:
            raise ValidationError(
                f"chunk fault mode must be one of {CHUNK_MODES}, "
                f"got {self.mode!r}"
            )
        if self.attempts < 1:
            raise ValidationError(
                f"attempts must be >= 1, got {self.attempts}"
            )

    def should_fire(
        self, chunk_index: int, attempt: int, in_process: bool
    ) -> bool:
        if in_process and self.worker_only:
            return False
        return chunk_index in self.chunks and attempt <= self.attempts

    def fire(self, chunk_index: int, attempt: int) -> None:
        """Enact the fault (called from inside the chunk parse)."""
        if self.mode == MODE_EXIT:
            os._exit(13)
        if self.mode == MODE_HANG:
            time.sleep(self.hang_seconds)
            return
        raise InjectedFault(
            f"injected worker crash on chunk {chunk_index} "
            f"attempt {attempt}"
        )
