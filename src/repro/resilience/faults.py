"""Deterministic, seeded fault injection for the resilience suite.

Every recovery path in the runtime — quarantine, retry, circuit
breaking, worker re-dispatch, checkpoint resume — is only trustworthy
if it is *exercised*, and real faults are rare and irreproducible.
This module manufactures them on a fixed schedule derived from a seed,
so a failing resilience test replays bit-for-bit:

* :func:`corrupt_records` / :func:`corrupt_raw_file` dirty an input
  stream (binary garbage, oversized payloads, mid-token truncation,
  invalid UTF-8 bytes) — exercised against the loader's and engine's
  error policies;
* :class:`FlakyFactory` builds parsers that crash or stall on their
  first *n* calls — exercised against
  :class:`~repro.resilience.supervisor.ParserSupervisor` retries,
  deadlines, and fallback chains;
* :class:`ChunkFault` fires inside chunk workers on scheduled
  ``(chunk, attempt)`` pairs — exercised against
  :class:`~repro.parsers.parallel.ChunkedParallelParser` re-dispatch
  and in-process fallback;
* :class:`FaultyIO` interposes on the durability layer's IO seam
  (:class:`~repro.resilience.durability.RealIO`), injecting ``EIO``,
  ``ENOSPC``, fsync failures, and partial/torn writes at scripted
  byte offsets — exercised against every durable writer's
  retry/divert/recover contract;
* :class:`FaultyLineSender` plays a misbehaving network client
  against the ingestion service's TCP front end — mid-line
  disconnects, lost partial lines, slow writers, reconnect storms —
  on a :func:`connection_fault_schedule` derived from a seed
  (the ``REPRO_CONN_SEED`` CI matrix).

Everything here is picklable (plain module-level classes over plain
data) so faults survive the trip into worker processes.
"""

from __future__ import annotations

import errno
import os
import signal as _signal_module
import zlib
import socket
import time
from dataclasses import dataclass
from random import Random
from collections.abc import Iterable, Iterator, Sequence

from repro.common.errors import ReproError, ValidationError
from repro.common.types import LogRecord, ParseResult
from repro.parsers.base import LogParser
from repro.parsers.parallel import ParserFactory
from repro.resilience.durability import RealIO

_SIGKILL = getattr(_signal_module, "SIGKILL", _signal_module.SIGTERM)


class InjectedFault(ReproError, RuntimeError):
    """Raised by the harness where a real crash would occur.

    Subclasses :class:`RuntimeError` so recovery code that catches
    broad runtime failures treats it exactly like the genuine article.
    """


# ----------------------------------------------------------------------
# Input corruption
# ----------------------------------------------------------------------

#: Record-level corruption kinds.
KIND_BINARY = "binary"
KIND_OVERSIZED = "oversized"
KIND_TRUNCATED = "truncated"
RECORD_KINDS = (KIND_BINARY, KIND_OVERSIZED, KIND_TRUNCATED)

_BINARY_JUNK = "\x00\x07\x1b[31m"


def corrupt_records(
    records: Iterable[LogRecord],
    *,
    seed: int,
    every: int,
    kinds: Sequence[str] = RECORD_KINDS,
    oversize_to: int = 5000,
) -> Iterator[LogRecord]:
    """Yield *records* with every ``every``-th one corrupted.

    The corruption kind for each victim is drawn from a
    ``Random(seed)`` stream, so the same seed always corrupts the same
    records the same way.  Kinds:

    * ``binary`` — control bytes spliced into the content (caught by
      :func:`~repro.resilience.quarantine.is_clean_content`);
    * ``oversized`` — content padded past *oversize_to* characters;
    * ``truncated`` — content cut mid-token (stays printable: models
      a log line chopped by a crashing writer, dirty but parseable).
    """
    if every < 1:
        raise ValidationError(f"every must be >= 1, got {every}")
    for kind in kinds:
        if kind not in RECORD_KINDS:
            raise ValidationError(
                f"unknown corruption kind {kind!r}; choose from {RECORD_KINDS}"
            )
    rng = Random(seed)
    for index, record in enumerate(records):
        if (index + 1) % every != 0:
            yield record
            continue
        kind = rng.choice(list(kinds))
        content = record.content
        if kind == KIND_BINARY:
            cut = rng.randrange(len(content) + 1)
            content = content[:cut] + _BINARY_JUNK + content[cut:]
        elif kind == KIND_OVERSIZED:
            pad = "A" * (oversize_to + 1 - len(content))
            content = content + pad
        else:  # truncated
            keep = max(1, len(content) // 3)
            content = content[:keep]
        yield LogRecord(
            content=content,
            timestamp=record.timestamp,
            session_id=record.session_id,
            truth_event=record.truth_event,
        )


def corrupt_raw_file(
    src: str,
    dst: str,
    *,
    seed: int,
    every: int,
    oversize_to: int = 100_000,
) -> int:
    """Copy raw log *src* to *dst*, corrupting every ``every``-th line.

    Works at the byte level so the loader's decode path is exercised:
    victims alternately get invalid UTF-8 bytes spliced in or are
    padded past *oversize_to* bytes.  Returns the number of corrupted
    lines.
    """
    if every < 1:
        raise ValidationError(f"every must be >= 1, got {every}")
    rng = Random(seed)
    corrupted = 0
    with open(src, "rb") as infile, open(dst, "wb") as outfile:
        for index, raw in enumerate(infile):
            line = raw.rstrip(b"\n")
            if line and (index + 1) % every == 0:
                corrupted += 1
                if rng.random() < 0.5:
                    cut = rng.randrange(len(line) + 1)
                    line = line[:cut] + b"\xff\xfe\xfd" + line[cut:]
                else:
                    line = line + b"A" * (oversize_to + 1 - len(line))
            outfile.write(line + b"\n")
    return corrupted


# ----------------------------------------------------------------------
# Flaky parsers (supervisor faults)
# ----------------------------------------------------------------------


class FlakyFactory:
    """Parser factory whose first *n* parses crash and/or stall.

    Args:
        inner: the real factory to delegate to.
        fail_times: the first *fail_times* ``parse()`` calls raise
            :class:`InjectedFault`.
        hang_seconds: when > 0, the first *fail_times* calls sleep this
            long *instead of* raising — long enough past a supervisor
            deadline, that registers as a timeout.
        name: reported parser name (defaults to the inner parser's).

    Call-count state lives on the factory instance, so it spans the
    fresh parser objects a supervisor builds per attempt.  That makes
    the factory in-process only; use :class:`ChunkFault` for faults
    that must fire inside worker processes.
    """

    def __init__(
        self,
        inner: ParserFactory,
        *,
        fail_times: int = 1,
        hang_seconds: float = 0.0,
        name: str | None = None,
    ) -> None:
        if fail_times < 0:
            raise ValidationError(
                f"fail_times must be >= 0, got {fail_times}"
            )
        self.inner = inner
        self.fail_times = fail_times
        self.hang_seconds = hang_seconds
        self.name = name
        self.calls = 0

    def __call__(self) -> LogParser:
        return _FlakyParser(self)


class _FlakyParser(LogParser):
    """The per-call wrapper :class:`FlakyFactory` hands out."""

    def __init__(self, gate: FlakyFactory) -> None:
        super().__init__(preprocessor=None)
        self._gate = gate
        inner = gate.inner()
        self._inner = inner
        self.name = gate.name or inner.name

    def parse(self, records: Sequence[LogRecord]) -> ParseResult:
        gate = self._gate
        gate.calls += 1
        if gate.calls <= gate.fail_times:
            if gate.hang_seconds > 0:
                time.sleep(gate.hang_seconds)
            else:
                raise InjectedFault(
                    f"injected crash on parse call {gate.calls} "
                    f"of {self.name}"
                )
        return self._inner.parse(records)

    def _cluster(self, token_lists):  # pragma: no cover - parse() overridden
        raise NotImplementedError("_FlakyParser overrides parse() directly")


# ----------------------------------------------------------------------
# Worker-chunk faults
# ----------------------------------------------------------------------

#: Chunk fault modes.
MODE_RAISE = "raise"
MODE_EXIT = "exit"
MODE_HANG = "hang"
CHUNK_MODES = (MODE_RAISE, MODE_EXIT, MODE_HANG)


@dataclass(frozen=True)
class ChunkFault:
    """Scheduled fault firing inside chunk parses.

    Args:
        chunks: chunk indices to sabotage.
        attempts: the fault fires on attempts ``1..attempts`` of a
            sabotaged chunk and then lets it succeed — raise
            ``attempts`` past the dispatcher's ``max_chunk_attempts``
            to force the in-process fallback.
        mode: ``raise`` (exception in the worker), ``exit`` (hard
            ``os._exit``, i.e. a dead worker process and a broken
            pool), or ``hang`` (sleep ``hang_seconds`` before parsing,
            tripping a chunk deadline).
        hang_seconds: stall length for ``hang`` mode.
        worker_only: when True (default), the fault never fires for
            in-process parses — so the dispatcher's in-process
            fallback, which models escaping a poisoned worker
            environment, genuinely recovers.

    Frozen and built from plain data, so it pickles into workers and
    the schedule is identical on every replay.
    """

    chunks: tuple[int, ...]
    attempts: int = 1
    mode: str = MODE_RAISE
    hang_seconds: float = 5.0
    worker_only: bool = True

    def __post_init__(self) -> None:
        if self.mode not in CHUNK_MODES:
            raise ValidationError(
                f"chunk fault mode must be one of {CHUNK_MODES}, "
                f"got {self.mode!r}"
            )
        if self.attempts < 1:
            raise ValidationError(
                f"attempts must be >= 1, got {self.attempts}"
            )

    def should_fire(
        self, chunk_index: int, attempt: int, in_process: bool
    ) -> bool:
        if in_process and self.worker_only:
            return False
        return chunk_index in self.chunks and attempt <= self.attempts

    def fire(self, chunk_index: int, attempt: int) -> None:
        """Enact the fault (called from inside the chunk parse)."""
        if self.mode == MODE_EXIT:
            os._exit(13)
        if self.mode == MODE_HANG:
            time.sleep(self.hang_seconds)
            return
        raise InjectedFault(
            f"injected worker crash on chunk {chunk_index} "
            f"attempt {attempt}"
        )


# ----------------------------------------------------------------------
# IO faults (durability layer)
# ----------------------------------------------------------------------

#: IO fault kinds.
IO_EIO = "eio"
IO_ENOSPC = "enospc"
IO_FSYNC = "fsync"
IO_TORN = "torn"
IO_KINDS = (IO_EIO, IO_ENOSPC, IO_FSYNC, IO_TORN)

_IO_ERRNO = {
    IO_EIO: errno.EIO,
    IO_ENOSPC: errno.ENOSPC,
    IO_FSYNC: errno.EIO,
    IO_TORN: errno.EIO,
}


@dataclass
class IoFault:
    """One scripted IO failure.

    Args:
        kind: ``eio`` (the write fails outright), ``enospc`` (the
            device fills: bytes up to the offset land, the rest raise
            ``ENOSPC``), ``fsync`` (the Nth fsync call fails — data
            may sit in the page cache but durability is not
            guaranteed), ``torn`` (the write is cut mid-record at the
            scripted byte offset, modeling power loss during a
            multi-byte write).
        at_bytes: for ``eio``/``enospc``/``torn``: the cumulative
            byte-stream offset (across all writes through this
            :class:`FaultyIO`) at which the fault fires.
        at_call: for ``fsync``: the 1-based fsync call number from
            which the fault fires (later calls keep failing while
            ``times`` lasts, so a persistently broken device is
            ``times=N``).
        path_contains: only writes/fsyncs whose path contains this
            substring are eligible (``None`` matches every path).
        times: how many times the fault fires before disarming — 1
            models a transient hiccup a retry survives, a large value
            models a persistently failing device.
    """

    kind: str
    at_bytes: int = 0
    at_call: int = 1
    path_contains: str | None = None
    times: int = 1

    def __post_init__(self) -> None:
        if self.kind not in IO_KINDS:
            raise ValidationError(
                f"io fault kind must be one of {IO_KINDS}, "
                f"got {self.kind!r}"
            )
        if self.times < 1:
            raise ValidationError(f"times must be >= 1, got {self.times}")

    def matches_path(self, path: str) -> bool:
        return self.path_contains is None or self.path_contains in path


class FaultyIO(RealIO):
    """A :class:`~repro.resilience.durability.RealIO` that fails on cue.

    Wraps the real IO primitives, tracking the cumulative bytes
    written and fsync calls issued through it, and enacts the scripted
    :class:`IoFault` list deterministically: the same script against
    the same write sequence always fails at the same byte.  Torn and
    ``ENOSPC`` faults genuinely persist the partial prefix before
    raising, so recovery code faces real half-written files, not
    pretend ones.

    Use :func:`io_fault_schedule` to derive a reproducible script from
    a seed (the ``REPRO_IO_SEED`` CI matrix does).
    """

    def __init__(self, script: Sequence[IoFault] = ()) -> None:
        self.script = list(script)
        self.bytes_written = 0
        self.fsync_calls = 0
        self.fired: list[IoFault] = []
        self._paths: dict[int, str] = {}

    def open(self, path: str, mode: str):
        handle = super().open(path, mode)
        self._paths[id(handle)] = path
        return handle

    def _path_of(self, handle) -> str:
        return self._paths.get(id(handle), getattr(handle, "name", "?"))

    def _arm(self, fault: IoFault) -> None:
        fault.times -= 1
        self.fired.append(fault)
        if fault.times == 0:
            self.script.remove(fault)

    def write(self, handle, data: bytes) -> None:
        path = self._path_of(handle)
        start = self.bytes_written
        end = start + len(data)
        for fault in list(self.script):
            if fault.kind not in (IO_EIO, IO_ENOSPC, IO_TORN):
                continue
            if not fault.matches_path(path):
                continue
            if not (start <= fault.at_bytes < end):
                continue
            self._arm(fault)
            keep = fault.at_bytes - start
            if fault.kind != IO_EIO and keep:
                super().write(handle, data[:keep])
                super().flush(handle)
                self.bytes_written += keep
            raise OSError(
                _IO_ERRNO[fault.kind],
                f"injected {fault.kind} at byte {fault.at_bytes} "
                f"of {path}",
            )
        super().write(handle, data)
        self.bytes_written = end

    def fsync(self, handle) -> None:
        self.fsync_calls += 1
        path = self._path_of(handle)
        for fault in list(self.script):
            if fault.kind != IO_FSYNC or not fault.matches_path(path):
                continue
            if self.fsync_calls < fault.at_call:
                continue
            self._arm(fault)
            raise OSError(
                _IO_ERRNO[IO_FSYNC],
                f"injected fsync failure (call {self.fsync_calls}) "
                f"on {path}",
            )
        super().fsync(handle)


def io_fault_schedule(
    seed: int,
    *,
    n: int = 4,
    max_bytes: int = 4096,
    kinds: Sequence[str] = IO_KINDS,
    path_contains: str | None = None,
    times: int = 1,
) -> list[IoFault]:
    """A reproducible IO fault script drawn from *seed*.

    The same seed always yields the same script, so a failing
    durability test replays bit-for-bit.  Faults are spaced so a
    single-retry writer can survive each one individually: byte
    offsets land in disjoint windows at least half a window apart,
    and fsync call numbers keep a gap of two so the retry's fsync
    falls between faults rather than on the next one.  Stacking
    ``times`` (or tightening the spacing by hand) is how tests model
    a persistently failing device.
    """
    if n < 1:
        raise ValidationError(f"n must be >= 1, got {n}")
    for kind in kinds:
        if kind not in IO_KINDS:
            raise ValidationError(
                f"unknown io fault kind {kind!r}; choose from {IO_KINDS}"
            )
    rng = Random(seed)
    window = max(1024, max_bytes // n)
    script = []
    fsync_call = 0
    for index in range(n):
        kind = rng.choice(list(kinds))
        fsync_call += rng.randint(2, 5)
        script.append(
            IoFault(
                kind=kind,
                at_bytes=index * window + rng.randrange(window // 2),
                at_call=fsync_call,
                path_contains=path_contains,
                times=times,
            )
        )
    return script


# ----------------------------------------------------------------------
# Connection faults (service front end)
# ----------------------------------------------------------------------

#: Connection fault kinds.
CONN_DISCONNECT = "disconnect"
CONN_PARTIAL = "partial"
CONN_SLOW = "slow"
CONN_STORM = "storm"
CONN_KINDS = (CONN_DISCONNECT, CONN_PARTIAL, CONN_SLOW, CONN_STORM)


@dataclass(frozen=True)
class ConnectionFault:
    """One scripted misbehavior of a network log producer.

    Args:
        kind: ``disconnect`` (the socket closes mid-line; the client
            reconnects and resends the whole line, so the server sees
            a dangling partial *and* the full line again),
            ``partial`` (the socket closes mid-line and the tail is
            *lost* — the line never arrives whole, modeling a crashed
            writer), ``slow`` (the line is written in two halves with
            a stall between them, modeling a slow writer the server
            must not block other tenants on), ``storm`` (the client
            drops and re-establishes the connection ``repeats`` times
            back-to-back before sending the line normally).
        at_line: 0-based index (within one sender's line sequence) at
            which the fault fires.
        cut_fraction: for ``disconnect``/``partial``: where within the
            encoded line the cut lands, as a fraction of its length.
        delay_seconds: for ``slow``: the mid-line stall.
        repeats: for ``storm``: how many rapid reconnect cycles.
    """

    kind: str
    at_line: int
    cut_fraction: float = 0.5
    delay_seconds: float = 0.05
    repeats: int = 3

    def __post_init__(self) -> None:
        if self.kind not in CONN_KINDS:
            raise ValidationError(
                f"connection fault kind must be one of {CONN_KINDS}, "
                f"got {self.kind!r}"
            )
        if self.at_line < 0:
            raise ValidationError(
                f"at_line must be >= 0, got {self.at_line}"
            )
        if not 0.0 <= self.cut_fraction <= 1.0:
            raise ValidationError(
                f"cut_fraction must be in [0, 1], got {self.cut_fraction}"
            )
        if self.repeats < 1:
            raise ValidationError(
                f"repeats must be >= 1, got {self.repeats}"
            )


def connection_fault_schedule(
    seed: int,
    *,
    n: int = 4,
    span: int = 200,
    kinds: Sequence[str] = CONN_KINDS,
    delay_seconds: float = 0.02,
) -> list[ConnectionFault]:
    """A reproducible connection fault script drawn from *seed*.

    Fault lines land in disjoint windows of ``span // n`` lines, so
    faults never stack on one line and the same seed replays the same
    script bit-for-bit.  *span* should be the number of lines the
    faulty sender will send.
    """
    if n < 1:
        raise ValidationError(f"n must be >= 1, got {n}")
    if span < n:
        raise ValidationError(
            f"span must be >= n ({n}), got {span}"
        )
    for kind in kinds:
        if kind not in CONN_KINDS:
            raise ValidationError(
                f"unknown connection fault kind {kind!r}; "
                f"choose from {CONN_KINDS}"
            )
    rng = Random(seed)
    window = span // n
    return [
        ConnectionFault(
            kind=rng.choice(list(kinds)),
            at_line=index * window + rng.randrange(window),
            cut_fraction=rng.uniform(0.2, 0.8),
            delay_seconds=delay_seconds,
            repeats=rng.randint(2, 4),
        )
        for index in range(n)
    ]


class FaultyLineSender:
    """A misbehaving TCP log producer, scripted by :class:`ConnectionFault`.

    Connects to the ingestion service's line front end and sends each
    line terminated by ``\\n``, enacting the script deterministically:
    the same script against the same lines always misbehaves at the
    same bytes.  Tracks what actually happened so tests can assert on
    it (``fired``, ``reconnects``, ``lost_lines``).

    The sender is the *client* half of connection fault injection: the
    server under test must survive dangling partials (quarantining the
    fragment, never crashing the tenant's neighbors), absorb reconnect
    storms, and keep slow writers from stalling other connections.
    """

    def __init__(
        self,
        host: str,
        port: int,
        script: Sequence[ConnectionFault] = (),
        *,
        connect_timeout: float = 5.0,
    ) -> None:
        self.host = host
        self.port = port
        self.script = {fault.at_line: fault for fault in script}
        if len(self.script) != len(script):
            raise ValidationError(
                "connection fault script has two faults on one line; "
                "use disjoint at_line values"
            )
        self.connect_timeout = connect_timeout
        self.fired: list[ConnectionFault] = []
        self.reconnects = 0
        self.lost_lines = 0
        self._sock: socket.socket | None = None

    def _connect(self) -> socket.socket:
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.connect_timeout
        )
        self._sock = sock
        return sock

    def _drop(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def _reconnect(self) -> socket.socket:
        self._drop()
        self.reconnects += 1
        return self._connect()

    def send_lines(self, lines: Iterable[str]) -> dict:
        """Send *lines*, misbehaving on schedule; returns a summary.

        Returns ``{"sent": n, "lost": n, "fired": n, "reconnects": n}``
        where ``sent`` counts lines the server eventually received
        whole and ``lost`` counts ``partial``-fault lines whose tail
        never arrived.
        """
        sock = self._sock or self._connect()
        sent = 0
        try:
            for index, line in enumerate(lines):
                payload = line.encode("utf-8") + b"\n"
                fault = self.script.get(index)
                if fault is None:
                    sock.sendall(payload)
                    sent += 1
                    continue
                self.fired.append(fault)
                cut = max(1, int(len(payload) * fault.cut_fraction))
                if fault.kind == CONN_DISCONNECT:
                    sock.sendall(payload[:cut])
                    sock = self._reconnect()
                    sock.sendall(payload)
                    sent += 1
                elif fault.kind == CONN_PARTIAL:
                    sock.sendall(payload[:cut])
                    sock = self._reconnect()
                    self.lost_lines += 1
                elif fault.kind == CONN_SLOW:
                    sock.sendall(payload[:cut])
                    time.sleep(fault.delay_seconds)
                    sock.sendall(payload[cut:])
                    sent += 1
                else:  # storm
                    for _ in range(fault.repeats):
                        sock = self._reconnect()
                    sock.sendall(payload)
                    sent += 1
        finally:
            self.close()
        return {
            "sent": sent,
            "lost": self.lost_lines,
            "fired": len(self.fired),
            "reconnects": self.reconnects,
        }

    def close(self) -> None:
        self._drop()


# ----------------------------------------------------------------------
# Process faults (shard worker subprocesses)
# ----------------------------------------------------------------------

#: Process fault kinds.
PROC_KILL = "kill"
PROC_EXIT = "exit"
PROC_HANG = "hang"
PROC_SLOW_START = "slow-start"
PROC_KINDS = (PROC_KILL, PROC_EXIT, PROC_HANG, PROC_SLOW_START)


@dataclass(frozen=True)
class ProcessFault:
    """Scheduled fault enacted *inside* a shard worker process.

    Unlike :class:`ChunkFault` (which sabotages one stateless chunk
    parse), a process fault kills, wedges, or delays a long-lived
    :class:`~repro.service.workers.ShardWorker` — the thing the
    supervisor's watchdog, restart backoff, and poison-pill protocol
    exist to survive.

    Args:
        kind: ``kill`` (``SIGKILL`` self — no cleanup, no exit code
            beyond the signal), ``exit`` (hard nonzero ``os._exit``),
            ``hang`` (stop heartbeating and sleep ``hang_seconds`` —
            trips the parent watchdog), or ``slow-start`` (sleep
            ``delay_seconds`` before the worker signals ready).
        at_record: global record index (the shard's stream position)
            at which ``kill``/``exit``/``hang`` fire, checked at feed
            time so attribution is exact.  Ignored by ``slow-start``.
        at_drain: fire when the drain request is processed (before the
            shard finalizes) instead of at a record index.
        lives: worker incarnation numbers (1-based) in which the fault
            fires.  ``lives=(1,)`` models a transient crash the replay
            survives; ``lives=(1, 2, 3)`` at one record models a
            poison pill that keeps killing its replayer.
        exit_code / hang_seconds / delay_seconds: kind parameters.

    Frozen plain data: pickles into the worker spec and replays
    bit-for-bit.
    """

    kind: str
    at_record: int = 0
    at_drain: bool = False
    lives: tuple[int, ...] = (1,)
    exit_code: int = 3
    hang_seconds: float = 60.0
    delay_seconds: float = 0.5

    def __post_init__(self) -> None:
        if self.kind not in PROC_KINDS:
            raise ValidationError(
                f"process fault kind must be one of {PROC_KINDS}, "
                f"got {self.kind!r}"
            )
        if self.at_record < 0:
            raise ValidationError(
                f"at_record must be >= 0, got {self.at_record}"
            )
        if not self.lives or any(life < 1 for life in self.lives):
            raise ValidationError(
                f"lives must be non-empty 1-based incarnations, "
                f"got {self.lives!r}"
            )
        if self.exit_code == 0:
            raise ValidationError("exit fault must use a nonzero exit code")

    def fires_at_start(self, life: int) -> bool:
        return self.kind == PROC_SLOW_START and life in self.lives

    def should_fire(self, record_index: int, life: int) -> bool:
        """Fire at feed time for record *record_index* in *life*?"""
        if self.kind == PROC_SLOW_START or self.at_drain:
            return False
        return record_index == self.at_record and life in self.lives

    def should_fire_at_drain(self, life: int) -> bool:
        if self.kind == PROC_SLOW_START or not self.at_drain:
            return False
        return life in self.lives

    def fire(self) -> None:
        """Enact the fault (called from inside the worker process)."""
        if self.kind == PROC_KILL:
            os.kill(os.getpid(), _SIGKILL)
        elif self.kind == PROC_EXIT:
            os._exit(self.exit_code)
        elif self.kind == PROC_HANG:
            time.sleep(self.hang_seconds)
        else:  # slow-start: enacted by the worker before ready
            time.sleep(self.delay_seconds)


def process_fault_schedule(
    seed: int,
    *,
    n: int = 3,
    span: int = 200,
    kinds: Sequence[str] = (PROC_KILL, PROC_EXIT, PROC_HANG),
    lives: tuple[int, ...] | None = None,
    hang_seconds: float = 60.0,
) -> list[ProcessFault]:
    """A reproducible per-tenant crash script drawn from *seed*.

    Fault records land in disjoint windows of ``span // n`` records
    (same discipline as :func:`connection_fault_schedule`), so each
    crash resolves — restart, careful replay — before the next one
    lands, and the same seed replays the same script bit-for-bit.
    *span* should be the number of records the tenant will receive.

    By default fault *i* is armed in worker life ``i + 1``: the first
    fault kills the original worker, the second kills its replacement
    once it has replayed past the first window, and so on — every
    scheduled fault actually fires.  Pass *lives* explicitly to arm
    all faults in the same incarnations instead (e.g. a poison pill).
    """
    if n < 1:
        raise ValidationError(f"n must be >= 1, got {n}")
    if span < n:
        raise ValidationError(f"span must be >= n ({n}), got {span}")
    for kind in kinds:
        if kind not in PROC_KINDS or kind == PROC_SLOW_START:
            raise ValidationError(
                f"unschedulable process fault kind {kind!r}; "
                f"choose from {(PROC_KILL, PROC_EXIT, PROC_HANG)}"
            )
    rng = Random(seed)
    window = span // n
    return [
        ProcessFault(
            kind=rng.choice(list(kinds)),
            at_record=index * window + rng.randrange(window),
            lives=lives if lives is not None else (index + 1,),
            exit_code=rng.randint(1, 125),
            hang_seconds=hang_seconds,
        )
        for index in range(n)
    ]


# ----------------------------------------------------------------------
# Network faults (exactly-once delivery layer, protocol v2)
# ----------------------------------------------------------------------

#: Network fault kinds.
NET_PARTITION = "partition"
NET_HALF_CLOSE = "half-close"
NET_DUPLICATE = "duplicate"
NET_REORDER = "reorder"
NET_ACK_DROP = "ack-drop"
NET_KINDS = (
    NET_PARTITION,
    NET_HALF_CLOSE,
    NET_DUPLICATE,
    NET_REORDER,
    NET_ACK_DROP,
)


@dataclass(frozen=True)
class NetworkFault:
    """One scripted network-level misbehavior on a v2 delivery stream.

    Where :class:`ConnectionFault` models a *misbehaving producer*
    against the fire-and-forget v1 front end, a ``NetworkFault``
    models the *network itself* misbehaving under a client that is
    trying to be correct — the
    :class:`~repro.service.client.DurableSender` enacts the script and
    must still converge to exactly-once server-side effects.

    Args:
        kind: ``partition`` (the connection drops mid-line; the
            sender reconnects and resends its unacked suffix — the
            server sees a dangling partial plus duplicates),
            ``half-close`` (the write side closes mid-line and the
            tail of that transmission is lost; the spooled line is
            resent whole on reconnect), ``duplicate`` (the encoded
            line is delivered ``repeats`` times back-to-back — a
            duplicated packet), ``reorder`` (the line is held back
            and delivered *after* its successor, within the server's
            holdback window), ``ack-drop`` (the next ``drop_acks``
            acknowledgement lines the client reads are discarded, as
            if lost in flight — forcing a redundant resend the server
            must suppress).
        at_line: 0-based index within the sender's transmission
            sequence at which the fault fires.
        cut_fraction: for ``partition``/``half-close``: where within
            the encoded line the cut lands.
        repeats: for ``duplicate``: total copies delivered.
        drop_acks: for ``ack-drop``: acknowledgement lines discarded.
    """

    kind: str
    at_line: int
    cut_fraction: float = 0.5
    repeats: int = 2
    drop_acks: int = 2

    def __post_init__(self) -> None:
        if self.kind not in NET_KINDS:
            raise ValidationError(
                f"network fault kind must be one of {NET_KINDS}, "
                f"got {self.kind!r}"
            )
        if self.at_line < 0:
            raise ValidationError(
                f"at_line must be >= 0, got {self.at_line}"
            )
        if not 0.0 <= self.cut_fraction <= 1.0:
            raise ValidationError(
                f"cut_fraction must be in [0, 1], got {self.cut_fraction}"
            )
        if self.repeats < 2:
            raise ValidationError(
                f"repeats must be >= 2 (one copy is not a duplicate), "
                f"got {self.repeats}"
            )
        if self.drop_acks < 1:
            raise ValidationError(
                f"drop_acks must be >= 1, got {self.drop_acks}"
            )


def network_fault_schedule(
    seed: int,
    *,
    n: int = 5,
    span: int = 200,
    kinds: Sequence[str] = NET_KINDS,
) -> list[NetworkFault]:
    """A reproducible network fault storm drawn from *seed*.

    Fault lines land in disjoint windows of ``span // n`` lines (the
    same discipline as :func:`connection_fault_schedule`), so each
    fault resolves before the next fires and the same seed replays the
    same storm bit-for-bit.  Kinds are assigned by shuffled repeated
    cycle rather than independent draws, so whenever ``n >=
    len(kinds)`` every kind appears at least once — a certification
    run that claims to cover partitions, duplicates, reorders, and ack
    drops actually does.
    """
    if n < 1:
        raise ValidationError(f"n must be >= 1, got {n}")
    if span < n:
        raise ValidationError(f"span must be >= n ({n}), got {span}")
    for kind in kinds:
        if kind not in NET_KINDS:
            raise ValidationError(
                f"unknown network fault kind {kind!r}; "
                f"choose from {NET_KINDS}"
            )
    rng = Random(seed)
    window = span // n
    assigned: list[str] = []
    while len(assigned) < n:
        cycle = list(kinds)
        rng.shuffle(cycle)
        assigned.extend(cycle)
    return [
        NetworkFault(
            kind=assigned[index],
            at_line=index * window + rng.randrange(window),
            cut_fraction=rng.uniform(0.2, 0.8),
            repeats=rng.randint(2, 3),
            drop_acks=rng.randint(1, 3),
        )
        for index in range(n)
    ]


def crash_storm_schedule(
    seed: int,
    tenants: Sequence[str],
    *,
    faults_per_tenant: int = 2,
    span: int = 200,
    kinds: Sequence[str] = (PROC_KILL, PROC_EXIT, PROC_HANG),
    hang_seconds: float = 60.0,
) -> dict[str, list[ProcessFault]]:
    """Per-tenant crash scripts for a whole-service chaos run.

    Each tenant's sub-seed mixes *seed* with the tenant key, so adding
    a tenant does not reshuffle the others' scripts.
    """
    if not tenants:
        raise ValidationError("crash storm needs at least one tenant")
    return {
        tenant: process_fault_schedule(
            seed ^ (zlib.crc32(tenant.encode("utf-8")) & 0x7FFFFFFF),
            n=faults_per_tenant,
            span=span,
            kinds=kinds,
            hang_seconds=hang_seconds,
        )
        for tenant in tenants
    }
