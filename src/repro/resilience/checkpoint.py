"""Checkpoint/resume for streaming parse sessions.

A streaming run killed mid-stream should not have to start over: the
engine's mutable state (slot table, template cache, miss buffer,
retained assignments) plus the live mining accumulator serialize to a
single JSON checkpoint file, and a fresh engine restored from it —
fed the *remaining* records — finalizes to the same result as an
uninterrupted run.  Under the ``prefix`` flush policy that identity is
byte-exact (same ``.events`` / ``.structured`` output), because the
final full re-parse sees the identical record sequence either way; the
resilience test suite certifies it with the equivalence harness.

The file format is versioned JSON written through the durability
layer's full crash-consistency sequence — temp file, ``fsync`` of the
temp file *before* ``os.replace``, then ``fsync`` of the parent
directory — so a crash (or power loss) during checkpointing leaves
the previous checkpoint intact and a completed rename actually
sticks.  Code-valued engine parameters (the parser factory,
preprocessor, callbacks) are not serialized — the resume path takes
them as arguments and the saved configuration is cross-checked against
the rebuilt engine, failing with
:class:`~repro.common.errors.CheckpointError` on any mismatch.

Checkpoints also carry the byte/record offsets of the run's
append-mode JSONL artifacts (quarantine sinks) at save time, so a
resume can reconcile those files — truncating records written after
the checkpoint that the replayed stream will re-emit — via
:func:`~repro.resilience.durability.reconcile_jsonl`.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.common.errors import ArtifactWriteError, CheckpointError
from repro.resilience.durability import RealIO, atomic_write_text

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.mining.event_matrix import EventMatrixAccumulator
    from repro.parsers.parallel import ParserFactory
    from repro.parsers.preprocess import Preprocessor
    from repro.streaming.engine import StreamingParser

#: Bump when the checkpoint schema changes incompatibly.
#: v2: engine config gained backpressure fields (max_pending/overflow).
#: v3: added per-artifact JSONL offsets for resume reconciliation.
CHECKPOINT_VERSION = 3


@dataclass
class StreamCheckpoint:
    """One serialized stream position.

    Attributes:
        version: schema version (must equal :data:`CHECKPOINT_VERSION`).
        parser: name of the wrapped batch parser (informational; used
            for error messages, not identity).
        source: where the stream came from (path or dataset spec), so
            a resume can rebuild the same record iterator.
        records_consumed: how many records were pulled from the source
            iterator — including ones the engine's error policy
            rejected — i.e. how many a resume must skip.
        engine: :meth:`~repro.streaming.engine.StreamingParser.checkpoint_state`
            snapshot.
        accumulator: live mining accumulator snapshot, or ``None``.
        artifacts: ``{path: {"bytes": int, "records": int}}`` offsets
            of the run's append-mode JSONL artifacts at save time,
            used by resume to truncate post-checkpoint records the
            replayed stream re-emits.
        delivery: exactly-once delivery state (protocol v2), or
            ``None``: ``{"clients": {client_id: high}}`` — the
            highest-contiguous acknowledged sequence per client, so a
            resumed shard suppresses resends of lines it already
            owns.  Optional and backward-compatible (older
            checkpoints simply lack it), so no version bump.
    """

    version: int
    parser: str | None
    source: str | None
    records_consumed: int
    engine: dict
    accumulator: dict | None = None
    artifacts: dict = field(default_factory=dict)
    delivery: dict | None = None

    def to_dict(self) -> dict:
        data = {
            "version": self.version,
            "parser": self.parser,
            "source": self.source,
            "records_consumed": self.records_consumed,
            "engine": self.engine,
            "accumulator": self.accumulator,
            "artifacts": self.artifacts,
        }
        if self.delivery is not None:
            data["delivery"] = self.delivery
        return data


def _note_checkpoint_op(
    telemetry, op: str, path: str, seconds: float, **fields
) -> None:
    """Count one checkpoint save/load and put it on the timeline."""
    telemetry.metrics.get("repro_checkpoint_ops_total").labels(op=op).inc()
    telemetry.metrics.get("repro_checkpoint_seconds").labels(op=op).observe(
        seconds
    )
    telemetry.events.emit(
        "checkpoint", op=op, path=path, seconds=round(seconds, 6), **fields
    )


def save_checkpoint(
    path: str,
    engine: "StreamingParser",
    *,
    records_consumed: int,
    parser: str | None = None,
    source: str | None = None,
    accumulator: "EventMatrixAccumulator | None" = None,
    artifacts: dict | None = None,
    delivery: dict | None = None,
    io: "RealIO | None" = None,
    telemetry=None,
) -> StreamCheckpoint:
    """Snapshot *engine* (and optional accumulator) to *path* atomically.

    The write goes through :func:`atomic_write_text` (temp file,
    fsync, rename, parent-dir fsync), so a crash — even a power loss —
    at any point leaves either the previous checkpoint or the new one,
    never a torn hybrid.  Returns the in-memory
    :class:`StreamCheckpoint` that was written.  With *telemetry*, the
    save is counted, its latency observed, and a ``checkpoint`` event
    lands on the timeline.
    """
    started = time.perf_counter()
    checkpoint = StreamCheckpoint(
        version=CHECKPOINT_VERSION,
        parser=parser,
        source=source,
        records_consumed=records_consumed,
        engine=engine.checkpoint_state(),
        accumulator=accumulator.state() if accumulator is not None else None,
        artifacts=dict(artifacts or {}),
        delivery=dict(delivery) if delivery else None,
    )
    try:
        atomic_write_text(
            path, json.dumps(checkpoint.to_dict()), io=io, retries=1
        )
    except (OSError, ArtifactWriteError) as error:
        raise CheckpointError(
            f"could not write checkpoint to {path}: {error}"
        ) from error
    if telemetry is not None:
        _note_checkpoint_op(
            telemetry,
            "save",
            path,
            time.perf_counter() - started,
            records_consumed=records_consumed,
        )
    return checkpoint


def load_checkpoint(path: str, telemetry=None) -> StreamCheckpoint:
    """Read and validate a checkpoint file.

    Raises :class:`~repro.common.errors.CheckpointError` when the file
    is missing, is not valid JSON, lacks required fields, or was
    written by an incompatible schema version.
    """
    started = time.perf_counter()
    if not os.path.exists(path):
        raise CheckpointError(f"checkpoint file not found: {path}")
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise CheckpointError(
            f"could not read checkpoint {path}: {error}"
        ) from error
    if not isinstance(data, dict):
        raise CheckpointError(
            f"checkpoint {path} does not hold a JSON object"
        )
    version = data.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {path} has schema version {version!r}; "
            f"this runtime reads version {CHECKPOINT_VERSION}"
        )
    try:
        checkpoint = StreamCheckpoint(
            version=version,
            parser=data.get("parser"),
            source=data.get("source"),
            records_consumed=data["records_consumed"],
            engine=data["engine"],
            accumulator=data.get("accumulator"),
            artifacts=data.get("artifacts") or {},
            delivery=data.get("delivery"),
        )
    except KeyError as error:
        raise CheckpointError(
            f"checkpoint {path} is missing required field {error}"
        ) from error
    if telemetry is not None:
        _note_checkpoint_op(
            telemetry,
            "load",
            path,
            time.perf_counter() - started,
            records_consumed=checkpoint.records_consumed,
        )
    return checkpoint


def restore_streaming_parser(
    checkpoint: StreamCheckpoint,
    factory: "ParserFactory",
    *,
    preprocessor: "Preprocessor | None" = None,
    workers: int = 1,
    chunk_size: int = 10_000,
    error_policy=None,
    quarantine=None,
    max_record_len: int | None = None,
    source_label: str = "<stream>",
    telemetry=None,
) -> "StreamingParser":
    """Build a fresh engine positioned exactly at *checkpoint*.

    The engine configuration is taken from the checkpoint itself; the
    caller supplies only the code-valued pieces (factory,
    preprocessor, error policy) — which must be equivalent to the ones
    the checkpointed run used for the resumed result to match.
    """
    from repro.streaming.engine import StreamingParser

    config = checkpoint.engine.get("config")
    if not isinstance(config, dict):
        raise CheckpointError("checkpoint lacks an engine configuration")
    try:
        engine = StreamingParser(
            factory,
            flush_policy=config["flush_policy"],
            flush_size=config["flush_size"],
            cache_capacity=config["cache_capacity"],
            exact_capacity=config["exact_capacity"],
            max_flush_retries=config["max_flush_retries"],
            retain=config["retain"],
            max_pending=config.get("max_pending"),
            overflow=config.get("overflow", "block"),
            workers=workers,
            chunk_size=chunk_size,
            preprocessor=preprocessor,
            error_policy=error_policy,
            quarantine=quarantine,
            max_record_len=max_record_len,
            source_label=source_label,
            telemetry=telemetry,
        )
    except KeyError as error:
        raise CheckpointError(
            f"checkpoint engine configuration is missing {error}"
        ) from error
    engine.restore_state(checkpoint.engine)
    return engine


def restore_accumulator(
    checkpoint: StreamCheckpoint,
) -> "EventMatrixAccumulator | None":
    """Rebuild the live mining accumulator saved in *checkpoint*."""
    if checkpoint.accumulator is None:
        return None
    from repro.mining.event_matrix import EventMatrixAccumulator

    accumulator = EventMatrixAccumulator()
    accumulator.restore_state(checkpoint.accumulator)
    return accumulator
