"""Supervised parsing: deadlines, retries, circuit breakers, fallbacks.

The paper evaluates four parsers with sharply different failure
envelopes — LKE's clustering is quadratic and routinely infeasible on
full datasets (Finding 3), while SLCT degrades gracefully — so a
production pipeline should *chain* them: try the accurate parser under
a deadline, fall back to the cheap one when it times out or crashes.
:class:`ParserSupervisor` implements that chain:

* each parse attempt runs under an optional **wall-clock deadline**
  (enforced by a daemon worker thread; an expired parse is abandoned
  and reported as :class:`~repro.common.errors.ParserTimeoutError`);
* failures are retried with **exponential backoff** per
  :class:`RetryPolicy` (deterministic — no jitter — so tests can
  assert the exact sleep schedule);
* a per-parser :class:`CircuitBreaker` skips a parser that keeps
  failing, so a chain consulted repeatedly (e.g. once per stream
  flush) stops paying the deadline for a known-bad stage until its
  cooldown expires; and
* every attempt — success, error, timeout, or breaker skip — lands in
  a structured :class:`FailureReport` so "what happened" is never a
  matter of scrolling logs.

All time sources (``sleep``, ``clock``) are injectable, which the test
suite uses to drive breaker transitions and backoff schedules without
real waiting.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from collections.abc import Callable, Sequence

from random import Random

from repro.common.errors import (
    BudgetExceededError,
    FallbackExhaustedError,
    ParserTimeoutError,
    ValidationError,
)
from repro.common.types import LogRecord, ParseResult
from repro.observability.tracing import SPAN_PARSER_CALL
from repro.parsers.parallel import ParserFactory

#: Attempt status tags.
STATUS_OK = "ok"
STATUS_ERROR = "error"
STATUS_TIMEOUT = "timeout"
STATUS_SKIPPED = "skipped"
STATUS_BUDGET = "budget"


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff schedule, deterministic by default.

    ``delay(1)`` is the wait after the first failure:
    ``base_delay * backoff**(attempt-1)``, capped at ``max_delay``.
    ``attempts`` is the total number of tries (1 = no retries).

    ``jitter`` spreads delays uniformly over
    ``[d * (1 - jitter), d * (1 + jitter)]`` (still capped at
    ``max_delay``) to decorrelate retry storms across concurrent
    sessions; it only applies when :meth:`delay` is given an *rng*, so
    the default schedule stays exactly assertable in tests.
    """

    attempts: int = 3
    base_delay: float = 0.05
    backoff: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValidationError(
                f"retry attempts must be >= 1, got {self.attempts}"
            )
        if self.base_delay < 0 or self.max_delay < 0 or self.backoff < 1:
            raise ValidationError(
                "retry delays must be >= 0 and backoff >= 1"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ValidationError(
                f"jitter must be in [0, 1), got {self.jitter}"
            )

    def delay(self, attempt: int, rng: Random | None = None) -> float:
        """Seconds to wait after failed attempt number *attempt* (1-based).

        With ``jitter > 0`` and an *rng*, the returned delay is drawn
        uniformly from ``[d*(1-jitter), d*(1+jitter)]`` where ``d`` is
        the deterministic exponential delay; the result never exceeds
        ``max_delay`` and never drops below 0.
        """
        base = min(
            self.max_delay, self.base_delay * self.backoff ** (attempt - 1)
        )
        if self.jitter == 0.0 or rng is None:
            return base
        spread = base * self.jitter
        return max(0.0, min(self.max_delay, base + (2 * rng.random() - 1) * spread))


class CircuitBreaker:
    """Classic closed → open → half-open breaker around one parser.

    Args:
        failure_threshold: consecutive failures that trip the breaker.
        reset_timeout: seconds the breaker stays open before allowing
            one half-open probe.
        clock: monotonic time source (injectable for tests).
        on_transition: optional callback ``(old_state, new_state)``
            fired whenever the stored state changes (trip, re-open,
            close).  The supervisor uses it to count transitions and
            put them on the event timeline.

    State machine: ``closed`` admits every call; *failure_threshold*
    consecutive failures move to ``open``, which rejects calls until
    *reset_timeout* has elapsed; the next call then runs as a
    ``half-open`` probe — success closes the breaker, failure re-opens
    it (and restarts the cooldown).
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_timeout: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Callable[[str, str], None] | None = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValidationError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_timeout < 0:
            raise ValidationError(
                f"reset_timeout must be >= 0, got {reset_timeout}"
            )
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._clock = clock
        self.on_transition = on_transition
        self._failures = 0
        self._state = self.CLOSED
        self._opened_at: float | None = None

    def _set_state(self, new_state: str) -> None:
        old_state = self._state
        self._state = new_state
        if old_state != new_state and self.on_transition is not None:
            self.on_transition(old_state, new_state)

    @property
    def state(self) -> str:
        if (
            self._state == self.OPEN
            and self._opened_at is not None
            and self._clock() - self._opened_at >= self.reset_timeout
        ):
            return self.HALF_OPEN
        return self._state

    def allow(self) -> bool:
        """May the protected call run right now?"""
        return self.state != self.OPEN

    def record_success(self) -> None:
        self._failures = 0
        self._set_state(self.CLOSED)
        self._opened_at = None

    def record_failure(self) -> None:
        self._failures += 1
        if self._state == self.OPEN or self._failures >= self.failure_threshold:
            # A half-open probe failing re-opens immediately (the
            # cooldown restarts, so _opened_at moves even when the
            # stored state was already OPEN).
            self._set_state(self.OPEN)
            self._opened_at = self._clock()


@dataclass(frozen=True)
class Attempt:
    """One supervised parse attempt (or breaker skip)."""

    parser: str
    attempt: int
    status: str
    seconds: float = 0.0
    error: str | None = None

    def describe(self) -> str:
        tail = f": {self.error}" if self.error else ""
        return (
            f"{self.parser} attempt {self.attempt}: {self.status} "
            f"({self.seconds:.3f}s){tail}"
        )

    def to_record(self) -> dict:
        """Structured-event-log shape (common ``kind`` envelope)."""
        return {
            "kind": "supervisor_attempt",
            "parser": self.parser,
            "attempt": self.attempt,
            "status": self.status,
            "seconds": round(self.seconds, 6),
            "error": self.error,
        }


@dataclass
class FailureReport:
    """Structured record of every attempt a supervised parse made.

    ``leaked_threads`` counts deadline-expired parses whose worker
    thread was still running after the grace-period join — abandoned
    daemon threads that keep burning CPU until their parse returns.
    Callers sizing thread pools or diagnosing runaway load need this
    number; before it existed, abandoned threads were invisible.
    """

    attempts: list[Attempt] = field(default_factory=list)
    winner: str | None = None
    leaked_threads: int = 0

    @property
    def failures(self) -> list[Attempt]:
        return [a for a in self.attempts if a.status not in (STATUS_OK,)]

    @property
    def timed_out(self) -> list[Attempt]:
        return [a for a in self.attempts if a.status == STATUS_TIMEOUT]

    @property
    def skipped(self) -> list[Attempt]:
        return [a for a in self.attempts if a.status == STATUS_SKIPPED]

    @property
    def budget_breached(self) -> list[Attempt]:
        return [a for a in self.attempts if a.status == STATUS_BUDGET]

    def describe(self) -> str:
        lines = [a.describe() for a in self.attempts]
        outcome = (
            f"winner: {self.winner}" if self.winner else "no parser succeeded"
        )
        if self.leaked_threads:
            outcome += f" ({self.leaked_threads} abandoned worker thread(s))"
        return "\n".join([*lines, outcome])

    def to_record(self) -> dict:
        """Structured-event-log shape (common ``kind`` envelope).

        The same contract :meth:`DegradationEvent.to_record` follows,
        so fallback outcomes, ladder steps, and quarantine records
        interleave in one timeline file.
        """
        return {
            "kind": "fallback_report",
            "winner": self.winner,
            "failures": len(self.failures),
            "leaked_threads": self.leaked_threads,
            "attempts": [a.to_record() for a in self.attempts],
        }


@dataclass(frozen=True)
class SupervisedResult:
    """Outcome of :meth:`ParserSupervisor.parse`."""

    result: ParseResult
    parser: str
    report: FailureReport


def run_with_deadline(
    fn: Callable[[], ParseResult],
    timeout: float | None,
    *,
    grace: float = 0.1,
) -> ParseResult:
    """Run *fn*, raising :class:`ParserTimeoutError` past *timeout*.

    The call executes in a daemon thread so an overrunning parse can
    be abandoned: the thread keeps burning its CPU until the parse
    returns, but the supervisor (and the process at exit) no longer
    waits for it.  That is the honest best available in-process —
    Python offers no safe preemptive cancellation — and mirrors how
    the chunked parallel backend abandons hung worker processes.

    A deadline-expired worker gets one more ``grace``-second join
    before being abandoned (many "overruns" are parses finishing just
    past the line; the grace join reaps them instead of leaking a
    thread).  When the thread survives the grace join too, the raised
    :class:`ParserTimeoutError` carries ``leaked_thread=True`` so
    callers — foremost :class:`ParserSupervisor`, which totals them in
    :attr:`FailureReport.leaked_threads` — can account for the CPU
    still burning in the background.
    """
    if timeout is None:
        return fn()
    box: dict[str, object] = {}

    def target() -> None:
        try:
            box["result"] = fn()
        except BaseException as error:  # noqa: BLE001 - re-raised below
            box["error"] = error

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    thread.join(timeout)
    if thread.is_alive() and grace > 0:
        thread.join(grace)
    if thread.is_alive():
        raise ParserTimeoutError(
            f"parse exceeded its {timeout:.3f}s deadline "
            f"(worker thread abandoned after {grace:.3f}s grace)",
            leaked_thread=True,
        )
    if "error" in box:
        raise box["error"]  # type: ignore[misc]
    return box["result"]  # type: ignore[return-value]


class ParserSupervisor:
    """Run a parse down a fallback chain of supervised parsers.

    Args:
        chain: ordered ``(name, factory)`` pairs — the preferred parser
            first, fallbacks after it.
        timeout: wall-clock deadline per attempt (``None`` = no limit).
        retry: per-parser retry/backoff policy.
        breaker_threshold / breaker_reset: circuit breaker parameters,
            one breaker per chain entry, persistent across
            :meth:`parse` calls.
        sleep / clock: injectable time sources for tests.
        rng: random source for retry jitter; ``None`` (default) keeps
            the backoff schedule fully deterministic even when the
            retry policy declares a nonzero ``jitter``.
        telemetry: optional
            :class:`~repro.observability.telemetry.Telemetry` handle.
            When set, every attempt is counted by parser and status,
            runs inside a ``parser_call`` span, breaker state changes
            are counted and land on the event timeline, and each
            :meth:`parse` emits its :class:`FailureReport` as a
            ``fallback_report`` timeline event.

    A parse attempt that raises
    :class:`~repro.common.errors.BudgetExceededError` (a hard resource
    budget breached mid-parse — see :mod:`repro.degradation`) is
    recorded with status ``budget`` and moves straight to the next
    chain entry without retrying: a blown budget does not heal by
    running the same parser again.

    :meth:`parse` returns a :class:`SupervisedResult` from the first
    chain entry that succeeds, or raises
    :class:`~repro.common.errors.FallbackExhaustedError` (carrying the
    full :class:`FailureReport`) when every entry fails.
    """

    def __init__(
        self,
        chain: Sequence[tuple[str, ParserFactory]],
        *,
        timeout: float | None = None,
        retry: RetryPolicy | None = None,
        breaker_threshold: int = 3,
        breaker_reset: float = 30.0,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
        rng: Random | None = None,
        telemetry=None,
    ) -> None:
        if not chain:
            raise ValidationError("supervision chain must not be empty")
        if timeout is not None and timeout <= 0:
            raise ValidationError(f"timeout must be > 0, got {timeout}")
        self.chain = list(chain)
        self.timeout = timeout
        self.retry = retry if retry is not None else RetryPolicy()
        self._sleep = sleep
        self._clock = clock
        self._rng = rng
        self.telemetry = telemetry
        self.breakers = {
            name: CircuitBreaker(
                failure_threshold=breaker_threshold,
                reset_timeout=breaker_reset,
                clock=clock,
                on_transition=(
                    self._breaker_observer(name)
                    if telemetry is not None
                    else None
                ),
            )
            for name, _ in self.chain
        }
        #: Report of the most recent :meth:`parse` call.
        self.last_report: FailureReport | None = None

    def _breaker_observer(self, name: str) -> Callable[[str, str], None]:
        def observe(old_state: str, new_state: str) -> None:
            self.telemetry.metrics.get(
                "repro_breaker_transitions_total"
            ).labels(parser=name, state=new_state).inc()
            self.telemetry.events.emit(
                "breaker_transition",
                parser=name,
                old_state=old_state,
                new_state=new_state,
            )

        return observe

    def _note_attempt(self, report: FailureReport, attempt: Attempt) -> None:
        """Append to the report and mirror into telemetry."""
        report.attempts.append(attempt)
        if self.telemetry is not None:
            self.telemetry.metrics.get(
                "repro_supervisor_attempts_total"
            ).labels(parser=attempt.parser, status=attempt.status).inc()

    def parse(self, records: Sequence[LogRecord]) -> SupervisedResult:
        records = list(records)
        report = FailureReport()
        self.last_report = report
        for name, factory in self.chain:
            breaker = self.breakers[name]
            if not breaker.allow():
                self._note_attempt(
                    report,
                    Attempt(
                        parser=name,
                        attempt=0,
                        status=STATUS_SKIPPED,
                        error="circuit breaker open",
                    ),
                )
                continue
            for attempt in range(1, self.retry.attempts + 1):
                started = self._clock()
                span = (
                    self.telemetry.tracer.start(
                        SPAN_PARSER_CALL, parser=name, attempt=attempt
                    )
                    if self.telemetry is not None
                    else None
                )
                try:
                    result = run_with_deadline(
                        lambda: factory().parse(records), self.timeout
                    )
                except ParserTimeoutError as error:
                    status, detail = STATUS_TIMEOUT, str(error)
                    if getattr(error, "leaked_thread", False):
                        report.leaked_threads += 1
                except BudgetExceededError as error:
                    status, detail = STATUS_BUDGET, str(error)
                except Exception as error:  # noqa: BLE001 - recorded
                    status, detail = STATUS_ERROR, f"{type(error).__name__}: {error}"
                else:
                    if span is not None:
                        span.attrs["status"] = STATUS_OK
                        self.telemetry.tracer.finish(span)
                    breaker.record_success()
                    self._note_attempt(
                        report,
                        Attempt(
                            parser=name,
                            attempt=attempt,
                            status=STATUS_OK,
                            seconds=self._clock() - started,
                        ),
                    )
                    report.winner = name
                    if self.telemetry is not None:
                        self.telemetry.events.record(report)
                    return SupervisedResult(
                        result=result, parser=name, report=report
                    )
                if span is not None:
                    span.attrs["status"] = status
                    self.telemetry.tracer.finish(span)
                breaker.record_failure()
                self._note_attempt(
                    report,
                    Attempt(
                        parser=name,
                        attempt=attempt,
                        status=status,
                        seconds=self._clock() - started,
                        error=detail,
                    ),
                )
                if (
                    status == STATUS_BUDGET
                    or not breaker.allow()
                    or attempt == self.retry.attempts
                ):
                    break
                if self.telemetry is not None:
                    self.telemetry.metrics.get(
                        "repro_supervisor_retries_total"
                    ).labels(parser=name).inc()
                self._sleep(self.retry.delay(attempt, self._rng))
        if self.telemetry is not None:
            self.telemetry.events.record(report)
        raise FallbackExhaustedError(
            "every parser in the fallback chain failed:\n" + report.describe(),
            report=report,
        )
