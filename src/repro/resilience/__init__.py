"""Fault-tolerant parsing runtime: supervision, quarantine, checkpoints.

The paper's Finding 6 quantifies why robustness is not optional: a 4%
parsing error rate on critical events degrades downstream PCA mining
by an order of magnitude.  A production pipeline therefore has to
*contain* faults instead of dying on them.  This package is that
containment layer, in four parts:

* :mod:`~repro.resilience.quarantine` — per-record error policies
  (``raise`` / ``skip`` / ``quarantine``) and the provenance-carrying
  quarantine sink shared by the dataset loader and the streaming
  engine;
* :mod:`~repro.resilience.supervisor` — :class:`ParserSupervisor`,
  which runs parses under wall-clock deadlines with
  exponential-backoff retries, per-parser circuit breakers, and a
  configurable fallback chain (e.g. LKE → IPLoM → SLCT), recording
  every attempt in a :class:`FailureReport`;
* :mod:`~repro.resilience.checkpoint` — serialize a streaming
  session's full state so a killed run resumes mid-stream and
  finalizes to the identical (prefix-policy: byte-identical) result;
* :mod:`~repro.resilience.faults` — a deterministic, seeded
  fault-injection harness (corrupt records, crashing/stalling
  parsers, killed chunk workers, scripted IO faults) so every
  recovery path above is exercised by tests and the ``repro
  supervise`` / ``repro stream --faults`` CLI;
* :mod:`~repro.resilience.durability` — crash-consistent artifact IO:
  atomic whole-file writes (temp + fsync + rename + dir fsync),
  length+CRC32-framed JSONL with torn-tail recovery, and run-end
  integrity manifests checked by ``repro verify-run``.
"""

from repro.resilience.checkpoint import (
    CHECKPOINT_VERSION,
    StreamCheckpoint,
    load_checkpoint,
    restore_accumulator,
    restore_streaming_parser,
    save_checkpoint,
)
from repro.resilience.durability import (
    AtomicWriter,
    DurableJsonlWriter,
    JsonlRecovery,
    ManifestReport,
    RealIO,
    RunManifest,
    atomic_write_text,
    diff_manifests,
    ensure_artifact,
    load_manifest,
    read_jsonl_payloads,
    reconcile_jsonl,
    recover_jsonl,
    verify_manifest,
)
from repro.resilience.faults import (
    ChunkFault,
    ConnectionFault,
    FaultyIO,
    FaultyLineSender,
    FlakyFactory,
    InjectedFault,
    IoFault,
    NET_KINDS,
    NetworkFault,
    ProcessFault,
    connection_fault_schedule,
    corrupt_raw_file,
    corrupt_records,
    crash_storm_schedule,
    io_fault_schedule,
    network_fault_schedule,
    process_fault_schedule,
)
from repro.resilience.quarantine import (
    ERROR_POLICIES,
    ErrorPolicy,
    QuarantineRecord,
    QuarantineSink,
    is_clean_content,
    screen_records,
)
from repro.resilience.supervisor import (
    Attempt,
    CircuitBreaker,
    FailureReport,
    ParserSupervisor,
    RetryPolicy,
    SupervisedResult,
    run_with_deadline,
)

__all__ = [
    "CHECKPOINT_VERSION",
    "StreamCheckpoint",
    "load_checkpoint",
    "restore_accumulator",
    "restore_streaming_parser",
    "save_checkpoint",
    "AtomicWriter",
    "DurableJsonlWriter",
    "JsonlRecovery",
    "ManifestReport",
    "RealIO",
    "RunManifest",
    "atomic_write_text",
    "diff_manifests",
    "ensure_artifact",
    "load_manifest",
    "read_jsonl_payloads",
    "reconcile_jsonl",
    "recover_jsonl",
    "verify_manifest",
    "ChunkFault",
    "ConnectionFault",
    "FaultyIO",
    "FaultyLineSender",
    "FlakyFactory",
    "InjectedFault",
    "IoFault",
    "NET_KINDS",
    "NetworkFault",
    "ProcessFault",
    "connection_fault_schedule",
    "corrupt_raw_file",
    "corrupt_records",
    "crash_storm_schedule",
    "io_fault_schedule",
    "network_fault_schedule",
    "process_fault_schedule",
    "ERROR_POLICIES",
    "ErrorPolicy",
    "QuarantineRecord",
    "QuarantineSink",
    "is_clean_content",
    "screen_records",
    "Attempt",
    "CircuitBreaker",
    "FailureReport",
    "ParserSupervisor",
    "RetryPolicy",
    "SupervisedResult",
    "run_with_deadline",
]
