"""Crash-consistent artifact IO: atomic writes, framed JSONL, manifests.

Every artifact the runtime emits — quarantine JSONL, metrics/trace/
event exports, ``.events`` / ``.structured`` outputs, checkpoints —
used to be a plain ``open()`` write, so a crash, ``ENOSPC``, or torn
write could silently truncate it and poison the downstream mining the
paper shows is hypersensitive to small errors (Finding 6: a 4% parse
error rate degrades PCA detection by an order of magnitude).  This
module is the durability layer those writers now share:

* :class:`AtomicWriter` / :func:`atomic_write_text` — the classic
  crash-safe replacement sequence: write a sibling temp file, flush,
  ``fsync`` the file, ``os.replace`` over the target, then ``fsync``
  the parent directory so the rename itself survives power loss.
  Readers see either the complete old artifact or the complete new
  one, never a half-written hybrid.

* :class:`DurableJsonlWriter` / :func:`recover_jsonl` — append-mode
  JSONL with per-record length+CRC32 framing::

      0000002f c47ab1e9 {"kind": "quarantine", ...}

  A torn tail (the record a crashing writer got halfway through) fails
  the frame check, and recovery truncates the file back to the last
  complete record instead of letting garbage propagate.  The payload
  stays on the line in plain JSON, so ``grep`` keeps working.

* :class:`RunManifest` / :func:`verify_manifest` /
  :func:`diff_manifests` — a run-end integrity manifest recording
  SHA-256, byte size, and record count for every artifact the run
  emitted, committed atomically.  ``repro verify-run`` re-hashes the
  artifacts against it (a single flipped byte fails with the CLI's
  data-error exit code), and two manifests from different runs of the
  same seed can be diffed to certify that a crashed-and-resumed run
  reconverged byte-for-byte with a fault-free one.

All writers take an ``io`` seam (default :class:`RealIO`) so the
deterministic fault layer in :mod:`repro.resilience.faults` can inject
``EIO`` / ``ENOSPC`` / fsync failures / torn writes at scripted byte
offsets; the retry/divert/fail behaviour under those faults is part of
each writer's contract and is certified by ``tests/test_durability.py``.
"""

from __future__ import annotations

import hashlib
import json
import os
import zlib
from dataclasses import dataclass, field

from repro.common.errors import ArtifactWriteError, IntegrityError

#: Bump when the manifest schema changes incompatibly.
MANIFEST_VERSION = 1

#: Artifact codecs a manifest entry may declare.  ``framed`` counts
#: records via the CRC32 frame check (and fails verification if any
#: frame is invalid), ``lines`` counts newline-terminated lines, and
#: ``opaque`` records only bytes + hash.
CODEC_FRAMED = "framed"
CODEC_LINES = "lines"
CODEC_OPAQUE = "opaque"
ARTIFACT_CODECS = (CODEC_FRAMED, CODEC_LINES, CODEC_OPAQUE)

#: Frame layout: 8 hex chars payload length, space, 8 hex chars CRC32,
#: space, payload, newline.
_FRAME_HEADER_LEN = 18


# ----------------------------------------------------------------------
# The IO seam
# ----------------------------------------------------------------------


class RealIO:
    """The pass-through IO layer every durable writer defaults to.

    The methods mirror the exact primitives the crash-consistency
    argument rests on (write, fsync, rename, directory fsync), so the
    fault layer can interpose on each one individually.
    """

    def open(self, path: str, mode: str):
        return open(path, mode)

    def write(self, handle, data: bytes) -> None:
        handle.write(data)

    def flush(self, handle) -> None:
        handle.flush()

    def fsync(self, handle) -> None:
        os.fsync(handle.fileno())

    def replace(self, src: str, dst: str) -> None:
        os.replace(src, dst)

    def fsync_dir(self, path: str) -> None:
        """Flush the directory entry so a completed rename survives
        power loss.  Directory fds are not a thing on some platforms
        (Windows); there the rename is as durable as the OS makes it."""
        directory = os.path.dirname(os.path.abspath(path)) or "."
        try:
            fd = os.open(directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform without dir fds
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def truncate(self, path: str, length: int) -> None:
        with open(path, "r+b") as handle:
            handle.truncate(length)
            self.fsync(handle)


def _coerce_io(io: RealIO | None) -> RealIO:
    return io if io is not None else RealIO()


# ----------------------------------------------------------------------
# Atomic whole-file writes
# ----------------------------------------------------------------------


class AtomicWriter:
    """Write a whole artifact crash-safely: temp → fsync → rename.

    Used as a context manager yielding ``self``; stage text with
    :meth:`write` and the commit happens on a clean ``__exit__``::

        with AtomicWriter(path) as writer:
            for line in lines:
                writer.write(line + "\\n")

    On any exception — the caller's or an injected IO fault — the temp
    file is removed and the target is left exactly as it was, so a
    failed export can never shadow a previous run's good artifact with
    a half-written one.  IO failures surface as
    :class:`~repro.common.errors.ArtifactWriteError`.
    """

    def __init__(
        self,
        path: str,
        *,
        encoding: str = "utf-8",
        io: RealIO | None = None,
        fsync: bool = True,
    ) -> None:
        self.path = path
        self.encoding = encoding
        self.io = _coerce_io(io)
        self.fsync = fsync
        self._tmp_path = f"{path}.tmp"
        self._handle = None

    def write(self, text: str) -> None:
        if self._handle is None:
            raise ArtifactWriteError(
                f"AtomicWriter for {self.path} is not open"
            )
        try:
            self.io.write(self._handle, text.encode(self.encoding))
        except OSError as error:
            raise ArtifactWriteError(
                f"could not write {self.path}: {error}"
            ) from error

    def __enter__(self) -> "AtomicWriter":
        try:
            self._handle = self.io.open(self._tmp_path, "wb")
        except OSError as error:
            raise ArtifactWriteError(
                f"could not open temp file for {self.path}: {error}"
            ) from error
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self._discard()
            return
        try:
            self.io.flush(self._handle)
            if self.fsync:
                self.io.fsync(self._handle)
            self._handle.close()
            self._handle = None
            self.io.replace(self._tmp_path, self.path)
            if self.fsync:
                self.io.fsync_dir(self.path)
        except OSError as error:
            self._discard()
            raise ArtifactWriteError(
                f"could not commit {self.path}: {error}"
            ) from error

    def _discard(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
            self._handle = None
        try:
            os.unlink(self._tmp_path)
        except OSError:
            pass


def atomic_write_text(
    path: str,
    text: str,
    *,
    encoding: str = "utf-8",
    io: RealIO | None = None,
    fsync: bool = True,
    retries: int = 1,
    telemetry=None,
) -> None:
    """Commit *text* to *path* atomically, retrying transient faults.

    The whole temp-write-rename sequence is retried up to *retries*
    extra times, so a one-shot ``EIO`` / ``ENOSPC`` / fsync hiccup
    degrades to a successful (slightly slower) export instead of a
    missing artifact.  A persistent fault raises
    :class:`~repro.common.errors.ArtifactWriteError` with the target
    untouched.
    """
    attempts = max(0, retries) + 1
    last: ArtifactWriteError | None = None
    for attempt in range(attempts):
        try:
            with AtomicWriter(
                path, encoding=encoding, io=io, fsync=fsync
            ) as writer:
                writer.write(text)
            if telemetry is not None:
                outcome = "retried" if attempt else "committed"
                _note_artifact_write(telemetry, "atomic", outcome, path)
            return
        except ArtifactWriteError as error:
            last = error
    if telemetry is not None:
        _note_artifact_write(telemetry, "atomic", "failed", path)
    assert last is not None
    raise ArtifactWriteError(
        f"atomic write to {path} failed after {attempts} attempt(s): "
        f"{last}"
    ) from (last.__cause__ or last)


def ensure_artifact(path: str, *, io: RealIO | None = None) -> None:
    """Create an empty artifact at *path* without truncating one that
    already exists (append-mode open, immediately closed).

    The safe replacement for the ``open(path, "w").close()`` idiom: a
    crash between truncate and first write can no longer destroy a
    prior run's artifact, because there is no truncate.
    """
    io = _coerce_io(io)
    try:
        io.open(path, "ab").close()
    except OSError as error:
        raise ArtifactWriteError(
            f"could not create artifact {path}: {error}"
        ) from error


def _note_artifact_write(telemetry, kind: str, outcome: str, path: str) -> None:
    telemetry.metrics.get("repro_artifact_writes_total").labels(
        kind=kind, outcome=outcome
    ).inc()
    if outcome in ("retried", "diverted", "failed"):
        telemetry.events.emit(
            "artifact_write", writer=kind, outcome=outcome, path=path
        )


# ----------------------------------------------------------------------
# Framed JSONL: append, recover, reconcile
# ----------------------------------------------------------------------


def frame_record(payload: dict) -> bytes:
    """Encode one JSONL record with its length+CRC32 frame."""
    data = json.dumps(payload, sort_keys=True).encode("utf-8")
    return b"%08x %08x " % (len(data), zlib.crc32(data)) + data + b"\n"


def parse_frame(line: bytes) -> dict | None:
    """Decode one framed line; ``None`` when the frame check fails."""
    if line.endswith(b"\n"):
        line = line[:-1]
    if (
        len(line) < _FRAME_HEADER_LEN
        or line[8:9] != b" "
        or line[17:18] != b" "
    ):
        return None
    try:
        length = int(line[:8], 16)
        crc = int(line[9:17], 16)
    except ValueError:
        return None
    payload = line[_FRAME_HEADER_LEN:]
    if len(payload) != length or zlib.crc32(payload) != crc:
        return None
    try:
        record = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    return record if isinstance(record, dict) else None


@dataclass
class JsonlRecovery:
    """What :func:`recover_jsonl` found (and possibly repaired).

    Attributes:
        path: the file inspected.
        records: the decoded complete-record prefix.
        valid_bytes: length of that prefix on disk.
        total_bytes: file size before any truncation.
        truncated: True when the torn tail was cut off on disk.
    """

    path: str
    records: list[dict] = field(default_factory=list)
    valid_bytes: int = 0
    total_bytes: int = 0
    truncated: bool = False

    @property
    def dropped_bytes(self) -> int:
        return self.total_bytes - self.valid_bytes


def scan_framed(data: bytes) -> tuple[list[dict], int]:
    """Decode the longest valid framed prefix of *data*.

    Returns ``(records, valid_bytes)``; scanning stops at the first
    line that fails the frame check (torn tail, flipped byte, appended
    garbage) or at trailing bytes without a newline.
    """
    records: list[dict] = []
    pos = 0
    while pos < len(data):
        newline = data.find(b"\n", pos)
        if newline < 0:
            break
        record = parse_frame(data[pos:newline])
        if record is None:
            break
        records.append(record)
        pos = newline + 1
    return records, pos


def recover_jsonl(
    path: str,
    *,
    truncate: bool = True,
    io: RealIO | None = None,
    telemetry=None,
) -> JsonlRecovery:
    """Validate a framed JSONL file and cut off its torn tail.

    A missing file recovers to an empty, zero-byte state.  With
    *truncate* (the default) the file is physically truncated to the
    last complete record and fsynced, so downstream consumers — and
    the appending writer about to reopen it — see only intact records.
    """
    io = _coerce_io(io)
    recovery = JsonlRecovery(path=path)
    if not os.path.exists(path):
        return recovery
    with open(path, "rb") as handle:
        data = handle.read()
    recovery.total_bytes = len(data)
    recovery.records, recovery.valid_bytes = scan_framed(data)
    if truncate and recovery.valid_bytes < recovery.total_bytes:
        try:
            io.truncate(path, recovery.valid_bytes)
        except OSError as error:
            raise ArtifactWriteError(
                f"could not truncate torn tail of {path}: {error}"
            ) from error
        recovery.truncated = True
        if telemetry is not None:
            telemetry.metrics.get(
                "repro_jsonl_recovered_bytes_total"
            ).inc(recovery.dropped_bytes)
            telemetry.events.emit(
                "jsonl_recovery",
                path=path,
                dropped_bytes=recovery.dropped_bytes,
                records=len(recovery.records),
            )
    return recovery


def reconcile_jsonl(
    path: str,
    valid_bytes: int,
    *,
    io: RealIO | None = None,
    telemetry=None,
) -> JsonlRecovery:
    """Roll a framed JSONL artifact back to a checkpointed offset.

    On resume, records appended *after* the last checkpoint was taken
    would be re-emitted by the replayed stream and duplicated; this
    truncates the (already torn-tail-recovered) file to the byte
    offset the checkpoint recorded.  The offset must fall on a record
    boundary of the surviving prefix — anything else means the file
    and checkpoint disagree about history, which is corruption, not
    a tail to trim.
    """
    io = _coerce_io(io)
    recovery = recover_jsonl(path, truncate=True, io=io, telemetry=telemetry)
    if recovery.valid_bytes < valid_bytes:
        raise IntegrityError(
            f"artifact {path} holds {recovery.valid_bytes} valid bytes "
            f"but the checkpoint recorded {valid_bytes}; the file lost "
            "checkpointed records and cannot be reconciled"
        )
    if recovery.valid_bytes == valid_bytes:
        return recovery
    with open(path, "rb") as handle:
        prefix = handle.read(valid_bytes)
    records, boundary = scan_framed(prefix)
    if boundary != valid_bytes:
        raise IntegrityError(
            f"checkpointed offset {valid_bytes} of {path} is not a "
            "record boundary; refusing to reconcile"
        )
    try:
        io.truncate(path, valid_bytes)
    except OSError as error:
        raise ArtifactWriteError(
            f"could not reconcile {path} to {valid_bytes} bytes: {error}"
        ) from error
    dropped = recovery.valid_bytes - valid_bytes
    if telemetry is not None:
        telemetry.events.emit(
            "jsonl_reconcile",
            path=path,
            dropped_bytes=dropped,
            records=len(records),
        )
    recovery.records = records
    recovery.valid_bytes = valid_bytes
    recovery.truncated = True
    return recovery


class DurableJsonlWriter:
    """Append-only framed JSONL with recovery, retry, and divert.

    Args:
        path: primary JSONL file; opened lazily on the first append so
            an untouched writer leaves no file.  An existing file has
            its torn tail recovered (truncated to the last complete
            record) before the first append lands.
        alternate_path: where appends divert when the primary path
            fails persistently (e.g. its volume is full).  ``None``
            derives ``path + ".alt"``; records already on the primary
            stay there.
        retries: re-open-and-retry attempts per append before
            diverting (or failing when no alternate exists).
        fsync_every: fsync the handle every N appended records
            (0 disables; :meth:`sync` and :meth:`close` always fsync).

    ``offset()`` reports ``(bytes, records)`` durably framed so far —
    the quantity checkpoints record and resume reconciles against.
    """

    def __init__(
        self,
        path: str,
        *,
        alternate_path: str | None = None,
        retries: int = 1,
        fsync_every: int = 0,
        io: RealIO | None = None,
        telemetry=None,
    ) -> None:
        self.path = path
        self.alternate_path = (
            alternate_path if alternate_path is not None else f"{path}.alt"
        )
        self.retries = max(0, retries)
        self.fsync_every = fsync_every
        self.io = _coerce_io(io)
        self.telemetry = telemetry
        self.diverted = False
        self._handle = None
        self._bytes = 0
        self._records = 0
        self._since_sync = 0

    def _open(self, path: str):
        recovery = recover_jsonl(
            path, truncate=True, io=self.io, telemetry=self.telemetry
        )
        handle = self.io.open(path, "ab")
        return handle, recovery

    def _ensure_open(self) -> None:
        if self._handle is not None:
            return
        self._handle, recovery = self._open(self.path)
        self._bytes = recovery.valid_bytes
        self._records = len(recovery.records)

    def append(self, payload: dict) -> None:
        """Frame and append one record, surviving transient IO faults.

        A failed write is retried on a fresh handle; a persistent
        failure diverts to *alternate_path* so the record (and the
        rest of the run's records) still land durably somewhere.  Only
        when the alternate fails too does
        :class:`~repro.common.errors.ArtifactWriteError` escape.
        """
        line = frame_record(payload)
        last: OSError | None = None
        for attempt in range(self.retries + 1):
            try:
                self._ensure_open()
                self.io.write(self._handle, line)
                self.io.flush(self._handle)
                self._bytes += len(line)
                self._records += 1
                self._since_sync += 1
                if self.fsync_every and self._since_sync >= self.fsync_every:
                    self.sync()
                if attempt and self.telemetry is not None:
                    _note_artifact_write(
                        self.telemetry, "jsonl", "retried", self.path
                    )
                return
            except OSError as error:
                last = error
                self._drop_handle()
            except ArtifactWriteError as error:
                # recovery-on-open failed; treat like the OSError it wraps
                last = error.__cause__ or OSError(str(error))
                self._drop_handle()
        if not self.diverted:
            self._divert()
            self.append(payload)
            return
        if self.telemetry is not None:
            _note_artifact_write(self.telemetry, "jsonl", "failed", self.path)
        raise ArtifactWriteError(
            f"could not append to {self.path}: {last}"
        ) from last

    def _divert(self) -> None:
        """Switch future appends to the alternate path."""
        primary = self.path
        self.diverted = True
        self.path = self.alternate_path
        self._drop_handle()
        self._bytes = 0
        self._records = 0
        if self.telemetry is not None:
            _note_artifact_write(self.telemetry, "jsonl", "diverted", primary)

    def _drop_handle(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
            self._handle = None

    def offset(self) -> tuple[int, int]:
        """``(bytes, records)`` durably framed on the current path."""
        return self._bytes, self._records

    def sync(self) -> None:
        """Flush and fsync the handle (no-op when nothing is open).

        A failed fsync is retried like a failed append: every record
        was already written and flushed, so a transient device hiccup
        is survivable with a second fsync.  A persistent failure
        escapes as :class:`~repro.common.errors.ArtifactWriteError` —
        the data may sit in the page cache, but durability cannot be
        claimed.
        """
        if self._handle is None:
            return
        last: OSError | None = None
        for attempt in range(self.retries + 1):
            try:
                self.io.flush(self._handle)
                self.io.fsync(self._handle)
                self._since_sync = 0
                if attempt and self.telemetry is not None:
                    _note_artifact_write(
                        self.telemetry, "jsonl", "retried", self.path
                    )
                return
            except OSError as error:
                last = error
        if self.telemetry is not None:
            _note_artifact_write(self.telemetry, "jsonl", "failed", self.path)
        raise ArtifactWriteError(
            f"could not fsync {self.path}: {last}"
        ) from last

    def close(self) -> None:
        if self._handle is None:
            return
        try:
            self.sync()
        finally:
            self._drop_handle()

    def __enter__(self) -> "DurableJsonlWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_jsonl_payloads(path: str) -> list[dict]:
    """Read a JSONL artifact, accepting framed and legacy plain lines.

    Framed lines must pass the CRC check; unframed lines fall back to
    plain ``json.loads`` so artifacts written before the durability
    layer (or by external tools) still load.  A line that is neither
    raises :class:`~repro.common.errors.IntegrityError`.
    """
    payloads: list[dict] = []
    with open(path, "rb") as handle:
        for line_no, raw in enumerate(handle):
            line = raw.rstrip(b"\n")
            if not line:
                continue
            record = parse_frame(line)
            if record is None:
                try:
                    record = json.loads(line.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError) as error:
                    raise IntegrityError(
                        f"{path}:{line_no}: line is neither a framed nor "
                        f"a plain JSONL record: {error}"
                    ) from error
            payloads.append(record)
    return payloads


# ----------------------------------------------------------------------
# Run manifests
# ----------------------------------------------------------------------


def _hash_file(path: str) -> tuple[str, int]:
    digest = hashlib.sha256()
    size = 0
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(1 << 20)
            if not chunk:
                break
            digest.update(chunk)
            size += len(chunk)
    return digest.hexdigest(), size


def _count_records(path: str, codec: str) -> int | None:
    """Record count per the entry's codec; ``None`` for opaque."""
    if codec == CODEC_OPAQUE:
        return None
    with open(path, "rb") as handle:
        data = handle.read()
    if codec == CODEC_LINES:
        return data.count(b"\n")
    records, valid = scan_framed(data)
    if valid != len(data):
        raise IntegrityError(
            f"artifact {path} has {len(data) - valid} invalid trailing "
            f"bytes after {len(records)} framed records"
        )
    return len(records)


def artifact_entry(path: str, codec: str = CODEC_OPAQUE) -> dict:
    """Measure one artifact: sha256 + bytes (+ records per codec)."""
    if codec not in ARTIFACT_CODECS:
        raise IntegrityError(
            f"unknown artifact codec {codec!r}; choose from "
            f"{ARTIFACT_CODECS}"
        )
    sha, size = _hash_file(path)
    entry = {"sha256": sha, "bytes": size, "codec": codec}
    records = _count_records(path, codec)
    if records is not None:
        entry["records"] = records
    return entry


class RunManifest:
    """Integrity manifest of every artifact one run emitted.

    Built incrementally (:meth:`add` measures each artifact as it is
    registered), committed atomically at run end (:meth:`write`), and
    checked later by :func:`verify_manifest` / ``repro verify-run``.
    Artifact keys are paths; :meth:`write` relativizes them against
    the manifest's own directory so the artifact set can be archived
    and verified from anywhere.
    """

    def __init__(self, run: dict | None = None) -> None:
        self.run = dict(run or {})
        self.artifacts: dict[str, dict] = {}

    def add(self, path: str, *, codec: str = CODEC_OPAQUE) -> dict:
        """Measure the artifact at *path* and record it."""
        entry = artifact_entry(path, codec)
        self.artifacts[path] = entry
        return entry

    def to_dict(self, base_dir: str | None = None) -> dict:
        artifacts = {}
        for path, entry in sorted(self.artifacts.items()):
            key = (
                os.path.relpath(path, base_dir)
                if base_dir is not None
                else path
            )
            artifacts[key] = dict(entry)
        return {
            "version": MANIFEST_VERSION,
            "run": dict(self.run),
            "artifacts": artifacts,
        }

    def write(
        self,
        path: str,
        *,
        io: RealIO | None = None,
        telemetry=None,
    ) -> None:
        """Commit the manifest atomically next to its artifacts."""
        base_dir = os.path.dirname(os.path.abspath(path)) or "."
        text = json.dumps(
            self.to_dict(base_dir=base_dir), indent=2, sort_keys=True
        )
        atomic_write_text(path, text + "\n", io=io, telemetry=telemetry)


def load_manifest(path: str) -> dict:
    """Read a manifest file back, validating shape and version."""
    if not os.path.exists(path):
        raise IntegrityError(f"manifest not found: {path}")
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise IntegrityError(
            f"could not read manifest {path}: {error}"
        ) from error
    if not isinstance(data, dict) or not isinstance(
        data.get("artifacts"), dict
    ):
        raise IntegrityError(f"manifest {path} is not a manifest object")
    version = data.get("version")
    if version != MANIFEST_VERSION:
        raise IntegrityError(
            f"manifest {path} has schema version {version!r}; this "
            f"runtime reads version {MANIFEST_VERSION}"
        )
    return data


@dataclass
class ManifestReport:
    """Outcome of verifying one manifest against the filesystem."""

    path: str
    checked: int = 0
    problems: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def describe(self) -> str:
        if self.ok:
            return (
                f"manifest {self.path}: {self.checked} artifact(s) verified"
            )
        lines = [
            f"manifest {self.path}: {len(self.problems)} problem(s) "
            f"across {self.checked} artifact(s)"
        ]
        lines.extend(f"  - {problem}" for problem in self.problems)
        return "\n".join(lines)


def verify_manifest(path: str) -> ManifestReport:
    """Re-hash every artifact a manifest covers.

    Any missing artifact, size drift, hash mismatch (a single flipped
    byte suffices), bad frame, or record-count change is reported as a
    problem; the report's :attr:`~ManifestReport.ok` drives the CLI's
    data-error exit code.
    """
    data = load_manifest(path)
    base_dir = os.path.dirname(os.path.abspath(path)) or "."
    report = ManifestReport(path=path)
    for name, expected in sorted(data["artifacts"].items()):
        report.checked += 1
        artifact_path = (
            name
            if os.path.isabs(name)
            else os.path.join(base_dir, name)
        )
        if not os.path.exists(artifact_path):
            report.problems.append(f"{name}: artifact missing")
            continue
        codec = expected.get("codec", CODEC_OPAQUE)
        try:
            actual = artifact_entry(artifact_path, codec)
        except IntegrityError as error:
            report.problems.append(f"{name}: {error}")
            continue
        for field_name in ("bytes", "sha256", "records"):
            if field_name not in expected and field_name not in actual:
                continue
            want = expected.get(field_name)
            got = actual.get(field_name)
            if want != got:
                report.problems.append(
                    f"{name}: {field_name} mismatch "
                    f"(manifest {want!r}, artifact {got!r})"
                )
    return report


def diff_manifests(
    path_a: str, path_b: str, *, ignore: tuple[str, ...] = ()
) -> list[str]:
    """Field-level differences between two manifests' artifact sets.

    Artifact keys whose basename is in *ignore* are skipped (used to
    exclude inherently run-varying artifacts like traces from the
    fault-free-equivalence check).  Returns an empty list when the
    surviving artifact entries agree on codec, bytes, sha256, and
    record counts — the certification that a crashed-and-resumed run
    reconverged with a fault-free one.
    """
    a = load_manifest(path_a)["artifacts"]
    b = load_manifest(path_b)["artifacts"]
    a = {k: v for k, v in a.items() if os.path.basename(k) not in ignore}
    b = {k: v for k, v in b.items() if os.path.basename(k) not in ignore}
    differences = []
    for name in sorted(set(a) - set(b)):
        differences.append(f"{name}: only in {path_a}")
    for name in sorted(set(b) - set(a)):
        differences.append(f"{name}: only in {path_b}")
    for name in sorted(set(a) & set(b)):
        for field_name in ("codec", "bytes", "sha256", "records"):
            want, got = a[name].get(field_name), b[name].get(field_name)
            if want != got:
                differences.append(
                    f"{name}: {field_name} differs ({want!r} vs {got!r})"
                )
    return differences
