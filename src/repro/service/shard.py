"""One tenant's isolated parsing domain inside the ingestion service.

A :class:`TenantShard` owns everything whose failure must stay inside
the tenant: a :class:`~repro.streaming.engine.StreamingParser` (with
its own :class:`~repro.streaming.cache.TemplateCache`), a
:class:`~repro.resilience.quarantine.QuarantineSink`, a checkpoint
file, optionally a per-tenant
:class:`~repro.degradation.budget.ResourceBudget` +
:class:`~repro.degradation.ladder.DegradationLadder` (via
:class:`~repro.degradation.runtime.DegradedSession`), and a circuit
breaker.  The shard serializes all engine access behind its own lock —
that lock *is* the single-writer ownership the lock-free engine
demands (see :mod:`repro.streaming.cache`), and the engine's
``ConcurrencyError`` tripwire enforces it.

Isolation invariants:

* a parser crash inside ``feed``/flush quarantines the record and
  counts a consecutive failure; ``breaker_threshold`` consecutive
  failures trip the breaker, after which every further line is
  quarantined with reason ``breaker-open`` — the engine is never
  touched again until drain;
* an exhausted per-tenant budget
  (:class:`~repro.common.errors.BudgetExceededError`) trips the
  breaker immediately;
* nothing in this module reaches outside the tenant's directory, so a
  tripped tenant cannot perturb a neighbor's bytes.

Replay/at-least-once contract: every submitted record bumps ``seen``
*before* anything else; a shard restored from a checkpoint skips
records until ``seen`` catches up with the checkpoint's
``records_consumed``, so a source that replays from the beginning
produces no duplicates and loses nothing.

Drain writes the standard ``.events``/``.structured`` outputs through
the engine's prefix finalize (byte-identical to a batch parse), saves
a final checkpoint pinning the quarantine offsets, and commits a
per-tenant :class:`~repro.resilience.durability.RunManifest` — written
last, inside the tenant directory, with artifact keys relative to it,
so two runs of the same stream diff cleanly via ``verify-run
--against``.
"""

from __future__ import annotations

import os
import threading
import time

from repro.common.errors import BudgetExceededError, ValidationError
from repro.common.types import LogRecord
from repro.datasets.loader import write_parse_result
from repro.degradation.budget import BudgetMonitor, ResourceBudget
from repro.degradation.ladder import DegradationLadder
from repro.degradation.runtime import DegradedSession
from repro.observability.tracing import SPAN_TENANT_DRAIN
from repro.resilience.checkpoint import (
    load_checkpoint,
    restore_streaming_parser,
    save_checkpoint,
)
from repro.resilience.durability import (
    CODEC_FRAMED,
    CODEC_LINES,
    CODEC_OPAQUE,
    RunManifest,
    reconcile_jsonl,
)
from repro.resilience.quarantine import QuarantineRecord, QuarantineSink
from repro.service.protocol import (
    DUPLICATE,
    PENDING,
    BatchJournal,
    DeliveryWindow,
)
from repro.streaming.engine import StreamingParser
from repro.streaming.session import ParseSession

#: Quarantine reason tags specific to the service layer.
REASON_BREAKER = "breaker-open"
REASON_BUDGET = "budget-exhausted"
REASON_CRASH = "parser-crash"
REASON_POISON = "poison-pill"

#: Outcome tags returned by :meth:`TenantShard.submit`.
ACCEPTED = "accepted"
REPLAYED = "replayed"
REJECTED = "rejected"
QUARANTINED = "quarantined"
BREAKER = "breaker"

#: Artifact basenames inside every tenant directory.
STEM = "out"
CHECKPOINT_NAME = f"{STEM}.checkpoint.json"
QUARANTINE_NAME = f"{STEM}.quarantine.jsonl"
MANIFEST_NAME = f"{STEM}.manifest.json"
#: Thread-mode exactly-once ownership journal (protocol v2).  Process
#: mode reuses the supervisor's ``out.journal.jsonl`` instead.
DELIVERY_JOURNAL_NAME = f"{STEM}.delivery.journal.jsonl"


class TenantShard:
    """Supervised per-tenant parsing shard with its own failure domain.

    Args:
        tenant: tenant key (also the directory name under *data_dir*).
        data_dir: service data root; the shard owns
            ``data_dir/tenant/``.
        factory: zero-argument parser factory for the flush parser
            (ignored when *ladder* is given — rungs build their own).
        parser_name: registry name recorded in checkpoints/manifests.
        flush_policy / flush_size / cache_capacity / max_pending /
            overflow: engine shape (prefix policy by default, which is
            what makes drained outputs byte-identical to batch).
        budget: optional per-tenant resource envelope; requires
            *ladder* (the shard degrades before it dies) and runs the
            engine under a
            :class:`~repro.degradation.runtime.DegradedSession` with
            the delta policy.
        ladder: rung order for the budgeted mode.
        breaker_threshold: consecutive ``feed`` crashes that trip the
            circuit breaker.
        exactly_once: run the shard under the protocol-v2 delivery
            contract: sequence-tagged submissions
            (:meth:`submit_seq`) are deduplicated per client through
            :class:`~repro.service.protocol.DeliveryWindow`, every
            released record is journaled *before* the engine feeds it
            (the durable-ownership point an ack certifies), and on
            resume the journaled suffix past the checkpoint replays
            into the engine while the restored watermarks suppress
            client resends — so retries, duplicated packets, and
            server restarts collapse to exactly-once effects on the
            tenant's artifacts.  An exactly-once resume fast-forwards
            to the checkpoint position (clients resend only the
            unacked suffix), unlike the v1 replay-from-start
            contract.
        telemetry / io: observability handle and IO seam, both
            optional.
    """

    def __init__(
        self,
        tenant: str,
        data_dir: str,
        factory,
        *,
        parser_name: str = "parser",
        flush_policy: str = "prefix",
        flush_size: int = 200,
        cache_capacity: int = 512,
        max_pending: int | None = None,
        overflow: str = "block",
        budget: ResourceBudget | None = None,
        ladder: DegradationLadder | None = None,
        check_every: int = 100,
        breaker_threshold: int = 5,
        exactly_once: bool = False,
        telemetry=None,
        io=None,
    ) -> None:
        if breaker_threshold < 1:
            raise ValidationError(
                f"breaker_threshold must be >= 1, got {breaker_threshold}"
            )
        if budget is not None and ladder is None:
            raise ValidationError(
                "a budgeted shard needs a degradation ladder "
                "(it must be able to shed fidelity before it trips)"
            )
        if exactly_once and budget is not None:
            raise ValidationError(
                "exactly-once delivery requires checkpoint resume, "
                "which budgeted shards do not support"
            )
        self.tenant = tenant
        self.dir = os.path.join(data_dir, tenant)
        os.makedirs(self.dir, exist_ok=True)
        self.parser_name = parser_name
        self.telemetry = telemetry
        self.io = io
        self.breaker_threshold = breaker_threshold
        self.checkpoint_path = os.path.join(self.dir, CHECKPOINT_NAME)
        self.quarantine_path = os.path.join(self.dir, QUARANTINE_NAME)
        self.manifest_path = os.path.join(self.dir, MANIFEST_NAME)
        self.quarantine = QuarantineSink(
            self.quarantine_path, telemetry=telemetry, io=io
        )
        self._lock = threading.Lock()
        self.seen = 0
        self.accepted = 0
        self._skip = 0
        self.breaker_open = False
        self.breaker_reason: str | None = None
        self._failures = 0
        self._budgeted = budget is not None
        self._drained: dict | None = None
        # Exactly-once delivery state (protocol v2).  ``_ack_high`` is
        # the checkpointed view — highest contiguous acknowledged
        # sequence per client — maintained in *both* modes: the
        # thread shard derives it from its live windows, the worker
        # shard mirrors the metadata riding its feed messages so the
        # supervisor's windows survive in its checkpoint.
        self.exactly_once = exactly_once
        self._ack_high: dict[str, int] = {}
        self._windows: dict[str, DeliveryWindow] = {}
        self._djournal: BatchJournal | None = None
        # High-water marks for the read-time per-tenant counter sync
        # (engine counters are the source of truth; the registry child
        # catches up by delta at collect time).
        self._published: dict[str, float] = {}
        self._publish_lock = threading.Lock()

        resuming = os.path.exists(self.checkpoint_path)
        delivery_state: dict | None = None
        if self._budgeted:
            if resuming:
                raise ValidationError(
                    f"tenant {tenant!r} has a checkpoint but the service "
                    "is budgeted; budgeted shards (delta policy, live "
                    "ladder state) do not support resume — clear the "
                    "tenant directory or drop the budget"
                )
            monitor = BudgetMonitor(budget)
            self._session = DegradedSession(
                ladder if ladder is not None else DegradationLadder(),
                monitor,
                check_every=check_every,
                track_matrix=False,
                error_policy="quarantine",
                quarantine=self.quarantine,
                telemetry=telemetry,
                max_pending=max_pending,
                overflow=overflow,
                source_label=f"tenant:{tenant}",
            )
            self.engine = self._session.engine
        elif resuming:
            checkpoint = load_checkpoint(
                self.checkpoint_path, telemetry=telemetry
            )
            for path, offsets in checkpoint.artifacts.items():
                reconcile_jsonl(
                    path, offsets["bytes"], io=io, telemetry=telemetry
                )
            self.engine = restore_streaming_parser(
                checkpoint,
                factory,
                error_policy="quarantine",
                quarantine=self.quarantine,
                source_label=f"tenant:{tenant}",
                telemetry=telemetry,
            )
            self._session = ParseSession(self.engine, track_matrix=False)
            self._skip = checkpoint.records_consumed
            self.seen = 0
            delivery_state = checkpoint.delivery
        else:
            self.engine = StreamingParser(
                factory,
                flush_policy=flush_policy,
                flush_size=flush_size,
                cache_capacity=cache_capacity,
                max_pending=max_pending,
                overflow=overflow,
                error_policy="quarantine",
                quarantine=self.quarantine,
                source_label=f"tenant:{tenant}",
                telemetry=telemetry,
            )
            self._session = ParseSession(self.engine, track_matrix=False)

        for client, high in (delivery_state or {}).get("clients", {}).items():
            self._ack_high[client] = int(high)
            if exactly_once:
                self._windows[client] = DeliveryWindow(high=int(high))
        if exactly_once:
            # Ownership journal: recover the suffix a previous life
            # appended after its last checkpoint and replay it into
            # the engine.  Those lines were acked — the client will
            # not resend them — so replay here is what makes the ack
            # a durable promise across SIGKILL.
            self._djournal = BatchJournal(
                os.path.join(self.dir, DELIVERY_JOURNAL_NAME),
                io=io,
                recover=True,
            )
            if resuming:
                # v2 sources resend only the unacked suffix (the
                # windows identify it); nobody replays from record 0.
                self.seen = self._skip
            for index, record, delivery in self._djournal.recovered:
                if index < self._skip:
                    continue  # already inside the checkpoint
                if delivery is not None:
                    window = self._windows.setdefault(
                        delivery[0], DeliveryWindow()
                    )
                    window.advance(delivery[1])
                    self._ack_high[delivery[0]] = window.high
                self._submit_locked(record)

        if telemetry is not None:
            telemetry.metrics.register_collector(
                self._collect_tenant_metrics
            )

    # ------------------------------------------------------------------

    def _publish_counter(
        self, metric: str, key: str, value: float, **labels
    ) -> None:
        """Delta-sync one monotonic engine counter into the registry."""
        last = self._published.get(key, 0.0)
        if value > last:
            self.telemetry.metrics.get(metric).labels(
                tenant=self.tenant, **labels
            ).inc(value - last)
            self._published[key] = value

    def _collect_tenant_metrics(self) -> None:
        """Read-time sync of per-tenant SLO families (thread mode).

        Registered as a registry collector so any scrape or
        ``value()`` read sees live engine counters without the shard
        pushing on its hot path.  Serialized by its own lock — two
        concurrent scrapes must not double-apply a delta — and never
        takes the shard lock, so a scrape cannot stall ingest.
        """
        with self._publish_lock:
            counters = self.engine.counters
            self._publish_counter(
                "repro_tenant_lines_total", "lines", counters.lines
            )
            self._publish_counter(
                "repro_tenant_cache_hits_total", "exact_hits",
                counters.exact_hits, kind="exact",
            )
            self._publish_counter(
                "repro_tenant_cache_hits_total", "template_hits",
                counters.template_hits, kind="template",
            )
            self._publish_counter(
                "repro_tenant_cache_misses_total", "misses",
                counters.misses,
            )
            self._publish_counter(
                "repro_tenant_quarantined_total", "quarantined",
                float(len(self.quarantine)),
            )
            self.telemetry.metrics.get("repro_tenant_events").labels(
                tenant=self.tenant
            ).set(float(counters.events))

    @property
    def pending(self) -> int:
        """Engine miss-buffer depth (the global queue probe sums these)."""
        return self.engine.pending_count

    @property
    def resumed(self) -> bool:
        return self._skip > 0

    @property
    def position(self) -> int:
        """Global stream position: records consumed across all lives."""
        return max(self._skip, self.seen)

    def fast_forward(self) -> None:
        """Declare that the source resumes *at* the checkpoint position.

        The default replay contract expects the source to replay from
        the beginning (``seen`` catches up with ``_skip`` one record
        at a time).  A supervisor that journals in-flight records
        replays only the suffix *after* the checkpoint — it calls this
        so ``submit`` treats the next record as position ``_skip``
        instead of position 0.
        """
        with self._lock:
            self.seen = max(self.seen, self._skip)

    def _quarantine(
        self, record: LogRecord, index: int, reason: str, detail: str
    ) -> None:
        self.quarantine.add(
            QuarantineRecord(
                source=f"tenant:{self.tenant}",
                line_no=index,
                byte_offset=-1,
                reason=reason,
                detail=detail,
                preview=record.content[:200],
            )
        )

    def _trip(self, reason: str) -> None:
        self.breaker_open = True
        self.breaker_reason = reason
        if self.telemetry is not None:
            self.telemetry.metrics.get(
                "repro_service_breaker_total"
            ).labels(tenant=self.tenant, state="open").inc()
            self.telemetry.events.emit(
                "tenant_breaker", tenant=self.tenant, reason=reason
            )

    # ------------------------------------------------------------------

    def submit(self, record: LogRecord, delivery=None) -> str:
        """Feed one record through the tenant's failure domain.

        Returns an outcome tag: ``accepted`` (parsed or buffered),
        ``replayed`` (skipped — a resumed shard already holds it),
        ``rejected`` (the engine's screen or backpressure refused it;
        already quarantined/counted by the engine), ``quarantined``
        (this feed crashed the parser; the record is in quarantine),
        or ``breaker`` (the circuit breaker is open).  Never raises on
        tenant-attributable faults — that is the isolation contract.

        *delivery* is an optional ``(client_id, seq)`` pair: a
        process-mode worker mirrors the supervisor's delivery
        metadata here so its checkpoint carries the acknowledged
        watermarks (the supervisor deduplicates; the worker only
        persists).
        """
        with self._lock:
            outcome = self._submit_locked(record)
            if delivery is not None:
                client, seq = delivery
                if seq > self._ack_high.get(client, 0):
                    self._ack_high[client] = seq
            return outcome

    def submit_seq(
        self, record: LogRecord, client: str, seq: int
    ) -> tuple[str, int]:
        """Feed one sequence-tagged record exactly once (protocol v2).

        The (client, tenant) :class:`DeliveryWindow` classifies the
        arrival: duplicates are suppressed, gaps are held back, and
        releases are journaled (the durable-ownership point) then fed
        in sequence order.  Returns ``(outcome, high)`` where *high*
        is the cumulative acknowledgement watermark the caller sends
        back to the client — by the time it is returned, every
        sequence it covers is either in the checkpointed engine or in
        the ownership journal.
        """
        if not self.exactly_once:
            raise ValidationError(
                "sequence-tagged submit requires an exactly-once "
                "shard (protocol v2)"
            )
        with self._lock:
            window = self._windows.get(client)
            if window is None:
                window = self._windows.setdefault(client, DeliveryWindow())
            status, released = window.observe(seq, record)
            if status == DUPLICATE:
                if self.telemetry is not None:
                    self.telemetry.metrics.get(
                        "repro_delivery_duplicates_suppressed_total"
                    ).labels(tenant=self.tenant).inc()
                return DUPLICATE, window.high
            if status == PENDING:
                return PENDING, window.high
            outcome = ACCEPTED
            for rseq, rrecord in released:
                self._djournal.append(self.seen, rrecord, (client, rseq))
                result = self._submit_locked(rrecord)
                if rseq == seq:
                    outcome = result
            self._ack_high[client] = window.high
            return outcome, window.high

    def _submit_locked(self, record: LogRecord) -> str:
        index = self.seen
        self.seen += 1
        if self.seen <= self._skip:
            return REPLAYED
        if self.breaker_open:
            self._quarantine(
                record,
                index,
                REASON_BREAKER,
                f"circuit breaker open: {self.breaker_reason}",
            )
            return BREAKER
        try:
            fed_at = time.perf_counter()
            line_no = self._session.feed(record)
        except BudgetExceededError as error:
            self._trip(f"budget exhausted: {error}")
            self._quarantine(record, index, REASON_BUDGET, str(error))
            return BREAKER
        except Exception as error:  # noqa: BLE001 - isolation boundary
            self._failures += 1
            self._quarantine(
                record,
                index,
                REASON_CRASH,
                f"{type(error).__name__}: {error}",
            )
            if self._failures >= self.breaker_threshold:
                self._trip(
                    f"{self._failures} consecutive parser crashes "
                    f"(last: {type(error).__name__}: {error})"
                )
            return QUARANTINED
        self._failures = 0
        if self.telemetry is not None:
            self.telemetry.metrics.get(
                "repro_tenant_ingest_latency_seconds"
            ).labels(tenant=self.tenant).observe(
                max(0.0, time.perf_counter() - fed_at)
            )
        if line_no < 0:
            return REJECTED
        self.accepted += 1
        if self.telemetry is not None:
            self.telemetry.metrics.get(
                "repro_service_lines_total"
            ).labels(tenant=self.tenant).inc()
        return ACCEPTED

    def poison(
        self, record: LogRecord, detail: str, delivery=None
    ) -> str:
        """Divert one record to quarantine *instead of* feeding it.

        The supervisor calls this for a record whose replay killed the
        worker ``poison_threshold`` consecutive times: the record gets
        ``poison:<tenant>`` provenance, the stream position advances
        past it (so the checkpoint and any later replay skip it), and
        the engine never sees it again.  *delivery* mirrors the
        ``(client_id, seq)`` metadata into the checkpointed watermarks
        exactly as :meth:`submit` does — a poisoned line was still
        acknowledged, so its sequence must not regress on restart.
        """
        with self._lock:
            index = self.seen
            self.seen += 1
            if delivery is not None:
                client, seq = delivery
                if seq > self._ack_high.get(client, 0):
                    self._ack_high[client] = seq
            self.quarantine.add(
                QuarantineRecord(
                    source=f"poison:{self.tenant}",
                    line_no=index,
                    byte_offset=-1,
                    reason=REASON_POISON,
                    detail=detail,
                    preview=record.content[:200],
                )
            )
            if self.telemetry is not None:
                self.telemetry.metrics.get(
                    "repro_shard_poison_records_total"
                ).labels(tenant=self.tenant).inc()
                self.telemetry.events.emit(
                    "poison_record",
                    tenant=self.tenant,
                    index=index,
                    detail=detail,
                )
            return QUARANTINED

    # ------------------------------------------------------------------

    def checkpoint(self) -> None:
        """Persist the engine position + quarantine offsets, atomically."""
        with self._lock:
            self._checkpoint_locked()

    def _delivery_state(self) -> dict | None:
        """Checkpoint-ready acknowledgement watermarks (sorted, stable)."""
        if not self._ack_high:
            return None
        return {"clients": dict(sorted(self._ack_high.items()))}

    def _checkpoint_locked(self) -> None:
        artifacts = {}
        q_bytes, q_records = self.quarantine.offset()
        if q_bytes or q_records:
            artifacts[self.quarantine_path] = {
                "bytes": q_bytes,
                "records": q_records,
            }
        save_checkpoint(
            self.checkpoint_path,
            self.engine,
            records_consumed=max(self._skip, self.seen),
            parser=self.parser_name,
            source=f"tenant:{self.tenant}",
            artifacts=artifacts,
            delivery=self._delivery_state(),
            io=self.io,
            telemetry=self.telemetry,
        )
        if self._djournal is not None:
            # Every journaled record is now inside the checkpoint
            # (append is immediately followed by the engine feed the
            # checkpoint just captured) — prune to empty.
            self._djournal.reset(())

    def drain(self) -> dict:
        """Finalize, write outputs + checkpoint + manifest; idempotent.

        The engine keeps accepting ``feed`` after ``finalize`` — a
        resumed service restores the drained checkpoint and simply
        continues — so drain is a durable pause, not a terminal state.
        """
        with self._lock:
            if self._drained is not None:
                return self._drained
            span = None
            if self.telemetry is not None:
                span = self.telemetry.tracer.start(
                    SPAN_TENANT_DRAIN, tenant=self.tenant
                )
            if self._budgeted:
                report = self._session.finalize()
                result = report.result
            else:
                result = self._session.finalize()
            artifacts: list[tuple[str, str]] = []
            if result is not None:
                events_path, structured_path = write_parse_result(
                    result, os.path.join(self.dir, STEM), io=self.io
                )
                artifacts.append((events_path, CODEC_LINES))
                artifacts.append((structured_path, CODEC_LINES))
            self._checkpoint_locked()
            if self._djournal is not None:
                # Fully captured by the final checkpoint; a clean
                # tenant directory holds only manifest-covered files.
                self._djournal.remove()
            artifacts.append((self.checkpoint_path, CODEC_OPAQUE))
            self.quarantine.close()
            if os.path.exists(self.quarantine_path):
                artifacts.append((self.quarantine_path, CODEC_FRAMED))
            manifest = RunManifest(
                run={"tenant": self.tenant, "parser": self.parser_name}
            )
            for path, codec in artifacts:
                manifest.add(path, codec=codec)
            manifest.write(self.manifest_path, io=self.io)
            counters = self.engine.counters
            summary = {
                "tenant": self.tenant,
                "seen": max(self._skip, self.seen),
                "accepted": self.accepted,
                "lines": counters.lines,
                "events": counters.events,
                "quarantined": len(self.quarantine),
                "breaker_open": self.breaker_open,
                "manifest": self.manifest_path,
            }
            if span is not None:
                span.attrs.update(
                    lines=counters.lines, events=counters.events
                )
                self.telemetry.tracer.finish(span)
            self._drained = summary
            return summary

    def describe(self) -> str:
        counters = self.engine.counters
        state = "open" if self.breaker_open else "closed"
        return (
            f"{self.tenant}: {counters.lines} lines, "
            f"{counters.events} events, {len(self.quarantine)} "
            f"quarantined, breaker {state}"
        )
