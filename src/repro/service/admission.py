"""Admission control for the multi-tenant ingestion service.

Two layers, cheapest first:

* a per-tenant :class:`TokenBucket` rate limit — a tenant that floods
  faster than its refill rate is refused at the door, before its bytes
  touch any shard state; and
* a global pressure valve: an :class:`AdmissionController` holding a
  :class:`~repro.degradation.budget.BudgetMonitor` over the *service*
  (process memory + summed shard queue depth).  Every ``check_every``
  admissions it re-grades the budget; under a **soft** breach the
  noisiest tenant is *sampled* (1 in ``sample_keep`` lines admitted),
  under a **hard** breach the noisiest tenant is *shed* outright.
  "Noisiest" is the tenant with the highest exponentially-decayed
  admission count, so fairness follows recent behavior, not lifetime
  totals — a tenant that quiets down is forgiven within a few windows.

The controller is passive about everything else: it never touches
shards, so a refusal is always attributable (``rate`` / ``sampled`` /
``shed``) and the service can count it per tenant.
"""

from __future__ import annotations

import time
from collections.abc import Callable

from repro.common.errors import ValidationError
from repro.degradation.budget import LEVEL_HARD, LEVEL_SOFT, BudgetMonitor

#: Refusal causes reported by :meth:`AdmissionController.admit`.
CAUSE_RATE = "rate"
CAUSE_SAMPLED = "sampled"
CAUSE_SHED = "shed"


class TokenBucket:
    """Classic token bucket: *rate* tokens/second, capacity *burst*.

    The clock is injectable so tests replay schedules deterministically
    (the default is :func:`time.monotonic`).
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0:
            raise ValidationError(f"rate must be > 0, got {rate}")
        if burst < 1:
            raise ValidationError(f"burst must be >= 1, got {burst}")
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._tokens = float(burst)
        self._last = clock()

    def try_take(self, n: float = 1.0) -> bool:
        """Take *n* tokens if available; False means rate-limited."""
        now = self._clock()
        self._tokens = min(
            self.burst, self._tokens + (now - self._last) * self.rate
        )
        self._last = now
        if self._tokens >= n:
            self._tokens -= n
            return True
        return False


class AdmissionController:
    """Per-tenant rate limits plus global-budget pressure shedding.

    Args:
        rate / burst: token-bucket parameters applied to every tenant
            (``None`` disables rate limiting).
        monitor: budget monitor over the whole service — typically
            built from ``ResourceBudget.of(memory_mb=..., queue_depth=...)``
            with its ``queue_probe`` wired to the service's summed
            shard queue depth.  ``None`` disables pressure shedding.
        check_every: admissions between budget re-grades (the cached
            grade is used in between, keeping the per-line cost at a
            dict lookup).
        sample_keep: under a soft breach, admit 1 of every this-many
            lines from the noisiest tenant.
        decay: multiplier applied to every tenant's window count at
            each budget check (0 < decay < 1); smaller forgets faster.

    Not thread-safe on its own — the service serializes calls.
    """

    def __init__(
        self,
        *,
        rate: float | None = None,
        burst: float | None = None,
        monitor: BudgetMonitor | None = None,
        check_every: int = 64,
        sample_keep: int = 2,
        decay: float = 0.5,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if check_every < 1:
            raise ValidationError(
                f"check_every must be >= 1, got {check_every}"
            )
        if sample_keep < 2:
            raise ValidationError(
                f"sample_keep must be >= 2, got {sample_keep}"
            )
        if not 0.0 < decay < 1.0:
            raise ValidationError(f"decay must be in (0, 1), got {decay}")
        self.rate = rate
        self.burst = burst if burst is not None else (rate or 0) * 2
        self.monitor = monitor
        self.check_every = check_every
        self.sample_keep = sample_keep
        self.decay = decay
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}
        self._window: dict[str, float] = {}
        self._admissions = 0
        self._level: str | None = None
        self._noisiest: str | None = None
        self._sampled = 0
        #: Grades observed at each re-check, newest last (audit trail).
        self.pressure_events: list[dict] = []

    # ------------------------------------------------------------------

    def _bucket(self, tenant: str) -> TokenBucket | None:
        if self.rate is None:
            return None
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(self.rate, self.burst, clock=self._clock)
            self._buckets[tenant] = bucket
        return bucket

    def _regrade(self) -> None:
        """Re-sample the global budget and refresh the pressure state."""
        for tenant in self._window:
            self._window[tenant] *= self.decay
        if self.monitor is None:
            return
        sample, breaches = self.monitor.evaluate()
        level = None
        for breach in breaches:
            if breach.level == LEVEL_HARD:
                level = LEVEL_HARD
                break
            level = LEVEL_SOFT
        previous = self._level
        self._level = level
        self._noisiest = (
            max(self._window, key=self._window.get)  # type: ignore[arg-type]
            if level is not None and self._window
            else None
        )
        if level != previous:
            self.pressure_events.append(
                {
                    "level": level,
                    "noisiest": self._noisiest,
                    "sample": sample.to_dict(),
                    "breaches": [b.describe() for b in breaches],
                }
            )

    # ------------------------------------------------------------------

    def admit(self, tenant: str) -> tuple[bool, str | None]:
        """Decide one line: ``(admitted, cause)``.

        *cause* is ``None`` on admission, else one of ``rate`` /
        ``sampled`` / ``shed``.
        """
        self._admissions += 1
        if self._admissions % self.check_every == 0:
            self._regrade()
        bucket = self._bucket(tenant)
        if bucket is not None and not bucket.try_take():
            return False, CAUSE_RATE
        self._window[tenant] = self._window.get(tenant, 0.0) + 1.0
        if self._level is not None and tenant == self._noisiest:
            if self._level == LEVEL_HARD:
                return False, CAUSE_SHED
            self._sampled += 1
            if self._sampled % self.sample_keep != 0:
                return False, CAUSE_SAMPLED
        return True, None

    def describe(self) -> str:
        bits = []
        if self.rate is not None:
            bits.append(f"rate={self.rate:g}/s burst={self.burst:g}")
        if self.monitor is not None:
            bits.append(self.monitor.budget.describe())
        state = f"pressure={self._level or 'none'}"
        if self._noisiest:
            state += f" noisiest={self._noisiest}"
        bits.append(state)
        return "admission: " + ", ".join(bits)
