"""Graceful-shutdown signal plumbing shared by the CLI and the service.

The stream/soak/serve commands all hold state that must be finalized
before the process may exit — checkpoints, telemetry artifacts,
manifests, per-tenant shard outputs.  Their ``try/finally`` exporters
already cover exceptions; this module covers *signals*: under
:func:`graceful_signals`, ``SIGINT``/``SIGTERM`` request a shutdown
that unwinds through the same ``except``/``finally`` blocks an
ordinary failure takes.

Two delivery modes, chosen by where the signal may land:

* **cooperative** (default): the handler only records the signal on
  the yielded :class:`ShutdownGuard`; the work loop calls
  :meth:`ShutdownGuard.check` at record boundaries and raises
  :class:`ShutdownRequested` there.  This is mandatory around the
  streaming engine — an asynchronous raise mid-``feed`` could leave
  half-applied engine state inside the very checkpoint the shutdown
  is trying to save.
* **immediate** (``immediate=True``): the handler raises directly.
  Correct only when the main thread holds no mutable state — e.g.
  ``serve``, whose main thread just sleeps while connection threads
  own the shards, or ``soak``, which persists nothing mid-run.

The exit-code convention follows the shell: an interrupted
``stream``/``soak`` run finalizes its artifacts and exits
``128 + signum`` (callers still see it was signalled), while ``serve``
treats a signal as the *drain request* it is and exits 0 after a
clean drain.
"""

from __future__ import annotations

import signal
import threading
from contextlib import contextmanager

#: Signals that request a graceful shutdown.
GRACEFUL_SIGNALS = (signal.SIGINT, signal.SIGTERM)


class ShutdownRequested(Exception):
    """A graceful-shutdown signal arrived; unwind, finalize, exit.

    Deliberately *not* a :class:`~repro.common.errors.ReproError`: a
    signal is not a failure, and the CLI's error-to-exit-code mapping
    must not claim it.  Carries the signal number so handlers can
    compute the conventional ``128 + signum`` exit code.
    """

    def __init__(self, signum: int) -> None:
        try:
            name = signal.Signals(signum).name
        except ValueError:  # pragma: no cover - unknown signal number
            name = str(signum)
        super().__init__(f"shutdown requested by {name}")
        self.signum = signum

    @property
    def exit_code(self) -> int:
        """The shell convention for death-by-signal."""
        return 128 + self.signum


class ShutdownGuard:
    """Cooperative shutdown flag a work loop polls at safe points."""

    def __init__(self) -> None:
        self.signum: int | None = None

    @property
    def requested(self) -> bool:
        return self.signum is not None

    def check(self) -> None:
        """Raise :class:`ShutdownRequested` if a signal has arrived.

        Call this only at points where every invariant holds (between
        records, after a checkpoint) — that is the whole reason the
        raise is deferred to here.
        """
        if self.signum is not None:
            raise ShutdownRequested(self.signum)


@contextmanager
def graceful_signals(signums=GRACEFUL_SIGNALS, *, immediate: bool = False):
    """Install graceful handlers for *signums*; yields a :class:`ShutdownGuard`.

    Handlers are installed on entry and the previous ones restored on
    exit.  Signal handlers can only live in the main thread; entered
    from any other thread (in-process tests driving ``main()`` from a
    worker) this yields an inert guard and installs nothing, so
    callers never need to care.
    """
    guard = ShutdownGuard()
    if threading.current_thread() is not threading.main_thread():
        yield guard
        return

    def _handle(signum, frame):  # noqa: ARG001 - signal handler shape
        guard.signum = signum
        if immediate:
            raise ShutdownRequested(signum)

    previous = {}
    try:
        for signum in signums:
            previous[signum] = signal.signal(signum, _handle)
        yield guard
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
