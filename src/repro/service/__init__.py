"""Long-running multi-tenant ingestion service.

The paper evaluates parsers on offline corpora; the production shape
this repo grows toward is a service holding many concurrent tenants,
where the failure domain is no longer "one run" but "one tenant among
many".  This package lifts the per-stream machinery built by earlier
layers — supervision, budgets, quarantine, checkpoints, durable
manifests — into that shape:

* :mod:`~repro.service.shard` — :class:`TenantShard`, one tenant's
  isolated failure domain: own engine+cache, quarantine, checkpoint,
  optional budget/ladder, circuit breaker;
* :mod:`~repro.service.admission` — per-tenant token buckets plus a
  global budget valve that samples/sheds the noisiest tenant first;
* :mod:`~repro.service.server` — the tenant router
  (:class:`IngestionService`), the threaded TCP line front end
  (:class:`LineServer`), and the in-process replay adapter;
* :mod:`~repro.service.signals` — SIGINT/SIGTERM →
  :class:`ShutdownRequested`, so an interrupted run finalizes through
  the same path as a clean one;
* :mod:`~repro.service.protocol` — wire protocol v2: sequence-tagged
  lines, cumulative acks, per-client :class:`DeliveryWindow` dedup,
  and the ownership :class:`BatchJournal`;
* :mod:`~repro.service.client` — :class:`DurableSender`, the
  spool-backed exactly-once producer.

The drain protocol is the contract everything hangs off: stop
accepting, flush every shard through the prefix policy (byte-identical
to batch), finalize per-tenant checkpoints and manifests, exit 0.
"""

from repro.service.admission import AdmissionController, TokenBucket
from repro.service.client import DurableSender
from repro.service.protocol import (
    DeliveryWindow,
    PROTOCOL_V1,
    PROTOCOL_V2,
    PROTOCOLS,
)
from repro.service.server import (
    ISOLATION_MODES,
    ISOLATION_PROCESS,
    ISOLATION_THREAD,
    IngestionService,
    LineServer,
    REASON_PROTOCOL,
    replay_lines,
)
from repro.service.shard import (
    REASON_BREAKER,
    REASON_BUDGET,
    REASON_CRASH,
    REASON_POISON,
    TenantShard,
)
from repro.service.signals import ShutdownRequested, graceful_signals
from repro.service.workers import (
    BatchJournal,
    ShardSupervisor,
    ShardWorker,
    WorkerSpec,
    supervisor_status,
)

__all__ = [
    "AdmissionController",
    "TokenBucket",
    "DurableSender",
    "DeliveryWindow",
    "PROTOCOL_V1",
    "PROTOCOL_V2",
    "PROTOCOLS",
    "ISOLATION_MODES",
    "ISOLATION_PROCESS",
    "ISOLATION_THREAD",
    "IngestionService",
    "LineServer",
    "REASON_PROTOCOL",
    "replay_lines",
    "REASON_BREAKER",
    "REASON_BUDGET",
    "REASON_CRASH",
    "REASON_POISON",
    "TenantShard",
    "ShutdownRequested",
    "graceful_signals",
    "BatchJournal",
    "ShardSupervisor",
    "ShardWorker",
    "WorkerSpec",
    "supervisor_status",
]
