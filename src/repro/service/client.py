"""Durable exactly-once log sender: the client half of protocol v2.

:class:`DurableSender` is the producer-side contract that makes the
server's delivery guarantee end-to-end: every line is **spooled before
it is wired** — appended, framed, to a local JSONL spool through the
durability layer — and removed from the unacked set only when a
cumulative ``ACK`` covers its sequence number.  The consequences:

* a server crash, a dropped connection, or a lost ack never loses a
  line — the unacked suffix is resent, in sequence order, on the next
  :meth:`flush` or by a fresh sender recovered from the same spool;
* resends are *safe* because the server's per-(client, tenant)
  :class:`~repro.service.protocol.DeliveryWindow` suppresses
  duplicates — the client errs toward resending, the server dedups;
* a client process crash loses nothing: the spool survives, sequence
  counters rebuild from it, and recovery conservatively treats every
  spooled line as unacked (the ack watermark is in-memory state).

Reconnects back off exponentially with jitter, capped at
``max_backoff`` — a thundering herd of senders re-finding a restarted
server spreads out instead of synchronizing.

The sender also *enacts* :class:`~repro.resilience.faults.NetworkFault`
scripts (partition, half-close, duplicate-delivery, reorder-within-
window, ack-drop) so the certification harness can drive a seeded
storm through a client that is honestly trying to deliver — the
faulted run must still converge to exactly-once server-side effects.
"""

from __future__ import annotations

import random
import socket
import time

from repro.common.errors import DeliveryError, ValidationError
from repro.resilience.durability import (
    RealIO,
    atomic_write_text,
    frame_record,
    recover_jsonl,
)
from repro.resilience.faults import (
    NET_ACK_DROP,
    NET_DUPLICATE,
    NET_HALF_CLOSE,
    NET_PARTITION,
    NET_REORDER,
)
from repro.service.protocol import (
    CLIENT_ID_RE,
    data_line,
    hello_line,
    parse_ack,
)

#: Handshake / single-read timeout while polling for acks.
DEFAULT_ACK_POLL = 0.05


class DurableSender:
    """Spool-backed exactly-once sender for the v2 line front end.

    Args:
        host / port: the :class:`~repro.service.server.LineServer`
            endpoint (which must be serving protocol v2).
        client_id: stable identity keying the server's dedup windows;
            reuse the same id over the same spool across restarts.
        spool_path: framed-JSONL spool file; created on first send,
            recovered (torn tail truncated) when it already exists.
        connect_timeout: per-attempt TCP connect deadline.
        base_backoff / max_backoff: reconnect backoff shape; the delay
            doubles per consecutive failure with multiplicative jitter
            in [0.5, 1.0], capped at *max_backoff*.
        faults: :class:`~repro.resilience.faults.NetworkFault` script,
            keyed by transmission index (every wire transmission —
            including resends — counts).
        telemetry: optional; publishes ``repro_delivery_spool_depth``
            and ``repro_delivery_resend_total``.
        io: durability seam for the spool writes.
        rng: randomness source for backoff jitter (injectable).
    """

    def __init__(
        self,
        host: str,
        port: int,
        client_id: str,
        spool_path: str,
        *,
        connect_timeout: float = 5.0,
        base_backoff: float = 0.05,
        max_backoff: float = 1.0,
        faults=(),
        telemetry=None,
        io: RealIO | None = None,
        rng: random.Random | None = None,
    ) -> None:
        if not CLIENT_ID_RE.match(client_id):
            raise ValidationError(
                f"invalid client id {client_id[:64]!r} "
                "(expected [A-Za-z0-9._-]{1,64})"
            )
        self.host = host
        self.port = port
        self.client_id = client_id
        self.spool_path = spool_path
        self.connect_timeout = connect_timeout
        self.base_backoff = base_backoff
        self.max_backoff = max_backoff
        self.telemetry = telemetry
        self._io = io or RealIO()
        self._rng = rng or random.Random()
        self.script = {fault.at_line: fault for fault in faults}
        if len(self.script) != len(tuple(faults)):
            raise ValidationError(
                "network fault script has two faults on one "
                "transmission; use disjoint at_line values"
            )
        #: Spooled entries in send order: (tenant, seq, content).
        self._entries: list[tuple[str, int, str]] = []
        #: Next sequence to assign, per tenant (1-based).
        self._seq: dict[str, int] = {}
        #: Highest cumulative ack received, per tenant.
        self._acked: dict[str, int] = {}
        #: Wire-transmission counter (fault script index space).
        self._tx_index = 0
        #: Reorder fault: one payload held back for the next send.
        self._held: bytes | None = None
        #: Ack-drop fault: acks left to discard client-side.
        self._drop_acks = 0
        self.resends = 0
        self.reconnects = 0
        self._sock: socket.socket | None = None
        self._rxbuf = b""
        recovery = recover_jsonl(spool_path, io=self._io)
        for payload in recovery.records:
            tenant = payload.get("tenant", "")
            seq = int(payload.get("seq", 0))
            if not tenant or seq < 1:
                continue  # torn or foreign frame; skip, never invent
            self._entries.append(
                (tenant, seq, payload.get("content", ""))
            )
            if seq >= self._seq.get(tenant, 1):
                self._seq[tenant] = seq + 1
        # Recovered entries sort per tenant by construction (appends
        # were in sequence order); the ack watermark was in-memory
        # state of the dead process, so everything spooled counts as
        # unacked — the server's windows absorb the over-resend.

    # -- spool ---------------------------------------------------------

    def _spool_append(self, tenant: str, seq: int, content: str) -> None:
        frame = frame_record(
            {"tenant": tenant, "seq": seq, "content": content}
        )
        handle = self._io.open(self.spool_path, "ab")
        try:
            self._io.write(handle, frame)
            self._io.flush(handle)
        finally:
            handle.close()

    def _compact(self) -> None:
        """Rewrite the spool to exactly the unacked entries."""
        self._entries = [
            entry for entry in self._entries
            if entry[1] > self._acked.get(entry[0], 0)
        ]
        text = b"".join(
            frame_record(
                {"tenant": tenant, "seq": seq, "content": content}
            )
            for tenant, seq, content in self._entries
        ).decode("utf-8")
        atomic_write_text(self.spool_path, text, io=self._io)
        self._publish_depth()

    def _publish_depth(self) -> None:
        if self.telemetry is not None:
            self.telemetry.metrics.get(
                "repro_delivery_spool_depth"
            ).set(float(len(self.unacked())))

    def _count_resend(self, n: int = 1) -> None:
        self.resends += n
        if self.telemetry is not None and n:
            self.telemetry.metrics.get(
                "repro_delivery_resend_total"
            ).inc(n)

    def unacked(self) -> list[tuple[str, int, str]]:
        """Spooled entries not yet covered by a cumulative ack."""
        return [
            entry for entry in self._entries
            if entry[1] > self._acked.get(entry[0], 0)
        ]

    @property
    def spool_depth(self) -> int:
        return len(self.unacked())

    # -- connection ----------------------------------------------------

    def _drop(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - already dead
                pass
            self._sock = None
        self._rxbuf = b""

    def _connect(self) -> socket.socket:
        """One connect + HELLO handshake attempt; raises on failure."""
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.connect_timeout
        )
        try:
            sock.sendall(hello_line(self.client_id))
            sock.settimeout(self.connect_timeout)
            reply = b""
            while b"\n" not in reply:
                chunk = sock.recv(256)
                if not chunk:
                    raise DeliveryError(
                        "server closed during protocol negotiation "
                        "(is it serving protocol v2?)"
                    )
                reply += chunk
                if len(reply) > 256:
                    break
            if not reply.startswith(b"OK v2"):
                raise DeliveryError(
                    f"server refused protocol v2 "
                    f"(reply: {reply[:64]!r})"
                )
        except (OSError, DeliveryError):
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass
            raise
        sock.settimeout(DEFAULT_ACK_POLL)
        self._sock = sock
        self._rxbuf = b""
        return sock

    def _ensure_connected(self, deadline: float | None) -> socket.socket:
        """Connect with capped-jitter backoff until *deadline*."""
        if self._sock is not None:
            return self._sock
        failures = 0
        while True:
            try:
                sock = self._connect()
            except (OSError, DeliveryError) as error:
                failures += 1
                delay = min(
                    self.max_backoff,
                    self.base_backoff * (2 ** (failures - 1)),
                ) * (0.5 + self._rng.random() / 2)
                if (
                    deadline is not None
                    and time.monotonic() + delay >= deadline
                ):
                    raise DeliveryError(
                        f"could not reach {self.host}:{self.port} "
                        f"before the flush deadline "
                        f"({failures} attempt(s); last: {error})"
                    ) from error
                time.sleep(delay)
                continue
            if failures:
                self.reconnects += 1
            return sock

    # -- wire ----------------------------------------------------------

    def _transmit(self, payload: bytes) -> None:
        """Send one encoded data line, enacting any scheduled fault.

        Raises ``OSError`` upward when the connection dies (including
        death *caused by* a partition/half-close fault) — the caller
        marks the connection down and the line stays spooled.
        """
        sock = self._sock
        if sock is None:  # pragma: no cover - callers ensure connected
            raise OSError("not connected")
        fault = self.script.get(self._tx_index)
        self._tx_index += 1
        held, self._held = self._held, None
        if fault is None:
            sock.sendall(payload)
            if held is not None:
                sock.sendall(held)
            return
        if fault.kind == NET_PARTITION:
            cut = max(1, int(len(payload) * fault.cut_fraction))
            try:
                sock.sendall(payload[:cut])
            finally:
                self._drop()
            raise OSError("partition: connection dropped mid-line")
        if fault.kind == NET_HALF_CLOSE:
            cut = max(1, int(len(payload) * fault.cut_fraction))
            try:
                sock.sendall(payload[:cut])
                sock.shutdown(socket.SHUT_WR)
            finally:
                self._drop()
            raise OSError("half-close: write side closed mid-line")
        if fault.kind == NET_DUPLICATE:
            sock.sendall(payload * fault.repeats)
        elif fault.kind == NET_REORDER:
            # Deliver this line *after* its successor: hold it back.
            # If nothing follows before a flush, the flush resend
            # releases it — the line is spooled either way.
            self._held = payload
        else:  # ack-drop: the line goes out, the replies get eaten
            self._drop_acks += fault.drop_acks
            sock.sendall(payload)
        if held is not None:
            sock.sendall(held)

    def _handle_ack(self, text: str) -> None:
        if self._drop_acks > 0:
            self._drop_acks -= 1
            return
        parsed = parse_ack(text)
        if parsed is None:
            return  # torn or foreign line; the next ack supersedes it
        tenant, high = parsed
        if high > self._acked.get(tenant, 0):
            self._acked[tenant] = high
            self._publish_depth()

    def poll(self, timeout: float = 0.0) -> int:
        """Drain available acks; returns how many were processed.

        With ``timeout=0`` only already-buffered data is consumed
        (plus one non-blocking read); positive timeouts block up to
        that long for the *first* byte.
        """
        sock = self._sock
        if sock is None:
            return 0
        processed = 0
        deadline = time.monotonic() + max(0.0, timeout)
        while True:
            while b"\n" in self._rxbuf:
                raw, _, self._rxbuf = self._rxbuf.partition(b"\n")
                self._handle_ack(raw.decode("utf-8", errors="replace"))
                processed += 1
            remaining = deadline - time.monotonic()
            try:
                sock.settimeout(max(0.001, min(DEFAULT_ACK_POLL, remaining)))
                chunk = sock.recv(65536)
            except socket.timeout:
                chunk = None
            except OSError:
                self._drop()
                return processed
            if chunk == b"":
                self._drop()
                return processed
            if chunk:
                self._rxbuf += chunk
                continue
            if remaining <= 0:
                return processed

    # -- public surface ------------------------------------------------

    def send(self, tenant: str, content: str) -> int:
        """Spool one line durably, then transmit it best-effort.

        Returns the sequence number assigned.  Never blocks on the
        network beyond a single send attempt and never raises on a
        dead connection — the line is already safe in the spool and
        :meth:`flush` (or a recovered sender) will deliver it.
        """
        if "\n" in content or "\t" in tenant:
            raise ValidationError(
                "content must be a single line and the tenant key "
                "must not contain tabs"
            )
        seq = self._seq.get(tenant, 1)
        self._seq[tenant] = seq + 1
        self._spool_append(tenant, seq, content)
        self._entries.append((tenant, seq, content))
        self._publish_depth()
        if self._sock is not None:
            try:
                self._transmit(data_line(seq, tenant, content))
            except OSError:
                self._drop()
        self.poll(0.0)
        return seq

    def flush(self, timeout: float = 30.0) -> dict:
        """Deliver every unacked line or die trying; returns a summary.

        Reconnects (with capped-jitter backoff), resends the unacked
        suffix in sequence order, and polls acks until the spool is
        clear — then compacts the spool and returns
        ``{"delivered": n, "resends": n, "reconnects": n}``.  Raises
        :class:`~repro.common.errors.DeliveryError` when *timeout*
        expires first; the unacked lines remain spooled.
        """
        deadline = time.monotonic() + timeout
        goal = len(self._entries)
        while True:
            pending = self.unacked()
            if not pending:
                break
            if time.monotonic() >= deadline:
                raise DeliveryError(
                    f"flush deadline expired with {len(pending)} "
                    f"line(s) unacknowledged (spool: {self.spool_path})"
                )
            try:
                self._ensure_connected(deadline)
                resent = 0
                for tenant, seq, content in pending:
                    self._transmit(data_line(seq, tenant, content))
                    resent += 1
                if self._held is not None:
                    # A trailing reorder hold has no successor to ride
                    # behind; release it now.
                    held, self._held = self._held, None
                    self._sock.sendall(held)
                self._count_resend(resent)
            except OSError:
                self._drop()
                continue
            self.poll(DEFAULT_ACK_POLL * 4)
        self._compact()
        return {
            "delivered": goal,
            "resends": self.resends,
            "reconnects": self.reconnects,
        }

    def close(self) -> None:
        self._drop()

    def __enter__(self) -> "DurableSender":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
