"""Delivery layer for exactly-once ingestion: wire protocol v2.

The v1 line protocol (``tenant<TAB>content\\n``) is fire-and-forget:
a server crash after ``recv`` silently drops lines, and a client that
retries re-ingests duplicates.  Protocol v2 closes that hop with three
cooperating pieces, all in this module:

* **Wire format.**  A v2 connection opens with a capability
  handshake — the client sends ``HELLO v2 <client_id>`` and the
  server answers ``OK v2`` — after which every data line carries a
  per-tenant monotonic sequence number::

      <seq> <tenant>\\t<content>\\n

  and the server answers with *cumulative* acknowledgements::

      ACK <tenant> <high>\\n

  where ``high`` is the highest contiguous sequence the server
  durably owns for that (client, tenant) stream.  A first line that
  is not a ``HELLO`` falls back to protocol v1 verbatim, so v1
  clients keep working against a v2 server unchanged (they simply get
  no acks, and no delivery guarantee).

* **:class:`DeliveryWindow`** — the per-(client, tenant) dedup state:
  a highest-contiguous-sequence watermark plus a bounded sparse
  holdback of out-of-order arrivals.  Duplicates (retries, duplicated
  packets, resends after a lost ack) are suppressed; gaps are held
  back and released *in sequence order* once the missing line
  arrives, so reordering on the wire never reorders the bytes a
  tenant's artifacts are built from.  Only the watermark persists in
  checkpoints — held-back lines were never acked, so the client
  resends them.

* **:class:`BatchJournal`** — the framed-JSONL ownership journal
  (previously private to :mod:`repro.service.workers`).  A line is
  *owned* — and therefore ackable — once appended here: the journal
  survives a ``SIGKILL`` and is replayed into the engine on resume,
  which is exactly the at-least-once contract PR 8 certified for the
  worker hop, now extended back to the network hop.

Acks are cumulative, so the ack channel is idempotent and lossy-safe:
a dropped ack is repaired by the next one, and a resend triggered by
a lost ack collapses in the window.
"""

from __future__ import annotations

import os
import re

from repro.common.errors import ValidationError
from repro.common.types import LogRecord
from repro.resilience.durability import (
    RealIO,
    atomic_write_text,
    frame_record,
    recover_jsonl,
)

#: Supported wire protocols for the line front end.
PROTOCOL_V1 = "v1"
PROTOCOL_V2 = "v2"
PROTOCOLS = (PROTOCOL_V1, PROTOCOL_V2)

#: Client ids are path-safe, like tenant keys (they key checkpoint
#: state and journal metadata).
CLIENT_ID_RE = re.compile(r"^[A-Za-z0-9._-]{1,64}$")

#: Delivery outcome tags (beside the shard/service outcome tags).
DUPLICATE = "duplicate"
PENDING = "pending"

#: Handshake reply lines.
OK_LINE = b"OK v2\n"
ERR_LINE = b"ERR unsupported-protocol\n"

#: Default bound on a window's out-of-order holdback buffer.
DEFAULT_HOLDBACK = 512


def hello_line(client_id: str) -> bytes:
    """The v2 capability-negotiation opener a client sends."""
    if not CLIENT_ID_RE.match(client_id):
        raise ValidationError(
            f"invalid client id {client_id[:64]!r} "
            "(expected [A-Za-z0-9._-]{1,64})"
        )
    return f"HELLO v2 {client_id}\n".encode("utf-8")


def parse_hello(text: str) -> str | None:
    """The client id of a well-formed ``HELLO v2`` line, else ``None``."""
    parts = text.rstrip("\r").split(" ")
    if len(parts) != 3 or parts[0] != "HELLO" or parts[1] != PROTOCOL_V2:
        return None
    if not CLIENT_ID_RE.match(parts[2]):
        return None
    return parts[2]


def data_line(seq: int, tenant: str, content: str) -> bytes:
    """One encoded v2 data line (sequence-tagged v1 payload)."""
    return f"{seq} {tenant}\t{content}\n".encode("utf-8")


def parse_data(text: str) -> tuple[int, str] | None:
    """Split a v2 data line into ``(seq, v1_payload)``; ``None`` if torn.

    The payload half is *exactly* a v1 line (``tenant<TAB>content``),
    so tenant-key validation stays in one place — the service's v1
    router — and a v2 reject quarantines with the same provenance.
    """
    seq_text, sep, payload = text.partition(" ")
    if not sep or not seq_text.isdigit():
        return None
    seq = int(seq_text)
    if seq < 1:
        return None
    return seq, payload


def ack_line(tenant: str, high: int) -> bytes:
    """One encoded cumulative acknowledgement."""
    return f"ACK {tenant} {high}\n".encode("utf-8")


def parse_ack(text: str) -> tuple[str, int] | None:
    """Split an ``ACK`` line into ``(tenant, high)``; ``None`` if torn."""
    parts = text.rstrip("\r").split(" ")
    if len(parts) != 3 or parts[0] != "ACK" or not parts[2].isdigit():
        return None
    return parts[1], int(parts[2])


class DeliveryWindow:
    """Per-(client, tenant) exactly-once dedup window.

    Tracks ``high`` — the highest sequence such that every sequence
    ``1..high`` has been released downstream — plus a bounded sparse
    holdback of out-of-order arrivals.  :meth:`observe` classifies one
    arrival:

    * ``duplicate`` — at or below the watermark, or already held
      back; the payload is dropped (this is the suppression that
      makes retries idempotent);
    * ``release`` — the next contiguous sequence; it and any
      now-contiguous held-back successors are returned *in sequence
      order* for ingestion, and the watermark advances past them;
    * ``pending`` — a gap; the payload is held back (or, past the
      holdback bound, dropped unacked — the client resends it).

    Only ``high`` is checkpointed: held-back payloads were never
    acknowledged, so crash recovery costs nothing but a resend.
    """

    def __init__(self, high: int = 0, holdback: int = DEFAULT_HOLDBACK) -> None:
        if high < 0:
            raise ValidationError(f"high must be >= 0, got {high}")
        if holdback < 1:
            raise ValidationError(f"holdback must be >= 1, got {holdback}")
        self.high = high
        self.holdback = holdback
        self._pending: dict[int, object] = {}

    @property
    def pending(self) -> int:
        """Held-back out-of-order arrivals (awaiting the gap line)."""
        return len(self._pending)

    def observe(self, seq: int, payload) -> tuple[str, list[tuple[int, object]]]:
        """Classify one arrival; returns ``(status, released)``.

        *released* is non-empty only for ``release``, and lists
        ``(seq, payload)`` pairs in strictly increasing sequence
        order — the exact order the engine must ingest them.
        """
        if seq < 1:
            raise ValidationError(f"sequence must be >= 1, got {seq}")
        if seq <= self.high or seq in self._pending:
            return DUPLICATE, []
        if seq != self.high + 1:
            if len(self._pending) < self.holdback:
                self._pending[seq] = payload
            return PENDING, []
        released = [(seq, payload)]
        self.high = seq
        while self.high + 1 in self._pending:
            self.high += 1
            released.append((self.high, self._pending.pop(self.high)))
        return "release", released

    def advance(self, seq: int) -> None:
        """Declare sequences through *seq* released (journal replay)."""
        if seq > self.high:
            self.high = seq
            for held in [s for s in self._pending if s <= seq]:
                del self._pending[held]


class BatchJournal:
    """Framed-JSONL journal of records not yet covered by a checkpoint.

    Records append *before* dispatch and are pruned (by atomic
    rewrite) when a checkpoint covers them — so the owner always
    holds, durably, exactly the records a restart must replay,
    including the one in flight at the crash.

    Entries are ``(index, record, delivery)`` triples where *index*
    is the tenant-global stream position and *delivery* is ``None``
    (a v1 line) or ``(client_id, seq)`` — the metadata that lets a
    resume rebuild its :class:`DeliveryWindow` watermarks past the
    checkpoint.

    With ``recover=True`` the surviving entries of a previous life
    are parsed (torn tail truncated) and exposed as
    :attr:`recovered` instead of being discarded — the exactly-once
    resume path.  The default discards them, preserving the original
    at-least-once contract where the *source* replays the stream.
    """

    def __init__(
        self, path: str, io: RealIO | None = None, *, recover: bool = False
    ) -> None:
        self.path = path
        self._io = io or RealIO()
        recovery = recover_jsonl(path, io=self._io)
        self.recovered: list[tuple[int, LogRecord, tuple | None]] = []
        if recover:
            self.recovered = sorted(
                (self._thaw(payload) for payload in recovery.records),
                key=lambda entry: entry[0],
            )
        else:
            # A journal left by a previous *service* life is stale
            # under the v1 contract: the source replays those records.
            self.reset(())

    @staticmethod
    def _frame(index: int, record: LogRecord, delivery=None) -> bytes:
        payload = {
            "index": index,
            "content": record.content,
            "timestamp": record.timestamp,
            "session_id": record.session_id,
            "truth_event": record.truth_event,
        }
        if delivery is not None:
            payload["client"] = delivery[0]
            payload["seq"] = delivery[1]
        return frame_record(payload)

    @staticmethod
    def _thaw(payload: dict) -> tuple[int, LogRecord, tuple | None]:
        record = LogRecord(
            content=payload.get("content", ""),
            timestamp=payload.get("timestamp"),
            session_id=payload.get("session_id"),
            truth_event=payload.get("truth_event"),
        )
        delivery = None
        if payload.get("client") is not None:
            delivery = (payload["client"], int(payload.get("seq", 0)))
        return int(payload.get("index", 0)), record, delivery

    def append(self, index: int, record: LogRecord, delivery=None) -> None:
        handle = self._io.open(self.path, "ab")
        try:
            self._io.write(handle, self._frame(index, record, delivery))
            self._io.flush(handle)
        finally:
            handle.close()

    def reset(self, entries) -> None:
        """Atomically rewrite the journal to exactly *entries*.

        Entries are ``(index, record)`` pairs or
        ``(index, record, delivery)`` triples.
        """
        text = b"".join(
            self._frame(*entry) for entry in entries
        ).decode("utf-8")
        atomic_write_text(self.path, text, io=self._io)

    def remove(self) -> None:
        try:
            os.unlink(self.path)
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
