"""Process-isolated tenant shards: worker subprocesses + supervision.

PR 7's :class:`~repro.service.shard.TenantShard` isolates tenants
*logically* — private engine, cache, quarantine, checkpoint — but every
shard still shares one interpreter, so a wedged parser or a hard crash
takes all tenants down together.  This module makes the failure domain
physical:

* :class:`ShardWorker` — runs in a **subprocess** and owns the actual
  ``TenantShard``.  It consumes records from a bounded
  ``multiprocessing`` queue, heartbeats between records, checkpoints
  every ``checkpoint_every`` records, and on drain finalizes the
  tenant's artifacts before exiting 0.  Worker-side spans ship home as
  plain dicts and are adopted by the parent tracer, exactly like
  :class:`~repro.parsers.parallel.ChunkedParallelParser` workers.
* :class:`ShardSupervisor` — the parent-side handle with the same
  surface as ``TenantShard`` (``submit``/``checkpoint``/``drain``/
  ``describe``).  A monitor thread tracks heartbeats (watchdog
  deadline → declare hung → terminate), classifies exits (clean /
  nonzero / signal), and restarts crashed workers with
  :class:`~repro.resilience.supervisor.RetryPolicy` exponential
  backoff, resuming from the shard's own checkpoint.

Correctness hangs on three pieces of bookkeeping:

* **The batch journal.**  Every record is appended (framed JSONL,
  :func:`~repro.resilience.durability.frame_record`) to
  ``out.journal.jsonl`` *before* dispatch, and only pruned when the
  worker acknowledges a checkpoint covering it.  A restarted worker
  restores the checkpoint, fast-forwards
  (:meth:`~repro.service.shard.TenantShard.fast_forward`), and the
  supervisor replays exactly the journaled suffix.  Feed messages
  carry global record indices; the worker skips indices below its
  restored position, so replay after an un-acked checkpoint produces
  no duplicates and a gap is a detectable protocol violation.
* **Careful replay and poison pills.**  After a death the supervisor
  replays one record at a time, each awaiting an explicit ``done``
  ack, so the record in flight when the worker dies again is known
  *exactly*.  A record whose replay kills the worker
  ``poison_threshold`` consecutive times is diverted to quarantine
  with ``poison:<tenant>`` provenance
  (:meth:`~repro.service.shard.TenantShard.poison`) instead of
  crash-looping the shard.
* **The fence breaker.**  Every death is a failure on a
  :class:`~repro.resilience.supervisor.CircuitBreaker`; completing a
  careful replay (or diverting a poison pill) records success.  A
  shard that keeps dying on *distinct* records therefore accumulates
  consecutive failures until the breaker opens and the shard is
  fenced: no further restarts, neighbors unaffected.

All deadlines here — watchdog, drain, restart backoff, status — are
``time.monotonic`` based with injectable clocks, so they survive
wall-clock steps (see ``tests/test_workers.py``).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import queue
import signal as signal_module
import sys
import threading
import time
from dataclasses import dataclass, field

from repro.common.errors import ValidationError
from repro.common.types import LogRecord
from repro.observability.events import EventLog
from repro.observability.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
    merge_histogram_states,
)
from repro.observability.telemetry import Telemetry
from repro.observability.tracing import Tracer
from repro.resilience.supervisor import CircuitBreaker, RetryPolicy
from repro.service.protocol import (
    DUPLICATE,
    PENDING,
    BatchJournal,
    DeliveryWindow,
)
from repro.service.shard import (
    ACCEPTED,
    CHECKPOINT_NAME,
    REPLAYED,
    TenantShard,
)

#: One more outcome tag beside the shard's: the shard is fenced and no
#: longer accepts records.
FENCED = "fenced"

#: Supervisor lifecycle states (one-hot on ``repro_shard_state``).
STATE_STARTING = "starting"
STATE_RUNNING = "running"
STATE_REPLAYING = "replaying"
STATE_DRAINING = "draining"
STATE_RESTARTING = "restarting"
STATE_DRAINED = "drained"
STATE_FENCED = "fenced"
SUPERVISOR_STATES = (
    STATE_STARTING,
    STATE_RUNNING,
    STATE_REPLAYING,
    STATE_DRAINING,
    STATE_RESTARTING,
    STATE_DRAINED,
    STATE_FENCED,
)

#: Restart reasons (label on ``repro_shard_restarts_total``).
REASON_SIGNAL = "signal"
REASON_EXIT = "exit"
REASON_HUNG = "hung"
REASON_DEADLINE = "drain-deadline"

#: Name of the supervisor's in-flight batch journal in the tenant dir.
JOURNAL_NAME = "out.journal.jsonl"

#: Worker root span name (adopted into the parent trace).
SPAN_SHARD_WORKER = "shard_worker"


def _mp_context():
    """Fork where available (fast restarts), spawn otherwise."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker incarnation needs, as picklable plain data.

    A fresh spec is built per life (the ``life`` number gates
    :class:`~repro.resilience.faults.ProcessFault` scripts), so the
    worker never inherits parent state beyond the two queues.
    """

    tenant: str
    data_dir: str
    factory: object
    parser_name: str = "parser"
    flush_policy: str = "prefix"
    flush_size: int = 200
    cache_capacity: int = 512
    max_pending: int | None = None
    overflow: str = "block"
    breaker_threshold: int = 5
    check_every: int = 100
    checkpoint_every: int = 500
    heartbeat_interval: float = 0.2
    life: int = 1
    faults: tuple = ()
    trace_context: dict | None = None


class ShardWorker:
    """Worker-side owner of one tenant's :class:`TenantShard`.

    Runs the message loop of one incarnation: restore the shard from
    its checkpoint, fast-forward to the checkpoint position, announce
    ``ready``, then consume ``feed``/``poison``/``checkpoint``/
    ``drain`` messages until drained.  Heartbeats are sent from the
    loop itself — a worker wedged inside a parse stops heartbeating,
    which is exactly what the parent watchdog needs to see.
    """

    def __init__(self, spec: WorkerSpec, inbox, outbox) -> None:
        self.spec = spec
        self.inbox = inbox
        self.outbox = outbox
        self.tracer: Tracer | None = None
        self.telemetry = None
        self._root = None
        # Per-life SLO histograms, shipped as plain state on every
        # heartbeat/checkpoint message.  They restart at zero with each
        # incarnation; the supervisor folds dead lives into a base.
        self._latency = Histogram(DEFAULT_LATENCY_BUCKETS)
        self._queue_wait = Histogram(DEFAULT_LATENCY_BUCKETS)
        # serialize_new cursor: spans already shipped to the parent.
        self._span_cursor = 0

    # -- lifecycle -----------------------------------------------------

    def _build_shard(self) -> TenantShard:
        spec = self.spec
        if spec.trace_context is not None:
            self.tracer = Tracer.from_worker_context(spec.trace_context)
            self.telemetry = Telemetry(
                MetricsRegistry(), self.tracer, EventLog()
            )
            self._root = self.tracer.start_root(
                SPAN_SHARD_WORKER, tenant=spec.tenant, life=spec.life
            )
        shard = TenantShard(
            spec.tenant,
            spec.data_dir,
            spec.factory,
            parser_name=spec.parser_name,
            flush_policy=spec.flush_policy,
            flush_size=spec.flush_size,
            cache_capacity=spec.cache_capacity,
            max_pending=spec.max_pending,
            overflow=spec.overflow,
            breaker_threshold=spec.breaker_threshold,
            check_every=spec.check_every,
            telemetry=self.telemetry,
        )
        # The supervisor replays only the journaled suffix, not the
        # whole stream — resume *at* the checkpoint, not behind it.
        shard.fast_forward()
        return shard

    def _stats(self, shard: TenantShard) -> dict:
        counters = shard.engine.counters
        return {
            "lines": counters.lines,
            "events": counters.events,
            "pending": shard.pending,
            "quarantined": len(shard.quarantine),
            "accepted": shard.accepted,
            "position": shard.position,
            "exact_hits": counters.exact_hits,
            "template_hits": counters.template_hits,
            "misses": counters.misses,
            "latency": self._latency.state(),
            "queue_wait": self._queue_wait.state(),
        }

    def _new_spans(self) -> list[dict]:
        """Finished spans not yet shipped home (continuous sync)."""
        if self.tracer is None:
            return []
        spans, self._span_cursor = self.tracer.serialize_new(
            self._span_cursor
        )
        return spans

    def run(self) -> int:
        """The incarnation's message loop; returns the exit code."""
        spec = self.spec
        # The parent coordinates shutdown through the drain protocol; a
        # terminal Ctrl-C must not kill workers out from under it.
        try:
            signal_module.signal(
                signal_module.SIGINT, signal_module.SIG_IGN
            )
        except ValueError:  # pragma: no cover - non-main thread (tests)
            pass
        for fault in spec.faults:
            if fault.fires_at_start(spec.life):
                fault.fire()
        shard = self._build_shard()
        self.outbox.put(("ready", spec.life, shard.position))
        last_heartbeat = time.monotonic()
        fed_since_checkpoint = 0
        while True:
            try:
                message = self.inbox.get(timeout=spec.heartbeat_interval)
            except queue.Empty:
                self.outbox.put(("hb", self._stats(shard)))
                last_heartbeat = time.monotonic()
                continue
            kind = message[0]
            if kind == "feed":
                _, index, record, confirm, enqueued_at, delivery = message
                position = shard.position
                if index < position:
                    outcome = REPLAYED
                elif index > position:
                    # A record the journal should have replayed never
                    # arrived: refuse to parse past the hole.
                    self.outbox.put(("gap", position, index))
                    return 1
                else:
                    for fault in spec.faults:
                        if fault.should_fire(index, spec.life):
                            fault.fire()
                    # CLOCK_MONOTONIC is comparable across processes
                    # on the same boot, so the parent's enqueue stamp
                    # prices the queue hop end to end.
                    dequeued_at = time.monotonic()
                    if enqueued_at is not None:
                        self._queue_wait.observe(
                            max(0.0, dequeued_at - enqueued_at)
                        )
                    outcome = shard.submit(record, delivery=delivery)
                    if enqueued_at is not None:
                        self._latency.observe(
                            max(0.0, time.monotonic() - enqueued_at)
                        )
                    fed_since_checkpoint += 1
                if confirm:
                    self.outbox.put(("done", index, outcome))
                if fed_since_checkpoint >= spec.checkpoint_every:
                    shard.checkpoint()
                    fed_since_checkpoint = 0
                    self.outbox.put(
                        (
                            "checkpointed",
                            shard.position,
                            self._stats(shard),
                            self._new_spans(),
                        )
                    )
                now = time.monotonic()
                if now - last_heartbeat >= spec.heartbeat_interval:
                    self.outbox.put(("hb", self._stats(shard)))
                    last_heartbeat = now
            elif kind == "poison":
                _, index, record, detail, delivery = message
                if index == shard.position:
                    shard.poison(record, detail, delivery=delivery)
                    # Pin the diversion durably before acking, so a
                    # crash right here cannot resurrect the pill.
                    shard.checkpoint()
                    fed_since_checkpoint = 0
                self.outbox.put(("poisoned", index))
                self.outbox.put(
                    (
                        "checkpointed",
                        shard.position,
                        self._stats(shard),
                        self._new_spans(),
                    )
                )
            elif kind == "checkpoint":
                shard.checkpoint()
                fed_since_checkpoint = 0
                self.outbox.put(
                    (
                        "checkpointed",
                        shard.position,
                        self._stats(shard),
                        self._new_spans(),
                    )
                )
            elif kind == "drain":
                for fault in spec.faults:
                    if fault.should_fire_at_drain(spec.life):
                        fault.fire()
                summary = shard.drain()
                spans: list[dict] = []
                if self.tracer is not None:
                    self._root.attrs.update(
                        lines=summary["lines"], events=summary["events"]
                    )
                    self.tracer.finish(self._root)
                    # Only the spans not already shipped on checkpoint
                    # acks — repeated adoption must never duplicate.
                    spans = self._new_spans()
                self.outbox.put(
                    ("drained", summary, spans, self._stats(shard))
                )
                self.outbox.close()
                self.outbox.join_thread()
                return 0
            else:  # pragma: no cover - future protocol growth
                self.outbox.put(("gap", -1, -1))
                return 1


def shard_worker_main(spec: WorkerSpec, inbox, outbox) -> None:
    """Module-level process target (picklable under spawn)."""
    sys.exit(ShardWorker(spec, inbox, outbox).run())


class ShardSupervisor:
    """Parent-side supervised handle for one process-isolated tenant.

    Presents the :class:`TenantShard` surface the
    :class:`~repro.service.server.IngestionService` expects while the
    real shard lives in a worker subprocess.  A monitor thread owns
    the entire worker lifecycle — spawn, heartbeat watchdog, dispatch,
    death classification, backoff restart, careful replay, poison
    diversion, fencing, drain — so ``submit`` from connection threads
    only appends to the journal-backed outbox.

    Args:
        watchdog: seconds without any worker message before the
            worker is declared hung and terminated.
        heartbeat_interval: worker-side heartbeat cadence (must be
            well under *watchdog*).
        checkpoint_every: records between worker checkpoints — the
            journal prune cadence and the replay-window bound.
        poison_threshold: consecutive careful-replay deaths on one
            record before it is diverted to quarantine.
        fence_threshold: consecutive deaths (without a completed
            replay between) before the shard is fenced.
        restart_policy: exponential backoff between restarts.
        drain_timeout: drain deadline; on expiry the worker is
            escalated SIGTERM → SIGKILL and the shard fenced.
        term_grace: seconds between SIGTERM and SIGKILL.
        faults: :class:`~repro.resilience.faults.ProcessFault` script
            shipped into every worker life (chaos harness).
        clock / sleep: injectable monotonic time sources.
    """

    def __init__(
        self,
        tenant: str,
        data_dir: str,
        factory,
        *,
        parser_name: str = "parser",
        telemetry=None,
        io=None,
        watchdog: float = 5.0,
        heartbeat_interval: float = 0.2,
        checkpoint_every: int = 500,
        queue_size: int = 512,
        poison_threshold: int = 3,
        fence_threshold: int = 5,
        restart_policy: RetryPolicy | None = None,
        fence_reset: float = 3600.0,
        drain_timeout: float = 60.0,
        term_grace: float = 2.0,
        faults=(),
        clock=time.monotonic,
        sleep=time.sleep,
        budget=None,
        ladder=None,
        on_checkpoint=None,
        exactly_once: bool = False,
        **shard_kwargs,
    ) -> None:
        if budget is not None or ladder is not None:
            raise ValidationError(
                "per-tenant budgets/ladders are thread-isolation only: "
                "a budgeted shard cannot resume from a checkpoint, so "
                "it cannot survive the restarts process isolation exists "
                "to provide"
            )
        if watchdog <= heartbeat_interval:
            raise ValidationError(
                f"watchdog ({watchdog}s) must exceed the heartbeat "
                f"interval ({heartbeat_interval}s)"
            )
        if poison_threshold < 1:
            raise ValidationError(
                f"poison_threshold must be >= 1, got {poison_threshold}"
            )
        if fence_threshold < 1:
            raise ValidationError(
                f"fence_threshold must be >= 1, got {fence_threshold}"
            )
        self.tenant = tenant
        self.data_dir = data_dir
        self.dir = os.path.join(data_dir, tenant)
        os.makedirs(self.dir, exist_ok=True)
        self.factory = factory
        self.parser_name = parser_name
        self.telemetry = telemetry
        self.io = io
        self.watchdog = watchdog
        self.heartbeat_interval = heartbeat_interval
        self.checkpoint_every = checkpoint_every
        self.queue_size = queue_size
        self.poison_threshold = poison_threshold
        self.fence_threshold = fence_threshold
        self.restart_policy = restart_policy or RetryPolicy(
            attempts=fence_threshold + 1,
            base_delay=0.05,
            backoff=2.0,
            max_delay=1.0,
        )
        self.drain_timeout = drain_timeout
        self.term_grace = term_grace
        self.faults = tuple(faults)
        self.shard_kwargs = dict(shard_kwargs)
        self._clock = clock
        self._sleep = sleep
        self._mp = _mp_context()

        self.exactly_once = exactly_once
        #: Per-client exactly-once dedup windows (protocol v2).  The
        #: shard is per-tenant, so (client, tenant) collapses to the
        #: client id here.
        self._windows: dict[str, DeliveryWindow] = {}

        self._lock = threading.Lock()
        # (index, record, enqueued_at monotonic stamp, delivery meta)
        # quadruples; delivery is None for v1 lines.
        self._outbox: list[tuple[int, LogRecord, float, tuple | None]] = []
        self._skip, delivery_state = self._read_checkpoint_meta()
        # v1 resume replays the whole stream from the source and skips
        # to the checkpoint; exactly-once resume starts *at* the
        # checkpoint (the delivery journal replays the suffix).
        self._next_index = self._skip if exactly_once else 0
        self._acked = self._skip
        self._sent_through = self._skip
        if exactly_once and delivery_state:
            for client, high in delivery_state.get("clients", {}).items():
                self._windows[client] = DeliveryWindow(high=int(high))
        self._mode_careful = False
        self._careful_high = self._skip
        self._in_flight: int | None = None
        self._kill_counts: dict[int, int] = {}
        self._poisoned: dict[int, str] = {}
        self.state = STATE_STARTING
        self.restarts = 0
        self.life = 0
        self._deaths_in_row = 0
        self._drain_requested = False
        self._drained_summary: dict | None = None
        self._checkpoint_requested = False
        self._abandoned = False
        self._last_seen = clock()
        self._stats: dict = {}
        # Last cumulative value synced into the parent registry, per
        # stat key.  Worker counters restore from the checkpoint and
        # re-climb after a restart, so only positive deltas count and
        # the high-water mark guards against replay regressions.
        self._synced: dict[str, float] = {}
        # SLO histograms accumulate across worker lives: each life's
        # local histograms restart at zero, so the last state a dead
        # life shipped folds into a base the live state merges onto.
        self._hist_base: dict[str, dict | None] = {
            "latency": None, "queue_wait": None,
        }
        self._hist_live: dict[str, dict | None] = {
            "latency": None, "queue_wait": None,
        }
        self._on_checkpoint = on_checkpoint
        self._done = threading.Event()
        self._journal = BatchJournal(
            os.path.join(self.dir, JOURNAL_NAME), io=io,
            recover=exactly_once,
        )
        if exactly_once:
            # Records journaled but not checkpoint-covered by the
            # previous *service* life: they were acked to clients, so
            # this life must re-feed them itself (no source replay).
            now = time.monotonic()
            preload = [
                entry for entry in self._journal.recovered
                if entry[0] >= self._skip
            ]
            for index, record, delivery in preload:
                self._outbox.append((index, record, now, delivery))
                if delivery is not None:
                    self._windows.setdefault(
                        delivery[0], DeliveryWindow()
                    ).advance(delivery[1])
            if preload:
                self._next_index = max(
                    self._next_index, preload[-1][0] + 1
                )
        self._breaker = CircuitBreaker(
            failure_threshold=fence_threshold,
            reset_timeout=fence_reset,
            clock=clock,
        )
        if telemetry is not None:
            telemetry.metrics.register_collector(self._collect_metrics)
        self._thread = threading.Thread(
            target=self._run, name=f"shard-supervisor-{tenant}", daemon=True
        )
        self._thread.start()

    # -- public surface (mirrors TenantShard) --------------------------

    @property
    def seen(self) -> int:
        return self._next_index

    @property
    def resumed(self) -> bool:
        return self._skip > 0

    @property
    def breaker_open(self) -> bool:
        return self.state == STATE_FENCED

    @property
    def pending(self) -> int:
        """Records submitted but not yet checkpoint-covered."""
        return len(self._outbox)

    def heartbeat_age(self) -> float:
        return max(0.0, self._clock() - self._last_seen)

    def submit(self, record: LogRecord) -> str:
        # The enqueue stamp rides the feed message so the worker can
        # price queue wait and end-to-end latency.  Raw monotonic, not
        # the injectable clock: it must be comparable with the worker
        # process's own time.monotonic().
        enqueued_at = time.monotonic()
        with self._lock:
            if self.state == STATE_FENCED:
                return FENCED
            index = self._next_index
            self._next_index += 1
            if index < self._skip:
                return REPLAYED
            self._outbox.append((index, record, enqueued_at, None))
        self._journal.append(index, record)
        return ACCEPTED

    def submit_seq(
        self, record: LogRecord, client: str, seq: int
    ) -> tuple[str, int]:
        """Exactly-once submit of one sequence-tagged record.

        Returns ``(outcome, high)`` where *high* is the client's
        cumulative ack watermark.  The ack contract: *high* covers a
        sequence only once its record is journal-owned — appended to
        ``out.journal.jsonl`` — so a ``SIGKILL`` at any later point
        replays it from the journal instead of losing it.
        """
        if not self.exactly_once:
            raise ValidationError(
                "submit_seq requires an exactly_once supervisor"
            )
        enqueued_at = time.monotonic()
        with self._lock:
            window = self._windows.setdefault(client, DeliveryWindow())
            if self.state == STATE_FENCED:
                return FENCED, window.high
            status, released = window.observe(seq, record)
            if status == DUPLICATE:
                if self.telemetry is not None:
                    self.telemetry.metrics.get(
                        "repro_delivery_duplicates_suppressed_total"
                    ).labels(tenant=self.tenant).inc()
                return DUPLICATE, window.high
            if status == PENDING:
                return PENDING, window.high
            # Journal under the lock: appends from concurrent
            # connections must land in index order, or a crash between
            # out-of-order appends would leave an index gap the
            # restarted worker's feed gap-check fences on.
            for rseq, rrecord in released:
                index = self._next_index
                self._next_index += 1
                self._outbox.append(
                    (index, rrecord, enqueued_at, (client, rseq))
                )
                self._journal.append(
                    index, rrecord, delivery=(client, rseq)
                )
            return ACCEPTED, window.high

    def checkpoint(self) -> None:
        """Request an out-of-band worker checkpoint (asynchronous)."""
        with self._lock:
            self._checkpoint_requested = True

    def drain(self) -> dict:
        """Drain the worker; escalate SIGTERM → SIGKILL on the deadline."""
        with self._lock:
            if self._drained_summary is not None:
                return self._drained_summary
            self._drain_requested = True
        if not self._done.wait(timeout=self.drain_timeout):
            self._abandon()
            self._done.wait(timeout=self.term_grace + 5.0)
        with self._lock:
            if self._drained_summary is None:  # pragma: no cover - fallback
                self._drained_summary = self._fenced_summary()
            return self._drained_summary

    def describe(self) -> str:
        stats = dict(self._stats)
        return (
            f"{self.tenant}: {stats.get('lines', 0)} lines, "
            f"{stats.get('events', 0)} events, "
            f"{stats.get('quarantined', 0)} quarantined, "
            f"state {self.state}, {self.restarts} restart(s)"
        )

    # -- internals -----------------------------------------------------

    def _read_checkpoint_meta(self) -> tuple[int, dict | None]:
        """Stream position and delivery state of the shard checkpoint."""
        path = os.path.join(self.dir, CHECKPOINT_NAME)
        if not os.path.exists(path):
            return 0, None
        try:
            with open(path, encoding="utf-8") as handle:
                data = json.load(handle)
            return (
                int(data.get("records_consumed", 0)),
                data.get("delivery"),
            )
        except (OSError, ValueError):  # pragma: no cover - torn file
            return 0, None

    def _collect_metrics(self) -> None:
        metrics = self.telemetry.metrics
        metrics.get("repro_worker_heartbeat_age_seconds").labels(
            tenant=self.tenant
        ).set(self.heartbeat_age())
        metrics.get("repro_shard_queue_depth").labels(
            tenant=self.tenant
        ).set(float(len(self._outbox)))
        for state in SUPERVISOR_STATES:
            metrics.get("repro_shard_state").labels(
                tenant=self.tenant, state=state
            ).set(1.0 if state == self.state else 0.0)

    def _sync_counter(
        self, metric: str, key: str, value: float, **labels
    ) -> None:
        """High-water-mark delta sync of one worker-cumulative counter.

        Worker counters restore from the checkpoint and re-climb
        through journal replay after a restart, so a freshly-reported
        value may sit *below* the high-water mark for a while; only
        the excess over the mark is new work.
        """
        value = float(value or 0)
        last = self._synced.get(key, 0.0)
        if value > last:
            self.telemetry.metrics.get(metric).labels(
                tenant=self.tenant, **labels
            ).inc(value - last)
            self._synced[key] = value

    def _sync_stats(self, stats: dict) -> None:
        """Fold a worker stats message into the parent registry, live.

        This is the continuous half of the telemetry plane: it runs on
        every heartbeat and checkpoint ack, so a mid-run scrape sees
        per-tenant lines, cache traffic, quarantines, and SLO
        histograms without waiting for drain.
        """
        self._stats = stats
        if self.telemetry is None:
            return
        metrics = self.telemetry.metrics
        lines = stats.get("lines", 0)
        self._sync_counter("repro_service_lines_total", "lines", lines)
        self._sync_counter(
            "repro_tenant_lines_total", "tenant_lines", lines
        )
        self._sync_counter(
            "repro_tenant_cache_hits_total", "exact_hits",
            stats.get("exact_hits", 0), kind="exact",
        )
        self._sync_counter(
            "repro_tenant_cache_hits_total", "template_hits",
            stats.get("template_hits", 0), kind="template",
        )
        self._sync_counter(
            "repro_tenant_cache_misses_total", "misses",
            stats.get("misses", 0),
        )
        self._sync_counter(
            "repro_tenant_quarantined_total", "quarantined",
            stats.get("quarantined", 0),
        )
        metrics.get("repro_tenant_events").labels(tenant=self.tenant).set(
            float(stats.get("events", 0) or 0)
        )
        for key, metric in (
            ("latency", "repro_tenant_ingest_latency_seconds"),
            ("queue_wait", "repro_tenant_queue_wait_seconds"),
        ):
            state = stats.get(key)
            if state is None:
                continue
            self._hist_live[key] = state
            merged = merge_histogram_states(self._hist_base[key], state)
            if merged is not None:
                metrics.get(metric).labels(
                    tenant=self.tenant
                ).sync_state(merged)

    def _emit(self, kind: str, **fields) -> None:
        if self.telemetry is not None:
            self.telemetry.events.emit(kind, tenant=self.tenant, **fields)

    def _count_restart(self, reason: str) -> None:
        self.restarts += 1
        if self.telemetry is not None:
            self.telemetry.metrics.get(
                "repro_shard_restarts_total"
            ).labels(tenant=self.tenant, reason=reason).inc()

    def _spawn(self):
        self.life += 1
        trace_context = None
        if self.telemetry is not None:
            trace_context = self.telemetry.tracer.worker_context(
                prefix=f"{self.tenant}-l{self.life}-"
            )
        spec = WorkerSpec(
            tenant=self.tenant,
            data_dir=self.data_dir,
            factory=self.factory,
            parser_name=self.parser_name,
            checkpoint_every=self.checkpoint_every,
            heartbeat_interval=self.heartbeat_interval,
            life=self.life,
            faults=self.faults,
            trace_context=trace_context,
            **self.shard_kwargs,
        )
        inbox = self._mp.Queue(self.queue_size)
        results = self._mp.Queue()
        process = self._mp.Process(
            target=shard_worker_main,
            args=(spec, inbox, results),
            name=f"shard-{self.tenant}-{self.life}",
            daemon=True,
        )
        process.start()
        self._last_seen = self._clock()
        return process, inbox, results

    def _terminate(self, process) -> None:
        """SIGTERM, grace, then SIGKILL; always reaps."""
        if process.is_alive():
            process.terminate()
            process.join(timeout=self.term_grace)
        if process.is_alive():
            process.kill()
            process.join(timeout=self.term_grace + 5.0)
        else:
            process.join(timeout=1.0)

    def _classify_exit(self, process, hung: bool) -> str:
        if hung:
            return REASON_HUNG
        code = process.exitcode
        if code is not None and code < 0:
            return REASON_SIGNAL
        return REASON_EXIT

    def _dispatch(self, inbox) -> None:
        while True:
            with self._lock:
                if self._in_flight is not None:
                    return
                offset = self._sent_through - self._acked
                if offset >= len(self._outbox):
                    return
                index, record, enqueued_at, delivery = self._outbox[offset]
                careful = (
                    self._mode_careful and index < self._careful_high
                )
                detail = self._poisoned.get(index)
            if detail is not None:
                message = ("poison", index, record, detail, delivery)
            else:
                message = (
                    "feed", index, record, careful, enqueued_at, delivery
                )
            try:
                inbox.put_nowait(message)
            except queue.Full:
                return
            with self._lock:
                self._sent_through = index + 1
                if careful or detail is not None:
                    self._in_flight = index

    def _maybe_finish_replay(self) -> None:
        """Careful region fully acknowledged → back to normal mode."""
        if self._mode_careful and self._sent_through >= self._careful_high:
            self._mode_careful = False
            self._deaths_in_row = 0
            self._breaker.record_success()
            if self.state == STATE_REPLAYING:
                self.state = STATE_RUNNING

    def _prune(self, position: int) -> None:
        with self._lock:
            if position <= self._acked:
                return
            drop = position - self._acked
            del self._outbox[:drop]
            self._acked = position
            self._sent_through = max(self._sent_through, position)
            for index in [i for i in self._kill_counts if i < position]:
                del self._kill_counts[index]
            for index in [i for i in self._poisoned if i < position]:
                del self._poisoned[index]
            remaining = [
                (index, record, delivery)
                for index, record, _, delivery in self._outbox
            ]
        self._journal.reset(remaining)

    def _handle_message(self, message, process) -> str | None:
        kind = message[0]
        self._last_seen = self._clock()
        if kind == "ready":
            with self._lock:
                self._sent_through = self._acked
                self._in_flight = None
                if self._mode_careful and self._careful_high <= self._acked:
                    self._mode_careful = False
                self.state = (
                    STATE_REPLAYING if self._mode_careful else STATE_RUNNING
                )
            return None
        if kind == "hb":
            self._sync_stats(message[1])
            return None
        if kind == "done":
            _, index, _outcome = message
            with self._lock:
                if self._in_flight == index:
                    self._in_flight = None
                self._maybe_finish_replay()
            return None
        if kind == "poisoned":
            _, index = message
            with self._lock:
                if self._in_flight == index:
                    self._in_flight = None
                was_pending = self._poisoned.pop(index, None)
                self._kill_counts.pop(index, None)
                if was_pending is not None:
                    self._deaths_in_row = 0
                    self._breaker.record_success()
                self._maybe_finish_replay()
            if was_pending is not None:
                if self.telemetry is not None:
                    self.telemetry.metrics.get(
                        "repro_shard_poison_records_total"
                    ).labels(tenant=self.tenant).inc()
                self._emit("poison_diverted", index=index)
            return None
        if kind == "checkpointed":
            _, position, stats, spans = message
            self._sync_stats(stats)
            if self.telemetry is not None and spans:
                self.telemetry.tracer.adopt(spans)
            self._prune(position)
            if self._on_checkpoint is not None:
                try:
                    self._on_checkpoint(self.tenant, position)
                except Exception:  # pragma: no cover - callback bug
                    pass  # a status hook must never kill the monitor
            return None
        if kind == "gap":
            _, expected, got = message
            self._emit("worker_protocol_violation", expected=expected, got=got)
            self._terminate(process)
            return self._fence("protocol gap")
        if kind == "drained":
            _, summary, spans, stats = message
            self._sync_stats(stats)
            if self.telemetry is not None and spans:
                self.telemetry.tracer.adopt(spans)
            self._prune(self._next_index)
            self._journal.remove()
            process.join(timeout=self.term_grace + 5.0)
            if process.is_alive():  # pragma: no cover - stuck exit
                self._terminate(process)
            summary = dict(summary)
            summary["restarts"] = self.restarts
            summary["isolation"] = "process"
            with self._lock:
                self.state = STATE_DRAINED
                self._drained_summary = summary
            self._emit("worker_drained", restarts=self.restarts)
            self._done.set()
            return "drained"
        return None  # pragma: no cover - unknown message

    def _fence(self, why: str) -> str:
        with self._lock:
            self.state = STATE_FENCED
            if self._drained_summary is None:
                self._drained_summary = self._fenced_summary()
        self._emit("worker_fenced", reason=why, restarts=self.restarts)
        self._done.set()
        return "fenced"

    def _fenced_summary(self) -> dict:
        stats = dict(self._stats)
        return {
            "tenant": self.tenant,
            "fenced": True,
            "isolation": "process",
            "seen": self._next_index,
            "accepted": stats.get("accepted", 0),
            "lines": stats.get("lines", 0),
            "events": stats.get("events", 0),
            "quarantined": stats.get("quarantined", 0),
            "breaker_open": True,
            "restarts": self.restarts,
            "manifest": None,
        }

    def _abandon(self) -> None:
        """Drain deadline expired: stop supervising, escalate, fence."""
        self._abandoned = True
        self._count_restart(REASON_DEADLINE)

    def _handle_death(self, process, hung: bool) -> str:
        reason = self._classify_exit(process, hung)
        process.join(timeout=1.0)
        self._count_restart(reason)
        with self._lock:
            # Worker SLO histograms are per-life: fold the dead life's
            # last report into the base so the replacement's fresh
            # histogram stacks on top instead of erasing history.
            for key in self._hist_base:
                self._hist_base[key] = merge_histogram_states(
                    self._hist_base[key], self._hist_live[key]
                )
                self._hist_live[key] = None
            self._deaths_in_row += 1
            killer = self._in_flight
            self._in_flight = None
            self._mode_careful = True
            self._careful_high = self._acked + len(self._outbox)
            self.state = STATE_RESTARTING
            if killer is not None:
                count = self._kill_counts.get(killer, 0) + 1
                self._kill_counts[killer] = count
                if count >= self.poison_threshold:
                    self._poisoned[killer] = (
                        f"record killed the worker {count} consecutive "
                        f"time(s) (last exit: {reason})"
                    )
        self._emit(
            "worker_exit",
            life=self.life,
            reason=reason,
            exitcode=process.exitcode,
            killer=killer,
        )
        self._breaker.record_failure()
        if not self._breaker.allow():
            return self._fence(
                f"{self._deaths_in_row} consecutive deaths "
                f"(last reason: {reason})"
            )
        delay = self.restart_policy.delay(min(self._deaths_in_row, 16))
        if delay > 0:
            self._sleep(delay)
        self._emit("worker_restart", life=self.life + 1, backoff=delay)
        return "restart"

    def _run_one_life(self) -> str:
        process, inbox, results = self._spawn()
        ready = False
        drain_sent = False
        ckpt_outstanding = False
        hung = False
        try:
            while True:
                if self._abandoned:
                    self._terminate(process)
                    return self._fence("drain deadline exceeded")
                try:
                    message = results.get(timeout=0.02)
                except queue.Empty:
                    message = None
                except (EOFError, OSError):  # pragma: no cover
                    message = None
                if message is not None:
                    if message[0] == "ready":
                        ready = True
                    elif message[0] == "checkpointed":
                        ckpt_outstanding = False
                    verdict = self._handle_message(message, process)
                    if verdict is not None:
                        return verdict
                    continue
                if not process.is_alive():
                    break
                deadline = self.watchdog
                if drain_sent:
                    deadline = max(self.watchdog, self.drain_timeout)
                if self._clock() - self._last_seen > deadline:
                    hung = True
                    self._terminate(process)
                    break
                if not ready:
                    continue
                self._dispatch(inbox)
                with self._lock:
                    fully_dispatched = (
                        self._sent_through
                        >= self._acked + len(self._outbox)
                        and self._in_flight is None
                        and not self._mode_careful
                    )
                    # Drain only once every record is *acknowledged*
                    # by a worker checkpoint — sending drain on mere
                    # dispatch would extend the watchdog deadline over
                    # a worker that is actually hung mid-record.
                    fully_acked = (
                        fully_dispatched
                        and self._acked >= self._next_index
                    )
                    want_drain = self._drain_requested and not drain_sent
                    want_checkpoint = fully_dispatched and (
                        self._checkpoint_requested
                        or (
                            want_drain
                            and not fully_acked
                            and not ckpt_outstanding
                        )
                    )
                    if want_checkpoint:
                        self._checkpoint_requested = False
                if want_drain and fully_acked:
                    try:
                        inbox.put_nowait(("drain",))
                        drain_sent = True
                        with self._lock:
                            self.state = STATE_DRAINING
                    except queue.Full:  # pragma: no cover - retried
                        pass
                elif want_checkpoint:
                    try:
                        inbox.put_nowait(("checkpoint",))
                        ckpt_outstanding = True
                    except queue.Full:  # pragma: no cover - retried
                        with self._lock:
                            self._checkpoint_requested = True
            # Worker died (or was terminated as hung).
            return self._handle_death(process, hung)
        finally:
            inbox.close()
            results.close()
            inbox.cancel_join_thread()
            results.cancel_join_thread()

    def _run(self) -> None:
        try:
            while True:
                verdict = self._run_one_life()
                if verdict in ("drained", "fenced"):
                    return
        except Exception as error:  # pragma: no cover - supervisor bug
            self._emit(
                "supervisor_error",
                error=f"{type(error).__name__}: {error}",
            )
            self._fence(f"supervisor error: {type(error).__name__}")


def supervisor_status(service) -> dict:
    """Per-tenant one-line supervisor status, registry-derived.

    Reads restart counts and queue depths from the service's metrics
    registry (falling back to live handles only for the lifecycle
    state, which the registry mirrors one-hot in
    ``repro_shard_state``), and renders the ``serve
    --status-interval`` line.
    """
    telemetry = service.telemetry
    tenants: dict[str, dict] = {}
    for tenant in service.tenants():
        shard = service.shard(tenant)
        state = getattr(shard, "state", None)
        if state is None:
            state = "breaker" if shard.breaker_open else "alive"
        restarts = 0.0
        queue_depth = float(shard.pending)
        lines = 0.0
        quarantined = 0.0
        heartbeat_age = 0.0
        if telemetry is not None:
            registry = service.telemetry.metrics
            restarts = sum(
                registry.value(
                    "repro_shard_restarts_total",
                    tenant=tenant,
                    reason=reason,
                )
                for reason in (
                    REASON_SIGNAL,
                    REASON_EXIT,
                    REASON_HUNG,
                    REASON_DEADLINE,
                )
            )
            registry_depth = registry.value(
                "repro_shard_queue_depth", tenant=tenant
            )
            if registry_depth:
                queue_depth = registry_depth
            lines = registry.value(
                "repro_tenant_lines_total", tenant=tenant
            )
            quarantined = registry.value(
                "repro_tenant_quarantined_total", tenant=tenant
            )
            heartbeat_age = registry.value(
                "repro_worker_heartbeat_age_seconds", tenant=tenant
            )
        tenants[tenant] = {
            "state": state,
            "restarts": int(restarts),
            "queue": int(queue_depth),
            "lines": int(lines),
            "quarantined": int(quarantined),
            "heartbeat_age": round(heartbeat_age, 3),
        }
    line = "supervisor: " + (
        " | ".join(
            f"{tenant} {info['state']} "
            f"r={info['restarts']} q={info['queue']}"
            for tenant, info in sorted(tenants.items())
        )
        or "no tenants"
    )
    return {"tenants": tenants, "line": line}
