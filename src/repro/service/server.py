"""The multi-tenant ingestion service: router, front ends, drain.

An :class:`IngestionService` accepts tenant-tagged lines —
``tenant<TAB>content`` — routes each to its tenant's
:class:`~repro.service.shard.TenantShard` (materialized lazily, or
adopted from a previous life's checkpoints), and on drain flushes
every shard through the prefix policy so each tenant's outputs are
byte-identical to a batch parse of its stream.

Front ends:

* :class:`LineServer` — a threaded TCP line server.  One reader
  thread per connection, so a slow writer stalls only its own
  connection; dangling partial lines at disconnect become
  tenant-attributed quarantine records, never crashes.
* :func:`replay_lines` — the in-process adapter: feed any iterable of
  tagged lines (a file, a generator, a test) through the same
  admission/routing path the TCP server uses.

Protocol-level garbage — lines with no tab, tenant keys outside
``[A-Za-z0-9._-]{1,64}``, partial lines cut by a disconnect — lands in
the *service* quarantine (``service.quarantine.jsonl`` in the data
root) with reason ``protocol``, because it cannot be safely attributed
to any tenant's stream position.
"""

from __future__ import annotations

import os
import re
import socket
import threading
import time
from collections.abc import Iterable

from repro.common.errors import ValidationError
from repro.common.net import bind_with_retry
from repro.common.types import LogRecord
from repro.observability.tracing import SPAN_SERVICE_DRAIN
from repro.resilience.quarantine import QuarantineRecord, QuarantineSink
from repro.service.admission import AdmissionController
from repro.service.protocol import (
    OK_LINE,
    PROTOCOL_V1,
    PROTOCOL_V2,
    PROTOCOLS,
    ack_line,
    parse_data,
    parse_hello,
)
from repro.service.shard import TenantShard
from repro.service.workers import ShardSupervisor

#: Isolation modes: ``thread`` keeps PR 7's in-process shards,
#: ``process`` moves each shard into a supervised worker subprocess.
ISOLATION_THREAD = "thread"
ISOLATION_PROCESS = "process"
ISOLATION_MODES = (ISOLATION_THREAD, ISOLATION_PROCESS)

#: Tenant keys are path-safe by construction (they name directories).
TENANT_KEY_RE = re.compile(r"^[A-Za-z0-9._-]{1,64}$")

#: Quarantine reason for unroutable input.
REASON_PROTOCOL = "protocol"

#: Service-level outcome tags (shard outcomes pass through verbatim).
PROTOCOL = "protocol"
RATE_LIMITED = "rate"
SAMPLED = "sampled"
SHED = "shed"

#: Basename of the service-level quarantine in the data root.
SERVICE_QUARANTINE_NAME = "service.quarantine.jsonl"


class _ConnectionDone(Exception):
    """Internal: unwind one connection's read loop (peer went away)."""


class IngestionService:
    """Tenant router + shard supervisor + graceful drain.

    Args:
        data_dir: root directory; each tenant owns a subdirectory.
        factory: zero-argument flush-parser factory shared by all
            (unbudgeted) shards — each shard still builds its *own*
            engine and cache from it.
        admission: optional :class:`AdmissionController`; wire its
            monitor's ``queue_probe`` to :meth:`total_pending` for
            global queue-pressure shedding.
        isolation: ``thread`` (default) routes to in-process
            :class:`TenantShard` threads; ``process`` routes to
            :class:`~repro.service.workers.ShardSupervisor`-managed
            worker subprocesses, which survive crashes, hangs, and
            poison records at the cost of queue-hop latency.
        worker_kwargs: forwarded to every :class:`ShardSupervisor`
            in process mode (``watchdog``, ``checkpoint_every``,
            ``poison_threshold``, ``fence_threshold``, ``faults``,
            ``drain_timeout``, ...); rejected in thread mode.
        shard_kwargs: forwarded to every :class:`TenantShard`
            (``flush_policy``, ``flush_size``, ``cache_capacity``,
            ``max_pending``, ``overflow``, ``budget``, ``ladder``,
            ``breaker_threshold``, ...).
    """

    def __init__(
        self,
        data_dir: str,
        factory,
        *,
        parser_name: str = "parser",
        admission: AdmissionController | None = None,
        telemetry=None,
        io=None,
        isolation: str = ISOLATION_THREAD,
        protocol: str = PROTOCOL_V1,
        worker_kwargs: dict | None = None,
        on_checkpoint=None,
        **shard_kwargs,
    ) -> None:
        if isolation not in ISOLATION_MODES:
            raise ValidationError(
                f"unknown isolation mode {isolation!r} "
                f"(expected one of {', '.join(ISOLATION_MODES)})"
            )
        if protocol not in PROTOCOLS:
            raise ValidationError(
                f"unknown wire protocol {protocol!r} "
                f"(expected one of {', '.join(PROTOCOLS)})"
            )
        if worker_kwargs and isolation != ISOLATION_PROCESS:
            raise ValidationError(
                "worker_kwargs only apply to process isolation"
            )
        if isolation == ISOLATION_PROCESS and (
            shard_kwargs.get("budget") is not None
            or shard_kwargs.get("ladder") is not None
        ):
            raise ValidationError(
                "per-tenant budgets/ladders require thread isolation: "
                "a budgeted shard cannot resume from its checkpoint "
                "after a worker restart"
            )
        self.data_dir = data_dir
        os.makedirs(data_dir, exist_ok=True)
        self.factory = factory
        self.parser_name = parser_name
        self.admission = admission
        self.telemetry = telemetry
        self.io = io
        self.isolation = isolation
        self.protocol = protocol
        self.on_checkpoint = on_checkpoint
        self.worker_kwargs = dict(worker_kwargs or {})
        self.shard_kwargs = shard_kwargs
        if protocol == PROTOCOL_V2:
            # Exactly-once state lives wherever the dedup windows do:
            # in the shard itself under thread isolation, in the
            # parent-side supervisor under process isolation (the
            # worker's TenantShard only mirrors watermarks).
            if isolation == ISOLATION_PROCESS:
                self.worker_kwargs["exactly_once"] = True
            else:
                self.shard_kwargs["exactly_once"] = True
        self._shards: dict[str, TenantShard] = {}
        self._lock = threading.Lock()
        self._submitted = 0
        self._drained: dict | None = None
        self.quarantine = QuarantineSink(
            os.path.join(data_dir, SERVICE_QUARANTINE_NAME),
            telemetry=telemetry,
            io=io,
        )
        if telemetry is not None:
            telemetry.metrics.register_collector(self._collect_metrics)

    def _collect_metrics(self) -> None:
        metrics = self.telemetry.metrics
        metrics.get("repro_service_tenants").set(len(self._shards))
        metrics.get("repro_service_queue_depth").set(self.total_pending())

    # ------------------------------------------------------------------
    # Shard routing
    # ------------------------------------------------------------------

    def total_pending(self) -> float:
        """Summed shard queue depth — the admission queue probe."""
        return float(sum(s.pending for s in list(self._shards.values())))

    @property
    def submitted(self) -> int:
        """Lines seen so far (admitted or not) — drives bounded soaks."""
        return self._submitted

    def tenants(self) -> list[str]:
        return sorted(self._shards)

    def shard(self, tenant: str) -> TenantShard:
        """The tenant's shard, materialized on first sight."""
        shard = self._shards.get(tenant)
        if shard is None:
            with self._lock:
                shard = self._shards.get(tenant)
                if shard is None:
                    if self.isolation == ISOLATION_PROCESS:
                        worker_kwargs = dict(self.worker_kwargs)
                        faults = worker_kwargs.get("faults")
                        if isinstance(faults, dict):
                            # A crash-storm schedule maps tenants to
                            # their own fault scripts.
                            worker_kwargs["faults"] = tuple(
                                faults.get(tenant, ())
                            )
                        elif callable(faults):
                            # Lazily derive a tenant's script (the
                            # CLI cannot enumerate tenants up front).
                            worker_kwargs["faults"] = tuple(
                                faults(tenant)
                            )
                        shard = ShardSupervisor(
                            tenant,
                            self.data_dir,
                            self.factory,
                            parser_name=self.parser_name,
                            telemetry=self.telemetry,
                            io=self.io,
                            on_checkpoint=self.on_checkpoint,
                            **worker_kwargs,
                            **self.shard_kwargs,
                        )
                    else:
                        shard = TenantShard(
                            tenant,
                            self.data_dir,
                            self.factory,
                            parser_name=self.parser_name,
                            telemetry=self.telemetry,
                            io=self.io,
                            **self.shard_kwargs,
                        )
                    self._shards[tenant] = shard
        return shard

    def adopt_existing(self) -> list[str]:
        """Materialize shards for tenant directories a previous life left.

        Called on startup so a resumed service finalizes *every*
        tenant at the next drain, including ones that receive no new
        lines this life.  Returns the adopted tenant keys.
        """
        adopted = []
        for name in sorted(os.listdir(self.data_dir)):
            if not TENANT_KEY_RE.match(name):
                continue
            if not os.path.isdir(os.path.join(self.data_dir, name)):
                continue
            self.shard(name)
            adopted.append(name)
        return adopted

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------

    def _protocol_reject(self, payload: str, origin: str, detail: str) -> None:
        with self._lock:
            index = self._submitted
            self.quarantine.add(
                QuarantineRecord(
                    source=origin,
                    line_no=index,
                    byte_offset=-1,
                    reason=REASON_PROTOCOL,
                    detail=detail,
                    preview=payload[:200],
                )
            )

    def _count_rejection(self, tenant: str, cause: str) -> None:
        if self.telemetry is not None:
            self.telemetry.metrics.get(
                "repro_service_rejected_total"
            ).labels(tenant=tenant, cause=cause).inc()

    def submit_line(self, line: str, origin: str = "<stream>") -> str:
        """Route one tagged line; returns the outcome tag.

        Outcomes: the shard tags (``accepted``/``replayed``/
        ``rejected``/``quarantined``/``breaker``) or the service tags
        (``protocol``/``rate``/``sampled``/``shed``).
        """
        line = line.rstrip("\r")
        tenant, sep, content = line.partition("\t")
        if not sep or not TENANT_KEY_RE.match(tenant):
            self._protocol_reject(
                line,
                origin,
                "no tenant key (expected tenant<TAB>content)"
                if not sep
                else f"invalid tenant key {tenant[:64]!r}",
            )
            self._count_rejection(tenant or "<none>", PROTOCOL)
            with self._lock:
                self._submitted += 1
            return PROTOCOL
        with self._lock:
            self._submitted += 1
            if self.admission is not None:
                admitted, cause = self.admission.admit(tenant)
                if not admitted:
                    self._count_rejection(tenant, cause)
                    return cause
        outcome = self.shard(tenant).submit(LogRecord(content=content))
        return outcome

    def submit_line_v2(
        self, line: str, client: str, origin: str = "<stream>"
    ) -> tuple[str, str | None, int | None]:
        """Route one sequence-tagged line (protocol v2).

        Returns ``(outcome, tenant, high)``.  *high* is the client's
        cumulative acknowledgement watermark for *tenant* — every
        sequence it covers is durably owned — or ``None`` when no ack
        may be sent: the line was unroutable (``protocol``) or
        admission shed it before anything took ownership (the client
        must resend).
        """
        if self.protocol != PROTOCOL_V2:
            raise ValidationError(
                "sequence-tagged lines require a protocol-v2 service"
            )
        line = line.rstrip("\r")
        parsed = parse_data(line)
        if parsed is None:
            self._protocol_reject(
                line,
                origin,
                "no sequence number (expected seq<SP>tenant<TAB>content)",
            )
            self._count_rejection("<none>", PROTOCOL)
            with self._lock:
                self._submitted += 1
            return PROTOCOL, None, None
        seq, payload = parsed
        tenant, sep, content = payload.partition("\t")
        if not sep or not TENANT_KEY_RE.match(tenant):
            self._protocol_reject(
                line,
                origin,
                "no tenant key (expected seq tenant<TAB>content)"
                if not sep
                else f"invalid tenant key {tenant[:64]!r}",
            )
            self._count_rejection(tenant or "<none>", PROTOCOL)
            with self._lock:
                self._submitted += 1
            return PROTOCOL, None, None
        with self._lock:
            self._submitted += 1
            if self.admission is not None:
                admitted, cause = self.admission.admit(tenant)
                if not admitted:
                    self._count_rejection(tenant, cause)
                    return cause, tenant, None
        outcome, high = self.shard(tenant).submit_seq(
            LogRecord(content=content), client, seq
        )
        return outcome, tenant, high

    def note_partial(self, fragment: str, origin: str) -> None:
        """A connection died mid-line; quarantine the dangling bytes."""
        self._protocol_reject(
            fragment,
            origin,
            "partial line: connection closed before newline",
        )

    # ------------------------------------------------------------------
    # Drain
    # ------------------------------------------------------------------

    def checkpoint_all(self) -> None:
        """Checkpoint every shard without finalizing anything."""
        for tenant in self.tenants():
            self._shards[tenant].checkpoint()

    def drain(self) -> dict:
        """Flush every shard to durable, manifest-covered artifacts.

        Idempotent.  Returns ``{"tenants": {key: shard summary},
        "protocol_rejects": n}``.
        """
        if self._drained is not None:
            return self._drained
        span = None
        if self.telemetry is not None:
            span = self.telemetry.tracer.start(
                SPAN_SERVICE_DRAIN, tenants=len(self._shards)
            )
        summaries = {}
        for tenant in self.tenants():
            summaries[tenant] = self._shards[tenant].drain()
        self.quarantine.close()
        summary = {
            "tenants": summaries,
            "protocol_rejects": len(self.quarantine),
            "submitted": self._submitted,
        }
        if span is not None:
            span.attrs["protocol_rejects"] = len(self.quarantine)
            self.telemetry.tracer.finish(span)
        self._drained = summary
        return summary

    def health(self) -> dict:
        """Liveness verdict for the ``/healthz`` endpoint.

        Healthy means every materialized shard is still willing to
        parse: a fenced process-mode supervisor or an open thread-mode
        circuit breaker flips ``ok`` to ``False`` (the endpoint maps
        that to HTTP 503) while leaving per-tenant detail in place so
        an operator sees *which* tenant went dark.
        """
        tenants: dict[str, dict] = {}
        ok = True
        with self._lock:
            shards = dict(self._shards)
        for tenant in sorted(shards):
            shard = shards[tenant]
            state = getattr(shard, "state", None)
            if state is None:
                state = "breaker" if shard.breaker_open else "alive"
            breaker_open = bool(shard.breaker_open)
            if breaker_open or state == "fenced":
                ok = False
            tenants[tenant] = {
                "state": state,
                "breaker_open": breaker_open,
            }
        return {
            "ok": ok,
            "isolation": self.isolation,
            "tenants": tenants,
        }

    def describe(self) -> str:
        lines = [
            f"service: {len(self._shards)} tenant(s), "
            f"{self._submitted} line(s) submitted, "
            f"{len(self.quarantine)} protocol reject(s)"
        ]
        for tenant in self.tenants():
            lines.append("  " + self._shards[tenant].describe())
        if self.admission is not None:
            lines.append("  " + self.admission.describe())
        return "\n".join(lines)


def replay_lines(
    service: IngestionService,
    lines: Iterable[str],
    origin: str = "<replay>",
    *,
    guard=None,
) -> dict[str, int]:
    """In-process source adapter: submit *lines*, count outcomes.

    *guard* is an optional
    :class:`~repro.service.signals.ShutdownGuard`; it is checked
    between lines, so a graceful-shutdown signal stops the replay at a
    line boundary with every shard in a drainable state.
    """
    outcomes: dict[str, int] = {}
    for line in lines:
        if guard is not None:
            guard.check()
        line = line.rstrip("\n")
        if not line:
            continue
        outcome = service.submit_line(line, origin)
        outcomes[outcome] = outcomes.get(outcome, 0) + 1
    return outcomes


class LineServer:
    """Threaded TCP line front end over an :class:`IngestionService`.

    One reader thread per connection: a slow or stalled writer ties up
    only its own thread, and a connection that dies mid-line yields a
    ``protocol`` quarantine record for the dangling fragment.  Binding
    port 0 (the default) picks a free port, published via
    :attr:`port` after :meth:`start`.
    """

    def __init__(
        self,
        service: IngestionService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        backlog: int = 16,
        bind_retries: int = 5,
        bind_backoff: float = 0.05,
        sleep=time.sleep,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.backlog = backlog
        self.bind_retries = bind_retries
        self.bind_backoff = bind_backoff
        self._sleep = sleep
        self._sock: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._conn_threads: list[threading.Thread] = []
        self._conns: list[socket.socket] = []
        self._lock = threading.Lock()
        self._stopping = False

    def start(self) -> None:
        if self._sock is not None:
            raise ValidationError("server already started")
        sock = bind_with_retry(
            self.host,
            self.port,
            retries=self.bind_retries,
            backoff=self.bind_backoff,
            sleep=self._sleep,
        )
        sock.listen(self.backlog)
        self.port = sock.getsockname()[1]
        self._sock = sock
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="ingest-accept", daemon=True
        )
        self._accept_thread.start()

    def _accept_loop(self) -> None:
        while not self._stopping:
            try:
                conn, addr = self._sock.accept()
            except OSError:
                break  # listening socket closed by stop()
            thread = threading.Thread(
                target=self._serve_connection,
                args=(conn, addr),
                name=f"ingest-conn-{addr[1]}",
                daemon=True,
            )
            with self._lock:
                self._conn_threads.append(thread)
                self._conns.append(conn)
            thread.start()

    def _count_connection(self, outcome: str) -> None:
        telemetry = self.service.telemetry
        if telemetry is not None:
            telemetry.metrics.get(
                "repro_service_connections_total"
            ).labels(outcome=outcome).inc()

    def _count_ack(self) -> None:
        telemetry = self.service.telemetry
        if telemetry is not None:
            telemetry.metrics.get("repro_delivery_acked_total").inc()

    def _serve_connection(self, conn: socket.socket, addr) -> None:
        origin = f"tcp:{addr[0]}:{addr[1]}"
        buffer = b""
        outcome = "eof"
        # Did any complete line reach the router?  An OSError after
        # data was ingested is a different animal from a pre-data
        # reset — the v2 resend metrics must not conflate them.
        ingested = False
        # Per-connection protocol state: v1 until (and unless) the
        # first line is a well-formed v2 HELLO on a v2 service.
        first_line = True
        client_id: str | None = None
        conn.settimeout(0.2)
        try:
            while True:
                try:
                    data = conn.recv(65536)
                except socket.timeout:
                    if self._stopping:
                        outcome = "stopped"
                        break
                    continue
                except OSError:
                    outcome = "reset_after_data" if ingested else "reset"
                    break
                if not data:
                    break
                buffer += data
                while b"\n" in buffer:
                    raw, _, buffer = buffer.partition(b"\n")
                    text = raw.decode("utf-8", errors="replace")
                    if (
                        first_line
                        and self.service.protocol == PROTOCOL_V2
                    ):
                        first_line = False
                        negotiated = parse_hello(text)
                        if negotiated is not None:
                            client_id = negotiated
                            try:
                                conn.sendall(OK_LINE)
                            except OSError:
                                outcome = "reset"
                                buffer = b""
                                raise _ConnectionDone()
                            continue
                        # Not a HELLO: a v1 client — fall through and
                        # route the line verbatim, fire-and-forget.
                    first_line = False
                    try:
                        if client_id is not None:
                            _, tenant, high = self.service.submit_line_v2(
                                text, client_id, origin
                            )
                            ingested = True
                            if tenant is not None and high is not None:
                                try:
                                    conn.sendall(ack_line(tenant, high))
                                    self._count_ack()
                                except OSError:
                                    # The line is owned; only the ack
                                    # was lost.  The client repairs
                                    # that by resending on reconnect.
                                    outcome = "reset_after_data"
                                    buffer = b""
                                    raise _ConnectionDone()
                        else:
                            self.service.submit_line(text, origin)
                            ingested = True
                    except _ConnectionDone:
                        raise
                    except Exception as error:  # noqa: BLE001 - keep serving
                        # Shards never let tenant faults escape; anything
                        # landing here is a service bug — record it, keep
                        # the connection (and every other tenant) alive.
                        outcome = "error"
                        telemetry = self.service.telemetry
                        if telemetry is not None:
                            telemetry.events.emit(
                                "service_error",
                                origin=origin,
                                error=f"{type(error).__name__}: {error}",
                            )
        except _ConnectionDone:
            pass
        finally:
            if buffer:
                self.service.note_partial(
                    buffer.decode("utf-8", errors="replace"), origin
                )
                if outcome == "eof":
                    outcome = "partial"
            try:
                conn.close()
            except OSError:  # pragma: no cover - already dead
                pass
            self._count_connection(outcome)

    def stop(self, drain_timeout: float = 5.0) -> None:
        """Stop accepting, let in-flight readers finish, close sockets."""
        self._stopping = True
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=drain_timeout)
        with self._lock:
            threads = list(self._conn_threads)
            conns = list(self._conns)
        for thread in threads:
            thread.join(timeout=drain_timeout)
        for conn in conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass

    def __enter__(self) -> "LineServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
