"""repro — reproduction of "An Evaluation Study on Log Parsing and Its
Use in Log Mining" (He, Zhu, He, Li, Lyu — DSN 2016).

The package provides:

* the four log parsers the paper evaluates (SLCT, IPLoM, LKE, LogSig)
  behind one standard input/output contract (:mod:`repro.parsers`);
* synthetic reproductions of the five evaluation datasets with exact
  ground truth (:mod:`repro.datasets`);
* the log mining tasks of §III, foremost PCA anomaly detection
  (:mod:`repro.mining`);
* the evaluation harnesses behind every table and figure
  (:mod:`repro.evaluation`).

Quickstart::

    from repro import Iplom, generate_dataset, get_dataset_spec, f_measure

    dataset = generate_dataset(get_dataset_spec("HDFS"), 2000, seed=1)
    parsed = Iplom().parse(dataset.records)
    print(f_measure(parsed.assignments, dataset.truth_assignments))
"""

from repro.common import (
    EventTemplate,
    LogRecord,
    ParseResult,
    StructuredLog,
)
from repro.datasets import (
    DATASET_NAMES,
    generate_dataset,
    generate_hdfs_sessions,
    get_dataset_spec,
    iter_dataset,
    iter_dataset_specs,
    iter_raw_log,
)
from repro.evaluation import (
    LabelFreeScore,
    evaluate_accuracy,
    evaluate_label_free,
    evaluate_mining_impact,
    f_measure,
    measure_runtime,
    tuned_parser_factory,
)
from repro.mining import (
    build_event_matrix,
    build_system_model,
    compare_deployments,
    detect_anomalies,
    mine_invariants,
)
from repro.observability import (
    EventLog,
    MetricsRegistry,
    Telemetry,
    Tracer,
    export_metrics,
    render_prometheus,
    render_run_report,
    summary_from_registry,
)
from repro.parsers import (
    ChunkedParallelParser,
    DrainParser,
    DrainTree,
    Iplom,
    Lke,
    LogSig,
    OracleParser,
    PARSER_NAMES,
    Slct,
    available_parsers,
    default_preprocessor,
    make_parser,
)
from repro.streaming import (
    ParseSession,
    StreamingParser,
    TemplateCache,
    compare_stream_to_batch,
)

__version__ = "1.0.0"

__all__ = [
    "EventTemplate",
    "LogRecord",
    "ParseResult",
    "StructuredLog",
    "DATASET_NAMES",
    "generate_dataset",
    "generate_hdfs_sessions",
    "get_dataset_spec",
    "iter_dataset_specs",
    "LabelFreeScore",
    "evaluate_accuracy",
    "evaluate_label_free",
    "evaluate_mining_impact",
    "f_measure",
    "measure_runtime",
    "tuned_parser_factory",
    "build_event_matrix",
    "build_system_model",
    "compare_deployments",
    "detect_anomalies",
    "mine_invariants",
    "EventLog",
    "MetricsRegistry",
    "Telemetry",
    "Tracer",
    "export_metrics",
    "render_prometheus",
    "render_run_report",
    "summary_from_registry",
    "ChunkedParallelParser",
    "DrainParser",
    "DrainTree",
    "Iplom",
    "Lke",
    "LogSig",
    "OracleParser",
    "PARSER_NAMES",
    "Slct",
    "available_parsers",
    "default_preprocessor",
    "make_parser",
    "ParseSession",
    "StreamingParser",
    "TemplateCache",
    "compare_stream_to_batch",
    "iter_dataset",
    "iter_raw_log",
    "__version__",
]
