"""End-to-end anomaly detection pipeline (§III-B).

Chains the three steps the paper describes: log parsing (done by the
caller — the whole point of RQ3 is swapping parsers), event count
matrix generation, TF-IDF weighting, and PCA detection with the Q_α
threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.types import ParseResult
from repro.mining.event_matrix import EventCountMatrix, build_event_matrix
from repro.mining.pca import DEFAULT_ALPHA, PcaAnomalyModel
from repro.mining.tfidf import tf_idf_transform


@dataclass(frozen=True)
class AnomalyDetectionResult:
    """Outcome of the PCA pipeline on one parsed log."""

    flagged_sessions: frozenset[str]
    spe: np.ndarray
    threshold: float
    matrix: EventCountMatrix
    model: PcaAnomalyModel

    @property
    def n_flagged(self) -> int:
        return len(self.flagged_sessions)


def detect_anomalies(
    result: ParseResult,
    alpha: float = DEFAULT_ALPHA,
    use_tf_idf: bool = True,
    n_components: int | None = None,
) -> AnomalyDetectionResult:
    """Run matrix generation + TF-IDF + PCA on a parse result.

    Returns the set of session ids whose SPE exceeds Q_α.  ``use_tf_idf``
    exists for the ablation of the TF-IDF preprocessing step.
    """
    counts = build_event_matrix(result)
    weighted = (
        tf_idf_transform(counts.matrix) if use_tf_idf else counts.matrix
    )
    model = PcaAnomalyModel(alpha=alpha, n_components=n_components)
    model.fit(weighted)
    spe = model.spe(weighted)
    flags = spe > model.threshold
    flagged = frozenset(
        session_id
        for session_id, flagged_row in zip(counts.session_ids, flags)
        if flagged_row
    )
    return AnomalyDetectionResult(
        flagged_sessions=flagged,
        spe=spe,
        threshold=model.threshold,
        matrix=counts,
        model=model,
    )
