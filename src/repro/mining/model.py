"""Synoptic-style system model construction (§III-A).

Beschastnikh et al.'s Synoptic builds a finite-state-machine model of a
system from its parsed log: states are log events, edges are observed
"event A is immediately followed by event B within a session"
transitions, plus synthetic INITIAL/TERMINAL states.  The paper points
out that a bad parser changes both the states and the layout of the
model; :func:`build_system_model` lets tests and examples quantify that
by comparing models built from different parsers' outputs.

The model here is the initial (unrefined) Synoptic graph with
transition probabilities — sufficient to observe parser-induced model
distortion, which is what the paper discusses.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field

from repro.common.errors import MiningError
from repro.common.types import ParseResult
from repro.mining.verification import event_sequences

#: Synthetic start/end states of every session walk.
INITIAL = "__INITIAL__"
TERMINAL = "__TERMINAL__"


@dataclass
class SystemModel:
    """A probabilistic FSM mined from session event sequences."""

    states: set[str] = field(default_factory=set)
    #: (source, target) -> observation count.
    transitions: Counter = field(default_factory=Counter)

    @property
    def n_states(self) -> int:
        return len(self.states)

    @property
    def n_transitions(self) -> int:
        return len(self.transitions)

    def probability(self, source: str, target: str) -> float:
        """Empirical probability of *target* following *source*."""
        out_edges = [
            (edge, count)
            for edge, count in self.transitions.items()
            if edge[0] == source
        ]
        total = sum(count for _edge, count in out_edges)
        if total == 0:
            return 0.0
        return self.transitions[(source, target)] / total

    def successors(self, source: str) -> dict[str, int]:
        result: dict[str, int] = defaultdict(int)
        for (edge_source, edge_target), count in self.transitions.items():
            if edge_source == source:
                result[edge_target] += count
        return dict(result)

    def edge_difference(self, other: "SystemModel") -> int:
        """Number of edges present in exactly one of the two models."""
        mine = set(self.transitions)
        theirs = set(other.transitions)
        return len(mine ^ theirs)


def build_system_model(result: ParseResult) -> SystemModel:
    """Mine the initial Synoptic FSM from a parse result's sessions.

    Each session contributes the walk ``INITIAL → e_1 → … → e_n →
    TERMINAL``.  Raises when the result contains no sessions, since a
    model of nothing is meaningless.
    """
    sequences = event_sequences(result)
    if not sequences:
        raise MiningError(
            "no sessions in parse result; cannot build a system model"
        )
    model = SystemModel()
    model.states.update((INITIAL, TERMINAL))
    for sequence in sequences.values():
        previous = INITIAL
        for event_id in sequence:
            model.states.add(event_id)
            model.transitions[(previous, event_id)] += 1
            previous = event_id
        model.transitions[(previous, TERMINAL)] += 1
    return model
