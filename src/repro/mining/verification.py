"""Deployment verification by event-sequence comparison (§III-A).

Shang et al. (ICSE 2013) debug big-data applications by comparing the
log *event sequences* produced in a pseudo-cloud test environment
against those produced after deployment to the real cloud: only
sequences that differ are reported to developers, shrinking the review
workload.  A bad parser produces wrong event sequences and destroys the
reduction — which is why the paper lists this task among those
sensitive to parsing quality.

Here a *sequence* is the ordered tuple of event ids of one session
(records sharing a ``session_id``, in input order).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ValidationError

from repro.common.types import ParseResult


def event_sequences(result: ParseResult) -> dict[str, tuple[str, ...]]:
    """Map each session id to its ordered event-id sequence."""
    sequences: dict[str, list[str]] = {}
    for structured in result.structured():
        session_id = structured.record.session_id
        if not session_id:
            continue
        sequences.setdefault(session_id, []).append(structured.event_id)
    return {
        session_id: tuple(events)
        for session_id, events in sequences.items()
    }


@dataclass(frozen=True)
class SequenceDelta:
    """Differences between two deployments' event-sequence sets.

    Attributes:
        only_in_reference: distinct sequences seen only pre-deployment.
        only_in_deployment: distinct sequences seen only post-deployment.
        common: distinct sequences seen in both.
    """

    only_in_reference: frozenset[tuple[str, ...]]
    only_in_deployment: frozenset[tuple[str, ...]]
    common: frozenset[tuple[str, ...]]

    @property
    def n_reported(self) -> int:
        """Sequences a developer must inspect."""
        return len(self.only_in_reference) + len(self.only_in_deployment)

    @property
    def reduction_ratio(self) -> float:
        """Fraction of distinct sequences filtered from review.

        1.0 means the deployment matched the reference perfectly (no
        sequences to review); 0.0 means nothing matched.
        """
        total = self.n_reported + len(self.common)
        if total == 0:
            return 1.0
        return len(self.common) / total


def compare_deployments(
    reference: ParseResult,
    deployment: ParseResult,
    signature: str = "sequence",
) -> SequenceDelta:
    """Compare the distinct event signatures of two parsed runs.

    Event ids are parser-local, so sessions are compared through the
    *templates* behind the ids when available: both results' event ids
    are rewritten to their template strings first, making results from
    two independent parser runs comparable.

    ``signature`` selects the per-session signature:

    * ``"sequence"`` — the exact ordered event sequence (strict);
    * ``"set"`` — the sorted set of event types (robust to benign
      reordering and repetition, the usual normalization when sessions
      interleave nondeterministically).
    """
    if signature not in {"sequence", "set"}:
        raise ValidationError(
            f"signature must be 'sequence' or 'set', got {signature!r}"
        )

    def normalized(result: ParseResult) -> set[tuple[str, ...]]:
        mapping = {
            event.event_id: event.template for event in result.events
        }
        signatures = set()
        for sequence in event_sequences(result).values():
            templates = tuple(
                mapping.get(event_id, event_id) for event_id in sequence
            )
            if signature == "set":
                templates = tuple(sorted(set(templates)))
            signatures.add(templates)
        return signatures

    reference_set = normalized(reference)
    deployment_set = normalized(deployment)
    return SequenceDelta(
        only_in_reference=frozenset(reference_set - deployment_set),
        only_in_deployment=frozenset(deployment_set - reference_set),
        common=frozenset(reference_set & deployment_set),
    )
