"""Event count matrix construction (§III-B step 2).

Parsed results are grouped by session (the HDFS block id): each row of
the matrix is one session, each column one event type, and cell
``Y[i, j]`` counts how many times event ``j`` occurred in session ``i``.
The matrix is built in one pass over the structured logs, exactly as
the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Hashable

import numpy as np

from repro.common.errors import MiningError
from repro.common.types import ParseResult


@dataclass(frozen=True)
class EventCountMatrix:
    """A session-by-event count matrix with row/column identities."""

    matrix: np.ndarray  # shape (n_sessions, n_events), float64
    session_ids: tuple[str, ...]
    event_ids: tuple[str, ...]

    def __post_init__(self) -> None:
        n_rows, n_cols = self.matrix.shape
        if n_rows != len(self.session_ids):
            raise MiningError(
                f"matrix has {n_rows} rows but {len(self.session_ids)} "
                f"session ids"
            )
        if n_cols != len(self.event_ids):
            raise MiningError(
                f"matrix has {n_cols} columns but {len(self.event_ids)} "
                f"event ids"
            )

    @property
    def n_sessions(self) -> int:
        return self.matrix.shape[0]

    @property
    def n_events(self) -> int:
        return self.matrix.shape[1]

    def row(self, session_id: str) -> np.ndarray:
        return self.matrix[self.session_ids.index(session_id)]


def build_event_matrix(result: ParseResult) -> EventCountMatrix:
    """Build the session-by-event count matrix from a parse result.

    Sessions are identified by each record's ``session_id``; records
    with an empty session id are skipped (they belong to no request).
    Event columns cover every event id occurring in the assignments —
    including the outlier pseudo-event if the parser produced one,
    because misparsed lines land there and their effect on mining is
    precisely what RQ3 measures.
    """
    session_index: dict[str, int] = {}
    event_index: dict[str, int] = {}
    triples: list[tuple[int, int]] = []
    for structured in result.structured():
        session_id = structured.record.session_id
        if not session_id:
            continue
        row = session_index.setdefault(session_id, len(session_index))
        column = event_index.setdefault(structured.event_id, len(event_index))
        triples.append((row, column))
    if not session_index:
        raise MiningError(
            "no records carry a session id; cannot build an event matrix"
        )
    matrix = np.zeros((len(session_index), len(event_index)), dtype=float)
    for row, column in triples:
        matrix[row, column] += 1.0
    return EventCountMatrix(
        matrix=matrix,
        session_ids=tuple(session_index),
        event_ids=tuple(event_index),
    )


class EventMatrixAccumulator:
    """Incrementally built session-by-event counts for streaming parses.

    The streaming engine assigns lines one at a time and may later
    *merge* two events when a flush discovers that one template
    generalizes another.  The accumulator therefore counts by opaque
    event *keys* (the engine's slots) and supports
    :meth:`remap` — folding one key's column into another — so the
    live matrix always reflects the engine's current event table.
    Keys are translated to event-id column labels only at
    :meth:`build` time.
    """

    def __init__(self) -> None:
        #: event key -> (session id -> count); column-major so a remap
        #: touches exactly two columns.
        self._columns: dict[Hashable, dict[str, float]] = {}
        #: session ids in first-appearance order (the row order).
        self._sessions: dict[str, None] = {}

    @property
    def n_sessions(self) -> int:
        return len(self._sessions)

    @property
    def n_keys(self) -> int:
        return len(self._columns)

    def add(self, session_id: str, event_key: Hashable, count: float = 1.0) -> None:
        """Count one occurrence of *event_key* in *session_id*.

        Records without a session id are skipped, matching
        :func:`build_event_matrix`.
        """
        if not session_id:
            return
        self._sessions.setdefault(session_id, None)
        column = self._columns.setdefault(event_key, {})
        column[session_id] = column.get(session_id, 0.0) + count

    def remap(self, old_key: Hashable, new_key: Hashable) -> None:
        """Fold *old_key*'s column into *new_key* (event merge)."""
        old_column = self._columns.pop(old_key, None)
        if old_column is None:
            return
        column = self._columns.setdefault(new_key, {})
        for session_id, count in old_column.items():
            column[session_id] = column.get(session_id, 0.0) + count

    def state(self) -> dict:
        """JSON-ready snapshot for streaming checkpoints.

        Event keys survive a JSON round-trip unchanged for the keys
        the streaming engine actually uses (integer slots).
        """
        return {
            "sessions": list(self._sessions),
            "columns": [
                [key, sorted(column.items())]
                for key, column in self._columns.items()
            ],
        }

    def restore_state(self, state: dict) -> None:
        """Rebuild the accumulator from a :meth:`state` snapshot."""
        self._sessions = {session_id: None for session_id in state["sessions"]}
        self._columns = {
            key: {session_id: count for session_id, count in column}
            for key, column in state["columns"]
        }

    def build(
        self, label_of: Callable[[Hashable], str] | None = None
    ) -> EventCountMatrix:
        """Materialize the current counts as an :class:`EventCountMatrix`.

        ``label_of`` translates event keys into column labels (e.g. the
        streaming engine's final ``E<n>`` ids); by default keys are
        stringified.  Raises :class:`MiningError` when no record carried
        a session id, matching :func:`build_event_matrix`.
        """
        if not self._sessions:
            raise MiningError(
                "no records carry a session id; cannot build an event matrix"
            )
        if label_of is None:
            label_of = str
        session_row = {
            session_id: row for row, session_id in enumerate(self._sessions)
        }
        event_ids = tuple(label_of(key) for key in self._columns)
        matrix = np.zeros((len(session_row), len(event_ids)), dtype=float)
        for column_no, column in enumerate(self._columns.values()):
            for session_id, count in column.items():
                matrix[session_row[session_id], column_no] += count
        return EventCountMatrix(
            matrix=matrix,
            session_ids=tuple(session_row),
            event_ids=event_ids,
        )
