"""Event count matrix construction (§III-B step 2).

Parsed results are grouped by session (the HDFS block id): each row of
the matrix is one session, each column one event type, and cell
``Y[i, j]`` counts how many times event ``j`` occurred in session ``i``.
The matrix is built in one pass over the structured logs, exactly as
the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import MiningError
from repro.common.types import ParseResult


@dataclass(frozen=True)
class EventCountMatrix:
    """A session-by-event count matrix with row/column identities."""

    matrix: np.ndarray  # shape (n_sessions, n_events), float64
    session_ids: tuple[str, ...]
    event_ids: tuple[str, ...]

    def __post_init__(self) -> None:
        n_rows, n_cols = self.matrix.shape
        if n_rows != len(self.session_ids):
            raise MiningError(
                f"matrix has {n_rows} rows but {len(self.session_ids)} "
                f"session ids"
            )
        if n_cols != len(self.event_ids):
            raise MiningError(
                f"matrix has {n_cols} columns but {len(self.event_ids)} "
                f"event ids"
            )

    @property
    def n_sessions(self) -> int:
        return self.matrix.shape[0]

    @property
    def n_events(self) -> int:
        return self.matrix.shape[1]

    def row(self, session_id: str) -> np.ndarray:
        return self.matrix[self.session_ids.index(session_id)]


def build_event_matrix(result: ParseResult) -> EventCountMatrix:
    """Build the session-by-event count matrix from a parse result.

    Sessions are identified by each record's ``session_id``; records
    with an empty session id are skipped (they belong to no request).
    Event columns cover every event id occurring in the assignments —
    including the outlier pseudo-event if the parser produced one,
    because misparsed lines land there and their effect on mining is
    precisely what RQ3 measures.
    """
    session_index: dict[str, int] = {}
    event_index: dict[str, int] = {}
    triples: list[tuple[int, int]] = []
    for structured in result.structured():
        session_id = structured.record.session_id
        if not session_id:
            continue
        row = session_index.setdefault(session_id, len(session_index))
        column = event_index.setdefault(structured.event_id, len(event_index))
        triples.append((row, column))
    if not session_index:
        raise MiningError(
            "no records carry a session id; cannot build an event matrix"
        )
    matrix = np.zeros((len(session_index), len(event_index)), dtype=float)
    for row, column in triples:
        matrix[row, column] += 1.0
    return EventCountMatrix(
        matrix=matrix,
        session_ids=tuple(session_index),
        event_ids=tuple(event_index),
    )
