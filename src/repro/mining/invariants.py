"""Invariant mining over structured logs (Lou et al., ATC 2010).

Lou et al. detect system problems by mining linear invariants between
event counts within a session — e.g. in HDFS, *"number of 'Receiving
block' events equals number of 'PacketResponder terminating' events"*
holds for every healthy block.  Sessions violating a mined invariant
are anomalous.  This is the other classic parse-consuming miner cited
by the paper (§VI, reference [25]); it exercises the structured-log
output in a different way from PCA (pairwise count relations instead of
subspace distance).

Only the practically dominant invariant families are mined:

* equality ``count(A) == count(B)``,
* ordering ``count(A) >= count(B)``.

An invariant is reported when it holds in at least ``min_support``
sessions that contain either event and is violated by at most
``tolerance`` of them.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from repro.common.errors import MiningError
from repro.mining.event_matrix import EventCountMatrix


@dataclass(frozen=True)
class Invariant:
    """One mined count relation between two event types."""

    kind: str  # "eq" or "ge"
    left: str
    right: str
    support: int  # sessions where the relation was checked
    violations: int  # sessions violating it

    def holds_for(self, left_count: float, right_count: float) -> bool:
        if self.kind == "eq":
            return left_count == right_count
        return left_count >= right_count

    def __str__(self) -> str:
        symbol = "==" if self.kind == "eq" else ">="
        return f"count({self.left}) {symbol} count({self.right})"


def mine_invariants(
    counts: EventCountMatrix,
    min_support: int = 10,
    tolerance: float = 0.02,
) -> list[Invariant]:
    """Mine equality/ordering count invariants from the matrix.

    Args:
        counts: the session-by-event count matrix.
        min_support: minimum number of sessions containing either event
            for the pair to be considered.
        tolerance: maximum tolerated violation fraction (real logs are
            noisy; Lou et al. also allow imperfect invariants).
    """
    if min_support < 1:
        raise MiningError(f"min_support must be >= 1, got {min_support}")
    if not 0.0 <= tolerance < 1.0:
        raise MiningError(f"tolerance must be in [0,1), got {tolerance}")
    matrix = counts.matrix
    invariants: list[Invariant] = []
    for i, j in combinations(range(counts.n_events), 2):
        left_column = matrix[:, i]
        right_column = matrix[:, j]
        relevant = (left_column > 0) | (right_column > 0)
        support = int(np.count_nonzero(relevant))
        if support < min_support:
            continue
        left_values = left_column[relevant]
        right_values = right_column[relevant]
        eq_violations = int(np.count_nonzero(left_values != right_values))
        if eq_violations <= tolerance * support:
            invariants.append(
                Invariant(
                    kind="eq",
                    left=counts.event_ids[i],
                    right=counts.event_ids[j],
                    support=support,
                    violations=eq_violations,
                )
            )
            continue  # equality implies both orderings; skip weaker forms
        ge_violations = int(np.count_nonzero(left_values < right_values))
        le_violations = int(np.count_nonzero(left_values > right_values))
        if ge_violations <= tolerance * support:
            invariants.append(
                Invariant(
                    kind="ge",
                    left=counts.event_ids[i],
                    right=counts.event_ids[j],
                    support=support,
                    violations=ge_violations,
                )
            )
        elif le_violations <= tolerance * support:
            invariants.append(
                Invariant(
                    kind="ge",
                    left=counts.event_ids[j],
                    right=counts.event_ids[i],
                    support=support,
                    violations=le_violations,
                )
            )
    return invariants


def violating_sessions(
    counts: EventCountMatrix, invariants: list[Invariant]
) -> dict[str, list[Invariant]]:
    """Map each session id to the invariants it violates (if any)."""
    column_index = {
        event_id: position
        for position, event_id in enumerate(counts.event_ids)
    }
    violations: dict[str, list[Invariant]] = {}
    for row, session_id in enumerate(counts.session_ids):
        for invariant in invariants:
            left = counts.matrix[row, column_index[invariant.left]]
            right = counts.matrix[row, column_index[invariant.right]]
            if (left > 0 or right > 0) and not invariant.holds_for(
                left, right
            ):
                violations.setdefault(session_id, []).append(invariant)
    return violations
