"""TF-IDF weighting of the event count matrix (§III-B step 2).

Xu et al. preprocess the event count matrix with TF-IDF before PCA:
common event types, which occur in almost every session, are weighted
down because they are unlikely to signal anomalies, while rare event
types are weighted up.  The inverse document frequency of event ``j``
is ``log(N / df_j)``, with ``df_j`` the number of sessions in which
event ``j`` occurs at least once.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import MiningError


def tf_idf_transform(matrix: np.ndarray) -> np.ndarray:
    """Apply TF-IDF weighting to a session-by-event count matrix.

    Columns that occur in *every* session get weight ``log(1) = 0`` —
    fully discounted, which is the desired behaviour for ubiquitous
    events.  Columns that never occur keep zero weight as well (their
    counts are all zero anyway).
    """
    if matrix.ndim != 2:
        raise MiningError(
            f"expected a 2-D count matrix, got shape {matrix.shape}"
        )
    n_sessions = matrix.shape[0]
    if n_sessions == 0:
        return matrix.astype(float).copy()
    document_frequency = np.count_nonzero(matrix, axis=0).astype(float)
    idf = np.zeros(matrix.shape[1])
    occurring = document_frequency > 0
    idf[occurring] = np.log(n_sessions / document_frequency[occurring])
    return matrix.astype(float) * idf
