"""PCA anomaly detection with the Q-statistic threshold (§III-B step 3).

The model of Xu et al.: the top-``k`` principal components of the
(TF-IDF weighted) event count matrix span the *normal space* S_d; the
remaining ``n − k`` dimensions form the *anomaly space* S_a.  A session
vector ``y`` is scored by its squared prediction error

    SPE = ‖y_a‖²,   y_a = (I − P Pᵀ) y,

the squared distance from the normal space, and flagged anomalous when
``SPE > Q_α``, the Jackson–Mudholkar Q-statistic threshold at
confidence level ``1 − α`` (the paper fixes α = 0.001 as in the
original work).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import stats

from repro.common.errors import MiningError

#: The paper's confidence parameter for Q_alpha.
DEFAULT_ALPHA = 0.001

#: Fraction of total variance the normal space must capture (Xu et al.).
DEFAULT_VARIANCE_FRACTION = 0.95


def q_statistic_threshold(
    eigenvalues: np.ndarray, k: int, alpha: float = DEFAULT_ALPHA
) -> float:
    """Jackson–Mudholkar threshold Q_α for the residual subspace.

    ``eigenvalues`` are the covariance eigenvalues sorted descending;
    the residual subspace is spanned by components ``k..n-1``.  Returns
    ``inf`` when the residual spectrum is (numerically) empty — no
    residual energy means nothing can exceed the threshold.
    """
    if not 0.0 < alpha < 1.0:
        raise MiningError(f"alpha must be in (0,1), got {alpha}")
    residual = np.clip(eigenvalues[k:], 0.0, None)
    theta1 = float(np.sum(residual))
    theta2 = float(np.sum(residual**2))
    theta3 = float(np.sum(residual**3))
    if theta1 <= 0 or theta2 <= 0:
        return float("inf")
    h0 = 1.0 - 2.0 * theta1 * theta3 / (3.0 * theta2**2)
    if h0 <= 0:
        # Degenerate spectrum; fall back to the 3-sigma-style bound.
        return theta1 + 3.0 * np.sqrt(theta2)
    c_alpha = stats.norm.ppf(1.0 - alpha)
    term = (
        c_alpha * np.sqrt(2.0 * theta2 * h0**2) / theta1
        + 1.0
        + theta2 * h0 * (h0 - 1.0) / theta1**2
    )
    if term <= 0:
        return float("inf")
    return float(theta1 * term ** (1.0 / h0))


@dataclass
class PcaAnomalyModel:
    """PCA normal/anomaly-space model with an SPE threshold.

    Attributes populated by :meth:`fit`:
        mean: per-column mean used for centering.
        components: (n_features, k) orthonormal basis of normal space.
        threshold: the fitted Q_α.
        n_components: the chosen k.
    """

    alpha: float = DEFAULT_ALPHA
    variance_fraction: float = DEFAULT_VARIANCE_FRACTION
    n_components: int | None = None
    mean: np.ndarray = field(default=None, repr=False)
    components: np.ndarray = field(default=None, repr=False)
    threshold: float = field(default=None)
    eigenvalues: np.ndarray = field(default=None, repr=False)

    def fit(self, matrix: np.ndarray) -> "PcaAnomalyModel":
        """Fit normal space and Q_α threshold to *matrix* (rows=sessions)."""
        if matrix.ndim != 2 or matrix.shape[0] < 2:
            raise MiningError(
                f"need a 2-D matrix with >= 2 rows, got shape {matrix.shape}"
            )
        if not 0.0 < self.variance_fraction <= 1.0:
            raise MiningError(
                f"variance_fraction must be in (0,1], got "
                f"{self.variance_fraction}"
            )
        data = np.asarray(matrix, dtype=float)
        self.mean = data.mean(axis=0)
        centered = data - self.mean
        # SVD of the centered data gives covariance eigen-structure.
        _u, singular, v_transposed = np.linalg.svd(
            centered, full_matrices=False
        )
        eigenvalues = singular**2 / max(data.shape[0] - 1, 1)
        self.eigenvalues = eigenvalues
        if self.n_components is not None:
            if not 1 <= self.n_components <= len(eigenvalues):
                raise MiningError(
                    f"n_components must be in [1, {len(eigenvalues)}], "
                    f"got {self.n_components}"
                )
            k = self.n_components
        else:
            total = float(np.sum(eigenvalues))
            if total <= 0:
                k = 1
            else:
                cumulative = np.cumsum(eigenvalues) / total
                k = int(np.searchsorted(cumulative, self.variance_fraction) + 1)
                k = min(k, len(eigenvalues))
        self._k = k
        self.components = v_transposed[:k].T  # (n_features, k)
        self.threshold = q_statistic_threshold(eigenvalues, k, self.alpha)
        return self

    @property
    def fitted_components(self) -> int:
        if self.components is None:
            raise MiningError("model not fitted")
        return self.components.shape[1]

    def spe(self, matrix: np.ndarray) -> np.ndarray:
        """Squared prediction error of each row (distance to normal space)."""
        if self.components is None:
            raise MiningError("model not fitted")
        centered = np.asarray(matrix, dtype=float) - self.mean
        projection = centered @ self.components  # (n, k)
        residual = centered - projection @ self.components.T
        return np.einsum("ij,ij->i", residual, residual)

    def predict(self, matrix: np.ndarray) -> np.ndarray:
        """Boolean anomaly flags: SPE > Q_α."""
        return self.spe(matrix) > self.threshold
