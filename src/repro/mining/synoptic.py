"""Synoptic's temporal invariants and counterexample-guided refinement.

§III-A describes Beschastnikh et al.'s Synoptic: from parsed logs it
builds an initial FSM (:mod:`repro.mining.model`), mines temporal
invariants over the event sequences, and *refines* the model by
splitting states until every mined invariant holds — "if an unsuitable
log parser is used, both initial model building step and model
refinement step will be affected".

This module implements the invariant half and a simplified refinement
loop faithful to Synoptic's structure:

* **Temporal invariants** over session event sequences:

  - ``a AlwaysFollowedBy b`` — every occurrence of *a* is eventually
    followed by *b* within its session;
  - ``a AlwaysPrecededBy b`` — every occurrence of *a* has an earlier
    *b* in its session;
  - ``a NeverFollowedBy b`` — no occurrence of *a* is ever followed by
    *b*.

* **Refinement** — the initial model merges all occurrences of an event
  into one state, which typically *violates* mined NFby invariants by
  introducing paths the log never exhibited.  :func:`refine_model`
  splits the offending state by its incoming context (one round of
  Synoptic's counterexample-guided splitting) until the checked
  invariants hold or no split applies.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from collections.abc import Iterable, Sequence

from repro.common.errors import MiningError
from repro.common.types import ParseResult
from repro.mining.model import INITIAL, TERMINAL, SystemModel
from repro.mining.verification import event_sequences


@dataclass(frozen=True)
class TemporalInvariant:
    """One mined temporal relation between two event types."""

    kind: str  # "AFby", "APby", or "NFby"
    first: str
    second: str

    def __str__(self) -> str:
        names = {
            "AFby": "AlwaysFollowedBy",
            "APby": "AlwaysPrecededBy",
            "NFby": "NeverFollowedBy",
        }
        return f"{self.first} {names[self.kind]} {self.second}"


def mine_temporal_invariants(
    sequences: Iterable[Sequence[str]],
) -> list[TemporalInvariant]:
    """Mine AFby / APby / NFby invariants from session sequences.

    Follows Synoptic's counting formulation: for each ordered event
    pair, count the sessions where the relation could be observed and
    the sessions where it held; an invariant is mined when it held
    every single time (temporal invariants are exact, unlike the count
    invariants of :mod:`repro.mining.invariants`).
    """
    sequences = [tuple(sequence) for sequence in sequences]
    if not sequences:
        raise MiningError("cannot mine invariants from no sequences")

    events: set[str] = set()
    #: sessions containing a given event.
    containing: dict[str, int] = defaultdict(int)
    #: (a, b): sessions where every a was eventually followed by a b.
    afby_held: dict[tuple[str, str], int] = defaultdict(int)
    #: (a, b): sessions where some a was followed by a b.
    followed_somewhere: dict[tuple[str, str], int] = defaultdict(int)
    #: (a, b): sessions where every a had an earlier b.
    apby_held: dict[tuple[str, str], int] = defaultdict(int)

    for sequence in sequences:
        present = set(sequence)
        events.update(present)
        for event in present:
            containing[event] += 1

        # For AFby: b must appear after the LAST a.
        last_index = {event: i for i, event in enumerate(sequence)}
        # For APby: b must appear before the FIRST a.
        first_index: dict[str, int] = {}
        for i, event in enumerate(sequence):
            first_index.setdefault(event, i)

        followers: dict[str, set[str]] = {}
        suffix: set[str] = set()
        for i in range(len(sequence) - 1, -1, -1):
            event = sequence[i]
            followers.setdefault(event, set()).update(suffix)
            suffix.add(event)

        for a in present:
            after_last_a = set(sequence[last_index[a] + 1 :])
            before_first_a = set(sequence[: first_index[a]])
            for b in present | {TERMINAL}:
                if b == TERMINAL:
                    continue
                if b in after_last_a:
                    afby_held[(a, b)] += 1
                if b in followers.get(a, set()):
                    followed_somewhere[(a, b)] += 1
                if b in before_first_a:
                    apby_held[(a, b)] += 1

    invariants: list[TemporalInvariant] = []
    for a in sorted(events):
        for b in sorted(events):
            if a == b:
                continue
            co_sessions = afby_held[(a, b)]
            if containing[a] > 0 and co_sessions == containing[a]:
                invariants.append(TemporalInvariant("AFby", a, b))
            if containing[a] > 0 and apby_held[(a, b)] == containing[a]:
                invariants.append(TemporalInvariant("APby", a, b))
            if followed_somewhere[(a, b)] == 0:
                invariants.append(TemporalInvariant("NFby", a, b))
    return invariants


def check_invariant(
    sequences: Iterable[Sequence[str]], invariant: TemporalInvariant
) -> bool:
    """Check one invariant against concrete session sequences."""
    for sequence in sequences:
        sequence = tuple(sequence)
        positions = [
            i for i, event in enumerate(sequence)
            if event == invariant.first
        ]
        if not positions:
            continue
        if invariant.kind == "AFby":
            if invariant.second not in sequence[positions[-1] + 1 :]:
                return False
        elif invariant.kind == "APby":
            if invariant.second not in sequence[: positions[0]]:
                return False
        elif invariant.kind == "NFby":
            for position in positions:
                if invariant.second in sequence[position + 1 :]:
                    return False
    return True


def model_violates_nfby(
    model: SystemModel, invariant: TemporalInvariant
) -> bool:
    """True if the model admits a path first → … → second.

    The merged initial model over-generalizes: it may contain a path
    that no logged session took, violating a mined NFby invariant —
    the signal Synoptic refines on.
    """
    if invariant.kind != "NFby":
        raise MiningError("model checking implemented for NFby only")
    # BFS from the states reachable after emitting `first`.
    start = invariant.first
    if start not in model.states:
        return False
    visited: set[str] = set()
    frontier = [start]
    while frontier:
        state = frontier.pop()
        for successor in model.successors(state):
            if successor in visited:
                continue
            if successor == invariant.second:
                return True
            visited.add(successor)
            frontier.append(successor)
    return False


@dataclass
class RefinedModel:
    """Outcome of the refinement loop."""

    model: SystemModel
    splits: int
    satisfied: list[TemporalInvariant]
    unsatisfied: list[TemporalInvariant]


def _build_context_model(
    sequences: list[tuple[str, ...]], split_events: set[str]
) -> SystemModel:
    """Build the FSM with selected events split by predecessor context."""
    model = SystemModel()
    model.states.update((INITIAL, TERMINAL))
    for sequence in sequences:
        previous_state = INITIAL
        previous_event = INITIAL
        for event in sequence:
            if event in split_events:
                state = f"{event}←{previous_event}"
            else:
                state = event
            model.states.add(state)
            model.transitions[(previous_state, state)] += 1
            previous_state = state
            previous_event = event
        model.transitions[(previous_state, TERMINAL)] += 1
    return model


def refine_model(
    result: ParseResult,
    invariants: list[TemporalInvariant] | None = None,
    max_splits: int = 20,
) -> RefinedModel:
    """Split states by incoming context until NFby invariants hold.

    A simplified counterexample-guided loop: while some mined NFby
    invariant is violated by the current model, split its *first* event
    into per-predecessor states and rebuild.  Sessions are the ground
    truth, so the loop terminates: in the limit every event is
    context-split and the model accepts exactly the logged transitions'
    closure.
    """
    sequences = [
        tuple(sequence)
        for sequence in event_sequences(result).values()
    ]
    if not sequences:
        raise MiningError("no sessions to build a model from")
    if invariants is None:
        invariants = mine_temporal_invariants(sequences)
    nfby = [inv for inv in invariants if inv.kind == "NFby"]

    split_events: set[str] = set()
    model = _build_context_model(sequences, split_events)
    splits = 0
    progress = True
    while progress and splits < max_splits:
        progress = False
        for invariant in nfby:
            if not _refined_violates(model, invariant):
                continue
            candidate = _split_candidate(
                model, invariant, split_events
            )
            if candidate is not None:
                split_events.add(candidate)
                model = _build_context_model(sequences, split_events)
                splits += 1
                progress = True
                break

    satisfied = [
        inv for inv in nfby if not _refined_violates(model, inv)
    ]
    unsatisfied = [inv for inv in nfby if _refined_violates(model, inv)]
    return RefinedModel(
        model=model,
        splits=splits,
        satisfied=satisfied,
        unsatisfied=unsatisfied,
    )


def _base_event(state: str) -> str:
    """The event behind a possibly context-split state name."""
    return state.split("←", 1)[0]


def _split_candidate(
    model: SystemModel,
    invariant: TemporalInvariant,
    already_split: set[str],
) -> str | None:
    """Pick the confluence event to split for a violated NFby invariant.

    BFS from the invariant's *first* states records parent pointers;
    when the *second* event is reached, the violating path is walked
    back and the path state closest to *second* that merges several
    incoming contexts (in-degree from >1 distinct predecessors) and has
    not been split yet is chosen — the merged state responsible for the
    spurious path.
    """
    def is_event(state: str, event: str) -> bool:
        return _base_event(state) == event

    predecessors: dict[str, set[str]] = defaultdict(set)
    for (source, target) in model.transitions:
        predecessors[target].add(source)

    starts = [
        state for state in model.states
        if is_event(state, invariant.first)
    ]
    parents: dict[str, str] = {}
    visited: set[str] = set(starts)
    frontier = list(starts)
    hit: str | None = None
    while frontier and hit is None:
        state = frontier.pop(0)
        for successor in model.successors(state):
            if successor in visited:
                continue
            parents[successor] = state
            if is_event(successor, invariant.second):
                hit = successor
                break
            visited.add(successor)
            frontier.append(successor)
    if hit is None:
        return None

    # Walk the counterexample back, collecting intermediate states.
    path: list[str] = []
    state = parents.get(hit)
    while state is not None and state not in starts:
        path.append(state)
        state = parents.get(state)
    for state in path:  # closest to `second` first
        event = _base_event(state)
        if event in already_split:
            continue
        if len(predecessors[state]) > 1:
            return event
    # No confluence on the path: fall back to splitting the first event.
    if invariant.first not in already_split:
        return invariant.first
    return None


def _refined_violates(
    model: SystemModel, invariant: TemporalInvariant
) -> bool:
    """NFby check on a model whose states may be context-split."""
    def is_event(state: str, event: str) -> bool:
        return state == event or state.startswith(f"{event}←")

    starts = [
        state for state in model.states
        if is_event(state, invariant.first)
    ]
    visited: set[str] = set()
    frontier = list(starts)
    while frontier:
        state = frontier.pop()
        for successor in model.successors(state):
            if successor in visited:
                continue
            if is_event(successor, invariant.second):
                return True
            visited.add(successor)
            frontier.append(successor)
    return False
