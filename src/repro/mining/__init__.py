"""Log mining on top of parsed logs (§III of the paper).

The primary reproduction target is Xu et al.'s PCA anomaly detection
(:mod:`repro.mining.anomaly`), the paper's RQ3 case study.  The package
also implements the two other mining tasks §III surveys — deployment
verification by event-sequence comparison (Shang et al.) and
Synoptic-style system-model construction (Beschastnikh et al.) — plus
invariant mining (Lou et al.), all consuming the standard structured
log output of the parsers.
"""

from repro.mining.event_matrix import (
    EventCountMatrix,
    EventMatrixAccumulator,
    build_event_matrix,
)
from repro.mining.tfidf import tf_idf_transform
from repro.mining.pca import PcaAnomalyModel, q_statistic_threshold
from repro.mining.anomaly import AnomalyDetectionResult, detect_anomalies
from repro.mining.verification import (
    SequenceDelta,
    compare_deployments,
    event_sequences,
)
from repro.mining.model import SystemModel, build_system_model
from repro.mining.synoptic import (
    TemporalInvariant,
    check_invariant,
    mine_temporal_invariants,
    refine_model,
)
from repro.mining.invariants import (
    Invariant,
    mine_invariants,
    violating_sessions,
)

__all__ = [
    "EventCountMatrix",
    "EventMatrixAccumulator",
    "build_event_matrix",
    "tf_idf_transform",
    "PcaAnomalyModel",
    "q_statistic_threshold",
    "AnomalyDetectionResult",
    "detect_anomalies",
    "SequenceDelta",
    "compare_deployments",
    "event_sequences",
    "SystemModel",
    "build_system_model",
    "TemporalInvariant",
    "check_invariant",
    "mine_temporal_invariants",
    "refine_model",
    "Invariant",
    "mine_invariants",
    "violating_sessions",
]
