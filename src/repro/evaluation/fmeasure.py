"""Pairwise F-measure — the paper's parsing accuracy metric (§IV-A).

A log parse is a clustering of the input lines; the paper scores it
against the manually-established ground truth with the F-measure as
defined for clustering evaluation (Manning et al., *Introduction to
Information Retrieval*):

* a **true positive** is a pair of lines that share a cluster in both
  the parse and the ground truth;
* precision = TP / (pairs clustered together by the parser);
* recall = TP / (pairs clustered together in the ground truth);
* F-measure = 2·P·R / (P + R).

Counting uses the contingency table between the two labelings, so the
cost is O(n + c) rather than O(n²) pair enumeration.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from collections.abc import Sequence

from repro.common.errors import EvaluationError


def _pairs(count: int) -> int:
    """Number of unordered pairs among *count* items."""
    return count * (count - 1) // 2


@dataclass(frozen=True)
class ClusterAgreement:
    """Pairwise agreement counts between a parse and the ground truth."""

    true_positives: int
    predicted_pairs: int
    truth_pairs: int

    @property
    def precision(self) -> float:
        """TP / predicted pairs; vacuously 1 when nothing was paired.

        A parse that clusters no pairs makes no false claims, so its
        precision is perfect (and its recall carries the penalty).
        """
        if self.predicted_pairs == 0:
            return 1.0
        return self.true_positives / self.predicted_pairs

    @property
    def recall(self) -> float:
        """TP / truth pairs; vacuously 1 when the truth has no pairs."""
        if self.truth_pairs == 0:
            return 1.0
        return self.true_positives / self.truth_pairs

    @property
    def f_measure(self) -> float:
        precision, recall = self.precision, self.recall
        if precision + recall == 0:
            return 0.0
        return 2 * precision * recall / (precision + recall)


def pairwise_agreement(
    predicted: Sequence[str], truth: Sequence[str]
) -> ClusterAgreement:
    """Contingency-table pairwise agreement between two labelings.

    Labels are opaque; only co-membership matters.  The two label
    sequences must be aligned (same line order) and equally long.
    """
    if len(predicted) != len(truth):
        raise EvaluationError(
            f"labelings differ in length: {len(predicted)} vs {len(truth)}"
        )
    joint: Counter[tuple[str, str]] = Counter(zip(predicted, truth))
    predicted_sizes: Counter[str] = Counter(predicted)
    truth_sizes: Counter[str] = Counter(truth)
    return ClusterAgreement(
        true_positives=sum(_pairs(c) for c in joint.values()),
        predicted_pairs=sum(_pairs(c) for c in predicted_sizes.values()),
        truth_pairs=sum(_pairs(c) for c in truth_sizes.values()),
    )


def f_measure(predicted: Sequence[str], truth: Sequence[str]) -> float:
    """Pairwise F-measure of a parse against the ground truth.

    >>> f_measure(["a", "a", "b"], ["x", "x", "y"])
    1.0
    """
    return pairwise_agreement(predicted, truth).f_measure


def singletonize_outliers(
    assignments: Sequence[str], outlier_id: str = "OUTLIER"
) -> list[str]:
    """Give every outlier line its own cluster label.

    SLCT deliberately leaves sub-support lines *unclustered* (its
    outliers file); scoring them as one giant shared cluster would
    charge the parser for a clustering decision it never made, and the
    paper's SLCT F-measures are only consistent with the unclustered
    reading.  Mining, in contrast, keeps the single OUTLIER column —
    an operational pipeline buckets unparsed lines as one "unknown"
    event type (see :mod:`repro.mining.event_matrix`).
    """
    return [
        f"{outlier_id}#{index}" if label == outlier_id else label
        for index, label in enumerate(assignments)
    ]
