"""ASCII plots for the paper's figures.

The benchmark harness prints tables; for Figs. 2 and 3 a picture is
genuinely clearer, so this module renders terminal scatter/line plots —
log-log for running time (Fig. 2's scale) and linear-y for accuracy
(Fig. 3).  Pure text, no plotting dependency.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence

from repro.common.errors import EvaluationError

#: Marker characters assigned to series in order.
MARKERS = "ox+*#@%&"


def _log_positions(values: Sequence[float], width: int) -> list[int]:
    low = math.log10(min(values))
    high = math.log10(max(values))
    span = high - low or 1.0
    return [
        round((math.log10(value) - low) / span * (width - 1))
        for value in values
    ]


def _linear_positions(
    values: Sequence[float], low: float, high: float, height: int
) -> list[int]:
    span = high - low or 1.0
    return [
        round((value - low) / span * (height - 1)) for value in values
    ]


def ascii_plot(
    series: Mapping[str, Sequence[tuple[float, float]]],
    width: int = 60,
    height: int = 16,
    log_x: bool = True,
    log_y: bool = True,
    title: str = "",
) -> str:
    """Render named (x, y) series as a text plot with a legend.

    Points with non-positive coordinates are invalid on log scales and
    rejected; series may have different x grids.
    """
    points = [
        (name, x, y)
        for name, pairs in series.items()
        for x, y in pairs
    ]
    if not points:
        raise EvaluationError("nothing to plot")
    xs = [x for _n, x, _y in points]
    ys = [y for _n, _x, y in points]
    if log_x and min(xs) <= 0:
        raise EvaluationError("log-x plot requires positive x values")
    if log_y and min(ys) <= 0:
        raise EvaluationError("log-y plot requires positive y values")

    if log_x:
        columns = dict(zip(points, _log_positions(xs, width)))
    else:
        columns = dict(
            zip(points, _linear_positions(xs, min(xs), max(xs), width))
        )
    if log_y:
        rows = dict(zip(points, _log_positions(ys, height)))
    else:
        rows = dict(
            zip(points, _linear_positions(ys, min(ys), max(ys), height))
        )

    grid = [[" "] * width for _ in range(height)]
    marker_of = {
        name: MARKERS[index % len(MARKERS)]
        for index, name in enumerate(series)
    }
    for point in points:
        name, _x, _y = point
        row = height - 1 - rows[point]
        grid[row][columns[point]] = marker_of[name]

    y_label_top = f"{max(ys):.3g}"
    y_label_bottom = f"{min(ys):.3g}"
    gutter = max(len(y_label_top), len(y_label_bottom))
    lines = []
    if title:
        lines.append(title)
    for index, row in enumerate(grid):
        if index == 0:
            label = y_label_top.rjust(gutter)
        elif index == height - 1:
            label = y_label_bottom.rjust(gutter)
        else:
            label = " " * gutter
        lines.append(f"{label} |{''.join(row)}")
    lines.append(" " * gutter + " +" + "-" * width)
    x_left = f"{min(xs):.3g}"
    x_right = f"{max(xs):.3g}"
    padding = width - len(x_left) - len(x_right)
    lines.append(
        " " * gutter + "  " + x_left + " " * max(padding, 1) + x_right
    )
    legend = "  ".join(
        f"{marker_of[name]}={name}" for name in series
    )
    lines.append(legend)
    return "\n".join(lines)
