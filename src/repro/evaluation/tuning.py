"""Parameter tuning on a sample — the protocol behind Finding 4.

The paper: "A normal solution is to tune the parameters in a sample
dataset and directly apply them on large-scale data" — and Fig. 3 shows
how well (or badly) that transfers.  This module implements the tuning
half: a small grid-search harness that scores candidate parameter sets
on a sampled slice by F-measure and returns the winner, plus the
default grids used to produce :data:`repro.evaluation.accuracy.
TUNED_PARAMETERS`.

Grid search over parser runs is exactly the "time-consuming task"
Finding 4 complains about; :class:`TuningReport` therefore records the
total wall-clock and per-candidate timings so the cost is visible.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from collections.abc import Mapping, Sequence

from repro.common.errors import EvaluationError
from repro.common.types import LogRecord
from repro.datasets import generate_dataset, get_dataset_spec, sample_records
from repro.evaluation.fmeasure import f_measure, singletonize_outliers
from repro.parsers import make_parser

#: Default search grids per parser (values bracketing the tuned ones).
DEFAULT_GRIDS: dict[str, dict[str, list]] = {
    "SLCT": {"support": [0.002, 0.005, 0.01, 0.02, 0.03]},
    "IPLoM": {"ct": [0.25, 0.35, 0.5], "lower_bound": [0.1, 0.25]},
    "LKE": {"split_threshold": [4, 6, 10, 20]},
    "LogSig": {"groups": [8, 29, 80, 105, 376]},
    "Drain": {"sim_threshold": [0.3, 0.4, 0.5, 0.6], "depth": [4, 5]},
}


@dataclass(frozen=True)
class TuningCandidate:
    """One evaluated parameter set."""

    params: Mapping[str, object]
    f_measure: float
    seconds: float


@dataclass
class TuningReport:
    """Grid-search outcome: winner plus the full trace."""

    parser: str
    dataset: str
    sample_size: int
    candidates: list[TuningCandidate] = field(default_factory=list)

    @property
    def best(self) -> TuningCandidate:
        if not self.candidates:
            raise EvaluationError("tuning evaluated no candidates")
        return max(self.candidates, key=lambda c: c.f_measure)

    @property
    def total_seconds(self) -> float:
        return sum(candidate.seconds for candidate in self.candidates)


def expand_grid(grid: Mapping[str, Sequence]) -> list[dict]:
    """Cartesian product of a param-name → values mapping.

    >>> expand_grid({"a": [1, 2], "b": ["x"]})
    [{'a': 1, 'b': 'x'}, {'a': 2, 'b': 'x'}]
    """
    if not grid:
        return [{}]
    names = list(grid)
    combos = itertools.product(*(grid[name] for name in names))
    return [dict(zip(names, values)) for values in combos]


def tune_on_sample(
    parser_name: str,
    records: Sequence[LogRecord],
    truth: Sequence[str],
    grid: Mapping[str, Sequence] | None = None,
    seed: int | None = None,
) -> TuningReport:
    """Grid-search *parser_name* on labeled *records*.

    Each candidate parameter set is scored by pairwise F-measure (with
    singleton outliers, the package's standard scoring).  Randomized
    parsers receive the given *seed* so the search is reproducible.
    """
    if len(records) != len(truth):
        raise EvaluationError(
            f"records ({len(records)}) and truth ({len(truth)}) must align"
        )
    if not records:
        raise EvaluationError("cannot tune on an empty sample")
    if grid is None:
        if parser_name not in DEFAULT_GRIDS:
            raise EvaluationError(
                f"no default grid for parser {parser_name!r}; pass one"
            )
        grid = DEFAULT_GRIDS[parser_name]

    report = TuningReport(
        parser=parser_name,
        dataset="",
        sample_size=len(records),
    )
    for params in expand_grid(grid):
        call_params = dict(params)
        if parser_name in {"LKE", "LogSig"}:
            call_params["seed"] = seed
        parser = make_parser(parser_name, **call_params)
        started = time.perf_counter()
        parsed = parser.parse(records)
        elapsed = time.perf_counter() - started
        score = f_measure(
            singletonize_outliers(parsed.assignments), truth
        )
        report.candidates.append(
            TuningCandidate(
                params=params, f_measure=score, seconds=elapsed
            )
        )
    return report


def tune_on_dataset(
    parser_name: str,
    dataset_name: str,
    sample_size: int = 2000,
    grid: Mapping[str, Sequence] | None = None,
    seed: int | None = None,
) -> TuningReport:
    """The paper's protocol: sample 2k lines of a dataset and tune there."""
    spec = get_dataset_spec(dataset_name)
    generated = generate_dataset(
        spec, max(3 * sample_size, 4000), seed=seed
    )
    sampled = sample_records(generated.records, sample_size, seed=seed)
    truth = [record.truth_event or "" for record in sampled]
    report = tune_on_sample(
        parser_name, sampled, truth, grid=grid, seed=seed
    )
    report.dataset = spec.name
    return report
