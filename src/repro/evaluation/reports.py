"""ASCII renderers mirroring the paper's tables and figures.

The benchmark harnesses print these so that a run's output can be read
directly against the paper: Table I (dataset summary), Table II
(accuracy raw/preprocessed), Table III (anomaly detection), and the
running-time / accuracy-vs-size series of Figs. 2 and 3.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.common.textutil import format_table
from repro.datasets.base import DatasetSpec
from repro.evaluation.accuracy import AccuracyResult
from repro.evaluation.efficiency import EfficiencyPoint
from repro.evaluation.mining_impact import MiningImpactRow


def render_table1(
    rows: Sequence[tuple[DatasetSpec, int, tuple[int, int], int]],
) -> str:
    """Table I: (spec, #logs, observed length range, #observed events)."""
    body = [
        (
            spec.name,
            spec.description,
            f"{n_logs:,}",
            f"{length_range[0]}~{length_range[1]}",
            n_events,
        )
        for spec, n_logs, length_range, n_events in rows
    ]
    return format_table(
        ["System", "Description", "#Logs", "Length", "#Events"], body
    )


def render_table2(
    results: Mapping[tuple[str, str], tuple[AccuracyResult, AccuracyResult | None]],
    parsers: Sequence[str],
    datasets: Sequence[str],
) -> str:
    """Table II: F-measure raw/preprocessed per parser and dataset.

    *results* maps (parser, dataset) to (raw, preprocessed-or-None);
    missing preprocessed runs render as '-', like Proxifier's column.
    """
    body = []
    for parser in parsers:
        row: list[object] = [parser]
        for dataset in datasets:
            raw, preprocessed = results[(parser, dataset)]
            preprocessed_text = (
                f"{preprocessed.mean_f_measure:.2f}"
                if preprocessed is not None
                else "-"
            )
            row.append(f"{raw.mean_f_measure:.2f}/{preprocessed_text}")
        body.append(row)
    return format_table(["Parser", *datasets], body)


def render_table3(rows: Sequence[MiningImpactRow]) -> str:
    """Table III: anomaly detection quality per parser."""
    body = [
        (
            row.parser,
            f"{row.parsing_accuracy:.2f}",
            f"{row.reported:,}",
            f"{row.detected:,} ({row.detection_rate:.0%})",
            f"{row.false_alarms:,} ({row.false_alarm_rate:.1%})",
        )
        for row in rows
    ]
    return format_table(
        [
            "Parsing",
            "Accuracy",
            "Reported Anomaly",
            "Detected Anomaly",
            "False Alarm",
        ],
        body,
    )


def render_series(
    title: str,
    points: Sequence[EfficiencyPoint] | Sequence[tuple[int, float]],
) -> str:
    """One Fig. 2/3 series as '<size>: <value>' lines under a title."""
    lines = [title]
    for point in points:
        if isinstance(point, EfficiencyPoint):
            value = (
                "skipped (over time budget)"
                if point.skipped
                else f"{point.seconds:.3f}s"
            )
            lines.append(f"  {point.size:>10,}: {value}")
        else:
            size, value = point
            lines.append(f"  {size:>10,}: {value:.3f}")
    return "\n".join(lines)
