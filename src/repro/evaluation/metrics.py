"""Alternative clustering-agreement metrics.

Finding 6 ends with the observation that the F-measure, "despite
pervasively used in clustering algorithm evaluation, may not be
suitable to evaluate the effectiveness of log parsing methods on log
mining" — two parses with near-identical F-measures can differ by an
order of magnitude downstream.  This module provides the standard
alternatives so that studies built on this package can report more than
one view of parsing accuracy:

* :func:`rand_index` — fraction of line pairs on which the two
  clusterings agree (both together or both apart);
* :func:`purity` — fraction of lines whose cluster's majority truth
  event matches their own;
* :func:`cluster_count_ratio` — predicted/true event-type counts, a
  cheap fragmentation/merging indicator;
* :func:`per_event_recall` — recall restricted to one truth event,
  the right tool for quantifying damage to *critical* events.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence

from repro.common.errors import EvaluationError
from repro.evaluation.fmeasure import pairwise_agreement


def _check_aligned(predicted: Sequence[str], truth: Sequence[str]) -> None:
    if len(predicted) != len(truth):
        raise EvaluationError(
            f"labelings differ in length: {len(predicted)} vs {len(truth)}"
        )


def rand_index(predicted: Sequence[str], truth: Sequence[str]) -> float:
    """Rand index: pairwise agreement including true negatives.

    Unlike the F-measure it rewards keeping different events apart, so
    it is less forgiving of wholesale merging.  Returns 1.0 for
    fewer than two lines (no pairs to disagree on).
    """
    _check_aligned(predicted, truth)
    n = len(predicted)
    total_pairs = n * (n - 1) // 2
    if total_pairs == 0:
        return 1.0
    agreement = pairwise_agreement(predicted, truth)
    true_positives = agreement.true_positives
    false_positives = agreement.predicted_pairs - true_positives
    false_negatives = agreement.truth_pairs - true_positives
    true_negatives = (
        total_pairs - true_positives - false_positives - false_negatives
    )
    return (true_positives + true_negatives) / total_pairs


def purity(predicted: Sequence[str], truth: Sequence[str]) -> float:
    """Purity: each predicted cluster votes its majority truth event.

    High purity with many clusters signals fragmentation; purity is
    insensitive to splitting, which makes it a useful complement to
    recall-oriented metrics.
    """
    _check_aligned(predicted, truth)
    if not predicted:
        return 1.0
    clusters: dict[str, Counter] = {}
    for predicted_label, truth_label in zip(predicted, truth):
        clusters.setdefault(predicted_label, Counter())[truth_label] += 1
    majority_total = sum(
        votes.most_common(1)[0][1] for votes in clusters.values()
    )
    return majority_total / len(predicted)


def cluster_count_ratio(
    predicted: Sequence[str], truth: Sequence[str]
) -> float:
    """Predicted-to-true event-type count ratio.

    1.0 means the parse found exactly as many event types as the ground
    truth; >1 indicates fragmentation, <1 merging.
    """
    _check_aligned(predicted, truth)
    if not predicted:
        raise EvaluationError("cannot compute a ratio on empty labelings")
    return len(set(predicted)) / len(set(truth))


def per_event_recall(
    predicted: Sequence[str],
    truth: Sequence[str],
    event: str,
) -> float:
    """Pair recall restricted to one truth event.

    The fraction of same-event pairs *of that event* the parse kept
    together — the direct measurement of Finding 6's "errors on
    critical events".  Returns 1.0 when the event has fewer than two
    lines (no pairs to lose).
    """
    _check_aligned(predicted, truth)
    lines = [i for i, label in enumerate(truth) if label == event]
    if not lines:
        raise EvaluationError(f"event {event!r} does not occur in truth")
    total_pairs = len(lines) * (len(lines) - 1) // 2
    if total_pairs == 0:
        return 1.0
    sizes = Counter(predicted[i] for i in lines)
    kept = sum(count * (count - 1) // 2 for count in sizes.values())
    return kept / total_pairs


def summary(predicted: Sequence[str], truth: Sequence[str]) -> dict:
    """All scalar metrics in one dictionary (for reports and tests)."""
    agreement = pairwise_agreement(predicted, truth)
    return {
        "f_measure": agreement.f_measure,
        "precision": agreement.precision,
        "recall": agreement.recall,
        "rand_index": rand_index(predicted, truth),
        "purity": purity(predicted, truth),
        "cluster_count_ratio": cluster_count_ratio(predicted, truth),
    }
