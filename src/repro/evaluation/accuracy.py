"""RQ1 harness: parsing accuracy on 2k samples (Table II, Fig. 3).

Following §IV-B, each parser runs on a random 2k-message sample of each
dataset (LKE and LogSig cannot parse the full datasets in reasonable
time); the randomized parsers (LKE, LogSig) are averaged over several
runs.  Parameters are tuned per dataset — :data:`TUNED_PARAMETERS`
plays the role of the paper's "parameters are re-tuned to provide good
Parsing Accuracy" step, and Fig. 3 reuses exactly these 2k-tuned values
at other sizes to expose parameter-transfer fragility (Finding 4).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field

from repro.common.errors import EvaluationError
from repro.datasets import generate_dataset, get_dataset_spec, sample_records
from repro.evaluation.fmeasure import f_measure, singletonize_outliers
from repro.parsers import LogParser, default_preprocessor, make_parser

#: Per-(parser, dataset) parameters tuned on the 2k samples, mirroring
#: the paper's methodology.  LogSig's ``groups`` is set to the dataset's
#: true event count (the paper tunes "the number of clusters of LogSig
#: [which] decides the number of events").
TUNED_PARAMETERS: dict[tuple[str, str], dict] = {
    ("SLCT", "BGL"): {"support": 0.005},
    ("SLCT", "HPC"): {"support": 0.015},
    ("SLCT", "HDFS"): {"support": 0.03},
    ("SLCT", "Zookeeper"): {"support": 0.005},
    ("SLCT", "Proxifier"): {"support": 0.01},
    ("IPLoM", "BGL"): {},
    ("IPLoM", "HPC"): {},
    ("IPLoM", "HDFS"): {},
    ("IPLoM", "Zookeeper"): {},
    ("IPLoM", "Proxifier"): {},
    ("LKE", "BGL"): {"split_threshold": 10},
    ("LKE", "HPC"): {"split_threshold": 6},
    ("LKE", "HDFS"): {"split_threshold": 20},
    ("LKE", "Zookeeper"): {"split_threshold": 20},
    ("LKE", "Proxifier"): {"split_threshold": 8},
    ("LogSig", "BGL"): {"groups": 376},
    ("LogSig", "HPC"): {"groups": 105},
    ("LogSig", "HDFS"): {"groups": 29},
    ("LogSig", "Zookeeper"): {"groups": 80},
    ("LogSig", "Proxifier"): {"groups": 8},
    ("Drain", "BGL"): {"sim_threshold": 0.5},
    ("Drain", "HPC"): {"sim_threshold": 0.5},
    ("Drain", "HDFS"): {"sim_threshold": 0.5},
    ("Drain", "Zookeeper"): {"sim_threshold": 0.5},
    ("Drain", "Proxifier"): {"sim_threshold": 0.6, "depth": 5},
}

#: Parsers whose clustering is randomized and therefore averaged over
#: several runs in the paper.
RANDOMIZED_PARSERS = {"LKE", "LogSig"}


def tuned_parser_factory(
    parser_name: str,
    dataset_name: str,
    preprocess: bool = False,
    seed: int | None = None,
) -> LogParser:
    """Build *parser_name* with the 2k-tuned parameters for *dataset_name*.

    ``preprocess=True`` attaches the paper's domain-knowledge rules for
    the dataset (Finding 2); for Proxifier there are none, matching the
    '-' cells of Table II.
    """
    key = (parser_name, get_dataset_spec(dataset_name).name)
    if key not in TUNED_PARAMETERS:
        raise EvaluationError(
            f"no tuned parameters for parser {parser_name!r} on dataset "
            f"{dataset_name!r}"
        )
    params = dict(TUNED_PARAMETERS[key])
    if parser_name in RANDOMIZED_PARSERS:
        params["seed"] = seed
    preprocessor = (
        default_preprocessor(dataset_name) if preprocess else None
    )
    return make_parser(parser_name, preprocessor=preprocessor, **params)


@dataclass
class AccuracyResult:
    """Accuracy of one parser on one dataset (averaged over runs)."""

    parser: str
    dataset: str
    preprocessed: bool
    sample_size: int
    runs: list[float] = field(default_factory=list)

    @property
    def mean_f_measure(self) -> float:
        return statistics.fmean(self.runs)

    @property
    def stdev_f_measure(self) -> float:
        if len(self.runs) < 2:
            return 0.0
        return statistics.stdev(self.runs)


def evaluate_accuracy(
    parser_name: str,
    dataset_name: str,
    sample_size: int = 2000,
    preprocess: bool = False,
    runs: int | None = None,
    seed: int | None = None,
    dataset_size: int | None = None,
) -> AccuracyResult:
    """F-measure of one parser on a sampled slice of one dataset.

    The dataset is generated at ``dataset_size`` (default: large enough
    to sample from), then ``sample_size`` messages are sampled as in the
    paper.  Randomized parsers default to 10 runs with distinct seeds
    (§IV-A); deterministic ones to a single run.
    """
    spec = get_dataset_spec(dataset_name)
    if runs is None:
        runs = 10 if parser_name in RANDOMIZED_PARSERS else 1
    if runs < 1:
        raise EvaluationError(f"runs must be >= 1, got {runs}")
    generated = generate_dataset(
        spec,
        dataset_size if dataset_size is not None else max(sample_size * 3, 4000),
        seed=seed,
    )
    sampled = sample_records(generated.records, sample_size, seed=seed)
    truth = [record.truth_event or "" for record in sampled]

    result = AccuracyResult(
        parser=parser_name,
        dataset=spec.name,
        preprocessed=preprocess,
        sample_size=len(sampled),
    )
    for run in range(runs):
        parser = tuned_parser_factory(
            parser_name,
            dataset_name,
            preprocess=preprocess,
            seed=(seed or 0) * 1000 + run,
        )
        parsed = parser.parse(sampled)
        result.runs.append(
            f_measure(singletonize_outliers(parsed.assignments), truth)
        )
    return result
