"""RQ2 harness: running time vs. log volume (Fig. 2) with timeouts.

The paper varies the number of raw log messages per dataset (e.g. BGL
from 400 to 4M lines) and plots each parser's wall-clock running time
on a log-log scale.  LKE points beyond its feasible range are simply
absent from Fig. 2 ("LKE could not parse some scales in a reasonable
time"); :func:`measure_runtime` reproduces that with a soft time budget:
when a measurement exceeds it, larger sizes for the same parser are
reported as skipped rather than run for hours.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from collections.abc import Callable, Sequence

from repro.common.errors import EvaluationError
from repro.common.types import LogRecord
from repro.datasets import generate_dataset, get_dataset_spec
from repro.parsers import LogParser


@dataclass(frozen=True)
class EfficiencyPoint:
    """One point of a Fig. 2 running-time series."""

    parser: str
    dataset: str
    size: int
    seconds: float | None  # None = skipped (over the time budget)

    @property
    def skipped(self) -> bool:
        return self.seconds is None


def measure_runtime(
    parser_factory: Callable[[], LogParser],
    dataset_name: str,
    sizes: Sequence[int],
    seed: int | None = None,
    time_budget: float | None = None,
) -> list[EfficiencyPoint]:
    """Measure one parser's running time at each size of one dataset.

    Sizes must be increasing.  After the first measurement exceeding
    *time_budget* seconds, all larger sizes are reported as skipped —
    mirroring the missing LKE points of Fig. 2.
    """
    if list(sizes) != sorted(sizes):
        raise EvaluationError("sizes must be increasing")
    spec = get_dataset_spec(dataset_name)
    largest = generate_dataset(spec, max(sizes), seed=seed)
    points: list[EfficiencyPoint] = []
    over_budget = False
    parser_name = parser_factory().name
    for size in sizes:
        if over_budget:
            points.append(
                EfficiencyPoint(parser_name, spec.name, size, None)
            )
            continue
        records: list[LogRecord] = largest.records[:size]
        parser = parser_factory()
        started = time.perf_counter()
        parser.parse(records)
        elapsed = time.perf_counter() - started
        points.append(
            EfficiencyPoint(parser_name, spec.name, size, elapsed)
        )
        if time_budget is not None and elapsed > time_budget:
            over_budget = True
    return points
