"""Label-free parser evaluation: cluster cohesion and separation.

The paper's accuracy harness (RQ1) needs labeled ground truth, which
production traffic never has.  Following "A Story About Cohesion and
Separation" (PAPERS.md), a parse can instead be scored *intrinsically*
from its own clustering structure:

* **Cohesion** — how alike the raw messages inside each cluster are.
  For every cluster we average the pairwise token similarity of its
  member lines (positional agreement for equal-length lines, length-
  normalized longest-common-subsequence otherwise).  A parser that
  lumps unrelated events into one template scores low here.
* **Separation** — how distinct the reported templates are from one
  another.  For every template we find its nearest neighbour among the
  other templates (wildcards treated as matching anything, since two
  templates whose constants agree describe overlapping event shapes)
  and take one minus that similarity.  A parser that shatters one
  event into many near-duplicate templates scores low here.

Both are size-weighted means over clusters, land in [0, 1], and depend
only on cluster *contents* — relabeling clusters or renumbering events
cannot change either score.  The combined :attr:`LabelFreeScore.score`
is their harmonic mean, mirroring the F-measure idiom of RQ1: a parser
must group like with like *and* keep unlike apart to score well.

Outlier lines are singletonized (each its own perfectly-cohesive,
template-less cluster), matching how
:func:`~repro.evaluation.fmeasure.singletonize_outliers` treats them in
the labeled metric, so support-based parsers are not punished twice
for refusing rare lines.

Pairwise cohesion is quadratic per cluster, so clusters larger than
``max_pairs`` comparisons are pair-sampled with a
:func:`~repro.common.rng.spawn`-derived generator — deterministic for
a fixed seed, independent across clusters.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.common.errors import EvaluationError
from repro.common.rng import spawn
from repro.common.tokenize import is_wildcard, tokenize
from repro.common.types import ParseResult

#: Per-cluster cap on sampled similarity pairs before sampling kicks in.
DEFAULT_MAX_PAIRS = 200


def _lcs_length(a: Sequence[str], b: Sequence[str]) -> int:
    """Longest common subsequence length (iterative, two rows)."""
    if len(a) < len(b):
        a, b = b, a
    previous = [0] * (len(b) + 1)
    for token_a in a:
        current = [0]
        for j, token_b in enumerate(b):
            if token_a == token_b:
                current.append(previous[j] + 1)
            else:
                current.append(max(previous[j + 1], current[j]))
        previous = current
    return previous[-1]


def message_similarity(a: Sequence[str], b: Sequence[str]) -> float:
    """Similarity of two raw token lists, in [0, 1].

    Equal-length lines compare positionally (the notion every parser in
    the registry clusters by); unequal-length lines fall back to LCS
    normalized by the longer length, so near-miss lengths degrade
    smoothly instead of scoring zero.
    """
    if not a and not b:
        return 1.0
    if not a or not b:
        return 0.0
    if len(a) == len(b):
        return sum(x == y for x, y in zip(a, b)) / len(a)
    return _lcs_length(a, b) / max(len(a), len(b))


def template_similarity(a: Sequence[str], b: Sequence[str]) -> float:
    """Similarity of two *templates*; a wildcard matches any token.

    Used for separation: two templates that disagree only where one
    has wildcards describe overlapping event shapes and should count
    as close.
    """
    if not a and not b:
        return 1.0
    if not a or not b:
        return 0.0
    if len(a) != len(b):
        return _lcs_length(a, b) / max(len(a), len(b))
    agree = sum(
        1
        for x, y in zip(a, b)
        if x == y or is_wildcard(x) or is_wildcard(y)
    )
    return agree / len(a)


def cluster_cohesion(
    members: Sequence[Sequence[str]],
    *,
    max_pairs: int = DEFAULT_MAX_PAIRS,
    seed: int | None = None,
    label: str = "",
) -> float:
    """Mean pairwise :func:`message_similarity` inside one cluster.

    Singleton (and empty) clusters are perfectly cohesive by
    definition.  When the cluster holds more than *max_pairs* distinct
    pairs, a deterministic sample of *max_pairs* pairs is scored
    instead.
    """
    n = len(members)
    if n < 2:
        return 1.0
    total_pairs = n * (n - 1) // 2
    if total_pairs <= max_pairs:
        pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    else:
        rng = spawn(seed, f"cohesion:{label}")
        seen: set[tuple[int, int]] = set()
        while len(seen) < max_pairs:
            i, j = rng.randrange(n), rng.randrange(n)
            if i == j:
                continue
            seen.add((min(i, j), max(i, j)))
        pairs = sorted(seen)
    return sum(
        message_similarity(members[i], members[j]) for i, j in pairs
    ) / len(pairs)


@dataclass(frozen=True)
class LabelFreeScore:
    """Intrinsic quality of one parse: cohesion, separation, combined."""

    parser: str
    dataset: str
    lines: int
    clusters: int
    cohesion: float
    separation: float

    @property
    def score(self) -> float:
        """Harmonic mean of cohesion and separation (F-measure idiom)."""
        if self.cohesion + self.separation == 0.0:
            return 0.0
        return (
            2.0
            * self.cohesion
            * self.separation
            / (self.cohesion + self.separation)
        )

    def describe(self) -> str:
        return (
            f"{self.parser} on {self.dataset}: cohesion "
            f"{self.cohesion:.3f}, separation {self.separation:.3f}, "
            f"score {self.score:.3f} "
            f"({self.clusters} clusters, {self.lines} lines)"
        )


def score_result(
    result: ParseResult,
    *,
    parser: str = "?",
    dataset: str = "?",
    max_pairs: int = DEFAULT_MAX_PAIRS,
    seed: int | None = None,
) -> LabelFreeScore:
    """Score a finished :class:`~repro.common.types.ParseResult`.

    Clusters come from the per-line event assignments; member lines
    are re-tokenized from the raw record contents so the metric sees
    what the operator saw, not the parser's preprocessed view.
    Outliers become singleton clusters without templates (cohesion
    1.0 each, no separation contribution).
    """
    if len(result.assignments) != len(result.records):
        raise EvaluationError(
            f"misaligned parse result: {len(result.assignments)} "
            f"assignments for {len(result.records)} records"
        )
    members: dict[str, list[list[str]]] = {}
    outliers = 0
    for record, event_id in zip(result.records, result.assignments):
        if event_id == ParseResult.OUTLIER_EVENT_ID:
            outliers += 1
            continue
        members.setdefault(event_id, []).append(tokenize(record.content))
    lines = len(result.records)
    clusters = len(members) + outliers
    if not lines or not clusters:
        return LabelFreeScore(
            parser=parser,
            dataset=dataset,
            lines=lines,
            clusters=clusters,
            cohesion=1.0,
            separation=1.0,
        )

    # Cohesion: size-weighted over clusters; each outlier is a
    # singleton contributing weight 1 at cohesion 1.0.
    weighted = float(outliers)
    for event_id in sorted(members):
        weighted += len(members[event_id]) * cluster_cohesion(
            members[event_id],
            max_pairs=max_pairs,
            seed=seed,
            label=event_id,
        )
    cohesion_score = weighted / lines

    # Separation: nearest-neighbour distance between the *occupied*
    # templates, size-weighted.  A single occupied template (or none)
    # is perfectly separated.
    templates = {
        event.event_id: tokenize(event.template)
        for event in result.events
        if event.event_id in members
    }
    occupied = sorted(templates)
    if len(occupied) < 2:
        separation_score = 1.0
    else:
        weighted = float(outliers)  # singletons: nothing to confuse
        for event_id in occupied:
            nearest = max(
                template_similarity(templates[event_id], templates[other])
                for other in occupied
                if other != event_id
            )
            weighted += len(members[event_id]) * (1.0 - nearest)
        separation_score = weighted / lines

    return LabelFreeScore(
        parser=parser,
        dataset=dataset,
        lines=lines,
        clusters=clusters,
        cohesion=cohesion_score,
        separation=separation_score,
    )


def evaluate_label_free(
    parser_name: str,
    dataset_name: str,
    sample_size: int = 2000,
    preprocess: bool = False,
    seed: int | None = None,
    max_pairs: int = DEFAULT_MAX_PAIRS,
) -> LabelFreeScore:
    """Cohesion/separation of one parser on a sampled synthetic dataset.

    Mirrors :func:`~repro.evaluation.accuracy.evaluate_accuracy`'s
    sampling setup but never reads the truth labels: the parse is
    scored purely from its own structure.  Parsers with tuned
    per-dataset parameters use them
    (:data:`~repro.evaluation.accuracy.TUNED_PARAMETERS`); parsers
    without an entry fall back to their defaults, so new backends are
    scoreable before they are tuned.
    """
    # Imported here to keep this module importable without dragging in
    # the dataset generators at interpreter start.
    from repro.datasets import generate_dataset, get_dataset_spec, sample_records
    from repro.evaluation.accuracy import (
        RANDOMIZED_PARSERS,
        TUNED_PARAMETERS,
        tuned_parser_factory,
    )
    from repro.parsers import default_preprocessor, make_parser

    spec = get_dataset_spec(dataset_name)
    generated = generate_dataset(spec, max(sample_size * 3, 4000), seed=seed)
    sampled = sample_records(generated.records, sample_size, seed=seed)
    if (parser_name, spec.name) in TUNED_PARAMETERS:
        parser = tuned_parser_factory(
            parser_name, dataset_name, preprocess=preprocess, seed=seed
        )
    else:
        params: dict = {}
        if parser_name in RANDOMIZED_PARSERS:
            params["seed"] = seed
        preprocessor = (
            default_preprocessor(dataset_name) if preprocess else None
        )
        parser = make_parser(parser_name, preprocessor=preprocessor, **params)
    result = parser.parse(sampled)
    return score_result(
        result,
        parser=parser.name,
        dataset=spec.name,
        max_pairs=max_pairs,
        seed=seed,
    )
