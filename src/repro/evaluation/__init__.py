"""Evaluation harnesses for the paper's three research questions.

* RQ1 accuracy — :mod:`repro.evaluation.fmeasure` (the metric) and
  :mod:`repro.evaluation.accuracy` (the Table II / Fig. 3 harness).
* RQ2 efficiency — :mod:`repro.evaluation.efficiency` (Fig. 2).
* RQ3 mining impact — :mod:`repro.evaluation.mining_impact` (Table III).
* Label-free scoring — :mod:`repro.evaluation.cohesion` (cohesion /
  separation, no ground truth required).
"""

from repro.evaluation.fmeasure import (
    ClusterAgreement,
    f_measure,
    pairwise_agreement,
)
from repro.evaluation.accuracy import (
    AccuracyResult,
    evaluate_accuracy,
    tuned_parser_factory,
    TUNED_PARAMETERS,
)
from repro.evaluation.cohesion import (
    LabelFreeScore,
    cluster_cohesion,
    evaluate_label_free,
    message_similarity,
    score_result,
    template_similarity,
)
from repro.evaluation.efficiency import EfficiencyPoint, measure_runtime
from repro.evaluation.mining_impact import (
    MiningImpactRow,
    evaluate_mining_impact,
    corrupt_assignments,
    table3_parser_factory,
    TABLE3_CONFIGS,
)
from repro.evaluation.metrics import (
    cluster_count_ratio,
    per_event_recall,
    purity,
    rand_index,
)
from repro.evaluation.reports import (
    render_table1,
    render_table2,
    render_table3,
    render_series,
)

__all__ = [
    "ClusterAgreement",
    "f_measure",
    "pairwise_agreement",
    "AccuracyResult",
    "evaluate_accuracy",
    "tuned_parser_factory",
    "TUNED_PARAMETERS",
    "LabelFreeScore",
    "cluster_cohesion",
    "evaluate_label_free",
    "message_similarity",
    "score_result",
    "template_similarity",
    "EfficiencyPoint",
    "measure_runtime",
    "MiningImpactRow",
    "evaluate_mining_impact",
    "corrupt_assignments",
    "table3_parser_factory",
    "TABLE3_CONFIGS",
    "cluster_count_ratio",
    "per_event_recall",
    "purity",
    "rand_index",
    "render_table1",
    "render_table2",
    "render_table3",
    "render_series",
]
