"""RQ3 harness: parser choice vs. anomaly-detection quality (Table III).

Runs the PCA anomaly-detection pipeline over an HDFS session dataset
once per parser and reports the paper's three columns — Reported
Anomaly, Detected Anomaly (true positives), False Alarm — next to each
parser's parsing accuracy, plus the Ground-truth row.

Also provides :func:`corrupt_assignments`, the controlled-error
injector behind the Finding 6 ablation: corrupting a small share of
*critical* (anomaly-signalling) events degrades mining by an order of
magnitude more than corrupting the same share of background events.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.common.errors import EvaluationError
from repro.common.rng import spawn
from repro.common.types import ParseResult
from repro.datasets.hdfs import HdfsSessionDataset
from repro.evaluation.fmeasure import f_measure, singletonize_outliers
from repro.mining.anomaly import detect_anomalies
from repro.parsers import LogParser, default_preprocessor, make_parser

#: Parser configurations re-tuned for the anomaly-detection experiment,
#: mirroring §IV-D: "The parameters of SLCT and LogSig are re-tuned to
#: provide good Parsing Accuracy."  IPLoM runs with the paper's
#: preprocessing (block ids + IPs), which its four-step process needs to
#: keep the ip-prefixed transfer events whole; LKE is excluded exactly
#: as in the paper (it cannot parse this volume in reasonable time).
TABLE3_CONFIGS: dict[str, dict] = {
    "SLCT": {"support": 0.0006},
    "LogSig": {"groups": 29},
    "IPLoM": {"preprocess": True},
    "Drain": {"sim_threshold": 0.5, "preprocess": True},
    "GroundTruth": {},
}


def table3_parser_factory(
    parser_name: str, seed: int | None = None
) -> LogParser:
    """Build a parser configured as in the Table III experiment."""
    if parser_name not in TABLE3_CONFIGS:
        raise EvaluationError(
            f"no Table III configuration for parser {parser_name!r}; "
            f"choose from {sorted(TABLE3_CONFIGS)}"
        )
    params = dict(TABLE3_CONFIGS[parser_name])
    preprocessor = (
        default_preprocessor("HDFS") if params.pop("preprocess", False) else None
    )
    if parser_name in {"LogSig", "LKE"}:
        params["seed"] = seed
    if parser_name == "GroundTruth":
        return make_parser(parser_name)
    return make_parser(parser_name, preprocessor=preprocessor, **params)


@dataclass(frozen=True)
class MiningImpactRow:
    """One Table III row: a parser's downstream detection quality."""

    parser: str
    parsing_accuracy: float
    reported: int
    detected: int
    false_alarms: int
    true_anomalies: int

    @property
    def detection_rate(self) -> float:
        if self.true_anomalies == 0:
            return 0.0
        return self.detected / self.true_anomalies

    @property
    def false_alarm_rate(self) -> float:
        """False alarms relative to reported anomalies (paper's %)."""
        if self.reported == 0:
            return 0.0
        return self.false_alarms / self.reported


def score_detection(
    flagged: frozenset[str],
    labels: dict[str, bool],
) -> tuple[int, int, int]:
    """(reported, detected, false alarms) of a flag set against labels."""
    unknown = flagged - labels.keys()
    if unknown:
        raise EvaluationError(
            f"flagged sessions missing from labels: {sorted(unknown)[:3]}"
        )
    reported = len(flagged)
    detected = sum(1 for session in flagged if labels[session])
    return reported, detected, reported - detected


def evaluate_mining_impact(
    parser: LogParser,
    dataset: HdfsSessionDataset,
    alpha: float = 0.001,
) -> MiningImpactRow:
    """Parse *dataset* with *parser* and score PCA anomaly detection."""
    parsed = parser.parse(dataset.records)
    return impact_from_parse(parser.name, parsed, dataset, alpha=alpha)


def impact_from_parse(
    parser_name: str,
    parsed: ParseResult,
    dataset: HdfsSessionDataset,
    alpha: float = 0.001,
) -> MiningImpactRow:
    """Score an existing parse result (used by the corruption ablation)."""
    truth = dataset.truth_assignments()
    accuracy = f_measure(singletonize_outliers(parsed.assignments), truth)
    detection = detect_anomalies(parsed, alpha=alpha)
    reported, detected, false_alarms = score_detection(
        detection.flagged_sessions, dataset.labels
    )
    return MiningImpactRow(
        parser=parser_name,
        parsing_accuracy=accuracy,
        reported=reported,
        detected=detected,
        false_alarms=false_alarms,
        true_anomalies=len(dataset.anomaly_blocks),
    )


def corrupt_assignments(
    parsed: ParseResult,
    error_rate: float,
    target_events: Sequence[str],
    seed: int | None = None,
    mode: str = "fragment",
) -> ParseResult:
    """Inject parse errors into lines of the given event types.

    A fraction *error_rate* of the lines currently assigned to any of
    *target_events* is reassigned as if the parser had mis-clustered
    them.  Two error shapes exist in real parsers and behave very
    differently downstream:

    * ``mode="fragment"`` — each corrupted line becomes its own bogus
      singleton event (what SLCT/IPLoM do when a frequent parameter
      value or a 1-1 mapping splits an event).  Fragmentation creates
      near-unique high-IDF matrix columns that PCA cannot absorb, so a
      small error rate on the right events wrecks mining (Finding 6).
    * ``mode="merge"`` — all corrupted lines share one bogus event
      (what outlier bucketing does).  Merging is a systematic error the
      PCA model largely adapts to.

    Everything else is untouched.
    """
    if not 0.0 <= error_rate <= 1.0:
        raise EvaluationError(
            f"error_rate must be in [0,1], got {error_rate}"
        )
    if mode not in {"fragment", "merge"}:
        raise EvaluationError(
            f"mode must be 'fragment' or 'merge', got {mode!r}"
        )
    targets = set(target_events)
    missing = targets - {event.event_id for event in parsed.events}
    if missing:
        raise EvaluationError(
            f"target events not in parse result: {sorted(missing)}"
        )
    rng = spawn(seed, f"corrupt:{error_rate}:{sorted(targets)}:{mode}")
    candidate_lines = [
        index
        for index, event_id in enumerate(parsed.assignments)
        if event_id in targets
    ]
    n_corrupt = round(error_rate * len(candidate_lines))
    corrupted_lines = set(
        rng.sample(candidate_lines, n_corrupt) if n_corrupt else []
    )
    assignments = []
    for index, event_id in enumerate(parsed.assignments):
        if index not in corrupted_lines:
            assignments.append(event_id)
        elif mode == "merge":
            assignments.append("E_PARSE_ERROR")
        else:
            assignments.append(f"E_PARSE_ERROR#{index}")
    return ParseResult(
        events=list(parsed.events),
        assignments=assignments,
        records=list(parsed.records),
    )
