"""LogSig — generating system events from raw textual logs (Tang et
al., CIKM 2011).

LogSig searches for ``k`` message signatures by local search over word
pairs:

1. **Word pair generation** — each message is converted to the set of
   ordered word pairs ``(w_i, w_j), i < j``, encoding both the words and
   their relative positions.
2. **Log clustering** — messages start in random groups; each round
   every message moves to the group where its word pairs have the
   highest *potential* (pairs that are already frequent in a group pull
   matching messages in).  The search stops when a round moves no
   message (or after ``max_iterations``).
3. **Log template generation** — within each group, positions whose
   modal token covers at least ``template_threshold`` of the members
   keep that token; other positions are masked.

The number of groups ``k`` is the parameter the paper's Finding 4 is
about: it must be chosen per dataset, and values tuned on a 2k sample
transfer poorly to larger slices on event-rich logs such as BGL.
"""

from __future__ import annotations

from collections import Counter, defaultdict

from repro.common.errors import ParserConfigurationError
from repro.common.tokenize import WILDCARD
from repro.parsers.base import Clustering, LogParser
from repro.common.rng import spawn


def word_pairs(tokens: tuple[str, ...]) -> frozenset[tuple[str, str]]:
    """The ordered word-pair encoding of one message.

    >>> sorted(word_pairs(("a", "b", "c")))
    [('a', 'b'), ('a', 'c'), ('b', 'c')]
    """
    return frozenset(
        (tokens[i], tokens[j])
        for i in range(len(tokens))
        for j in range(i + 1, len(tokens))
    )


class LogSig(LogParser):
    """LogSig with potential-based local search into *groups* clusters.

    Args:
        groups: the target number of message signatures ``k``.
        max_iterations: hard cap on local-search rounds.
        template_threshold: fraction of a group's members that must
            share a token at a position for it to stay in the template.
        seed: RNG seed for the random initial partition (the paper runs
            LogSig 10× and averages over this randomness).
        preprocessor: optional domain-knowledge preprocessing.
    """

    name = "LogSig"

    def __init__(
        self,
        groups: int,
        max_iterations: int = 100,
        template_threshold: float = 0.5,
        seed: int | None = None,
        preprocessor=None,
    ) -> None:
        super().__init__(preprocessor=preprocessor)
        if groups < 1:
            raise ParserConfigurationError(
                f"groups must be >= 1, got {groups}"
            )
        if max_iterations < 1:
            raise ParserConfigurationError(
                f"max_iterations must be >= 1, got {max_iterations}"
            )
        if not 0.0 < template_threshold <= 1.0:
            raise ParserConfigurationError(
                f"template_threshold must be in (0,1], got "
                f"{template_threshold}"
            )
        self.groups = groups
        self.max_iterations = max_iterations
        self.template_threshold = template_threshold
        self.seed = seed

    # ------------------------------------------------------------------

    def _cluster(self, token_lists: list[list[str]]) -> Clustering:
        if not token_lists:
            return Clustering(labels=[], templates=[])

        # Deduplicate identical messages: they share word pairs, so the
        # local search can move them as one unit (weighted by count).
        unique: dict[tuple[str, ...], int] = {}
        line_to_unique: list[int] = []
        for tokens in token_lists:
            key = tuple(tokens)
            if key not in unique:
                unique[key] = len(unique)
            line_to_unique.append(unique[key])
        messages = list(unique)
        multiplicity = Counter(line_to_unique)
        n = len(messages)
        k = min(self.groups, n)

        pairs = [word_pairs(message) for message in messages]

        rng = spawn(self.seed, f"logsig:{n}:{k}")
        assignment = [rng.randrange(k) for _ in range(n)]

        # Sparse per-pair, per-group counts (weighted by multiplicity).
        pair_counts: dict[tuple[str, str], dict[int, float]] = defaultdict(dict)
        group_sizes = [0.0] * k
        for index in range(n):
            weight = multiplicity[index]
            group = assignment[index]
            group_sizes[group] += weight
            for pair in pairs[index]:
                counts = pair_counts[pair]
                counts[group] = counts.get(group, 0.0) + weight

        order = list(range(n))
        for _ in range(self.max_iterations):
            rng.shuffle(order)
            moved = 0
            for index in order:
                current = assignment[index]
                best = self._best_group(pairs[index], pair_counts, group_sizes, k)
                if best != current:
                    self._move(
                        index,
                        current,
                        best,
                        multiplicity[index],
                        pairs,
                        pair_counts,
                        group_sizes,
                    )
                    assignment[index] = best
                    moved += 1
            if moved == 0:
                break

        # Compact non-empty groups into final cluster labels.
        used_groups = sorted({assignment[u] for u in range(n)})
        relabel = {group: label for label, group in enumerate(used_groups)}
        members_by_label: dict[int, list[int]] = defaultdict(list)
        for index in range(n):
            members_by_label[relabel[assignment[index]]].append(index)

        templates = [
            self._make_template(
                [messages[m] for m in members_by_label[label]],
                [multiplicity[m] for m in members_by_label[label]],
            )
            for label in range(len(used_groups))
        ]
        labels = [relabel[assignment[u]] for u in line_to_unique]
        return Clustering(labels=labels, templates=templates)

    # ------------------------------------------------------------------

    @staticmethod
    def _best_group(
        message_pairs: frozenset[tuple[str, str]],
        pair_counts: dict[tuple[str, str], dict[int, float]],
        group_sizes: list[float],
        k: int,
    ) -> int:
        """Group maximizing the potential of this message's word pairs.

        The per-group potential is Σ over the message's pairs of the
        squared relative frequency of the pair in the group — pairs that
        most of a group shares dominate, matching the >50%-of-members
        emphasis of the original potential function.
        """
        scores = [0.0] * k
        for pair in message_pairs:
            for group, count in pair_counts.get(pair, {}).items():
                size = group_sizes[group]
                if size > 0:
                    ratio = count / size
                    scores[group] += ratio * ratio
        best = 0
        best_score = scores[0]
        for group in range(1, k):
            if scores[group] > best_score:
                best = group
                best_score = scores[group]
        return best

    @staticmethod
    def _move(
        index: int,
        source: int,
        target: int,
        weight: float,
        pairs: list[frozenset[tuple[str, str]]],
        pair_counts: dict[tuple[str, str], dict[int, float]],
        group_sizes: list[float],
    ) -> None:
        group_sizes[source] -= weight
        group_sizes[target] += weight
        for pair in pairs[index]:
            counts = pair_counts[pair]
            remaining = counts.get(source, 0.0) - weight
            if remaining <= 0:
                counts.pop(source, None)
            else:
                counts[source] = remaining
            counts[target] = counts.get(target, 0.0) + weight

    # ------------------------------------------------------------------

    def _make_template(
        self, members: list[tuple[str, ...]], weights: list[int]
    ) -> list[str]:
        """Column-wise template over the group's modal message length."""
        length_votes: Counter[int] = Counter()
        for message, weight in zip(members, weights):
            length_votes[len(message)] += weight
        width = length_votes.most_common(1)[0][0]
        aligned = [
            (message, weight)
            for message, weight in zip(members, weights)
            if len(message) == width
        ]
        total = sum(weight for _m, weight in aligned)
        template = []
        for position in range(width):
            votes: Counter[str] = Counter()
            for message, weight in aligned:
                votes[message[position]] += weight
            token, count = votes.most_common(1)[0]
            if count / total >= self.template_threshold:
                template.append(token)
            else:
                template.append(WILDCARD)
        return template
