"""Chunked parallel parsing — the paper's §V "Distributed Log Parsing".

The paper's Finding 3 is that clustering-based parsers do not scale and
"parallelization is a promising direction".  This module implements the
simplest such design: split the input into chunks, parse each chunk
independently (in worker processes when ``workers > 1``), and merge
clusters whose templates coincide.

The merge is exact for parsers whose templates are deterministic
functions of a cluster's members (SLCT, IPLoM) and approximate for the
randomized clustering parsers — the trade-off the paper's discussion
anticipates.

Dispatch is **supervised**: a chunk whose worker raises, dies (broken
pool), or exceeds ``chunk_timeout`` is re-dispatched into a fresh pool
with exponential backoff, and after ``max_chunk_attempts`` worker
tries the chunk is parsed in-process as a last resort — so one bad
worker (or one poisoned chunk of input) degrades throughput instead of
killing the whole parse.  Every attempt is recorded in
:attr:`ChunkedParallelParser.last_recovery`; only when the in-process
fallback itself fails does
:class:`~repro.common.errors.WorkerCrashError` propagate.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass, field
from collections.abc import Callable, Sequence

from repro.common.errors import ParserConfigurationError, WorkerCrashError
from repro.common.types import EventTemplate, LogRecord, ParseResult
from repro.parsers.base import LogParser

#: A zero-argument callable building a fresh parser (must be picklable
#: for multi-process use: a module-level function or functools.partial
#: over picklable arguments).
ParserFactory = Callable[[], LogParser]

#: Chunk attempt status tags.
CHUNK_OK = "ok"
CHUNK_ERROR = "error"
CHUNK_TIMEOUT = "timeout"
CHUNK_FALLBACK = "fallback-ok"


def _parse_chunk(
    factory: ParserFactory,
    records: list[LogRecord],
    chunk_index: int = 0,
    attempt: int = 1,
    fault=None,
    in_process: bool = True,
) -> ParseResult:
    """Parse one chunk, firing any scheduled injected fault first.

    *fault* is anything with ``should_fire(chunk_index, attempt,
    in_process)`` / ``fire(chunk_index, attempt)`` — in practice a
    :class:`~repro.resilience.faults.ChunkFault` — and is consulted
    here, inside the (possibly worker-side) call, so crashes happen
    exactly where real ones would.
    """
    if fault is not None and fault.should_fire(chunk_index, attempt, in_process):
        fault.fire(chunk_index, attempt)
    return factory().parse(records)


@dataclass(frozen=True)
class ChunkAttempt:
    """One dispatch of one chunk."""

    chunk: int
    attempt: int
    status: str
    error: str | None = None

    def describe(self) -> str:
        tail = f": {self.error}" if self.error else ""
        return f"chunk {self.chunk} attempt {self.attempt}: {self.status}{tail}"


@dataclass
class ChunkRecoveryReport:
    """Every chunk attempt of one :meth:`ChunkedParallelParser.parse`."""

    attempts: list[ChunkAttempt] = field(default_factory=list)

    @property
    def failures(self) -> list[ChunkAttempt]:
        return [
            a
            for a in self.attempts
            if a.status in (CHUNK_ERROR, CHUNK_TIMEOUT)
        ]

    @property
    def redispatched_chunks(self) -> set[int]:
        """Chunks that needed more than one attempt."""
        return {a.chunk for a in self.attempts if a.attempt > 1}

    @property
    def fallback_chunks(self) -> set[int]:
        """Chunks rescued by the in-process fallback."""
        return {a.chunk for a in self.attempts if a.status == CHUNK_FALLBACK}

    def describe(self) -> str:
        if not self.failures:
            return "all chunks parsed on first dispatch"
        lines = [a.describe() for a in self.attempts]
        summary = (
            f"{len(self.failures)} failed attempts, "
            f"{len(self.redispatched_chunks)} chunks re-dispatched, "
            f"{len(self.fallback_chunks)} rescued in-process"
        )
        return "\n".join([*lines, summary])


class ChunkedParallelParser(LogParser):
    """Parse chunks independently and merge equal templates.

    Args:
        factory: builds the underlying parser for each chunk.
        chunk_size: lines per chunk (the final chunk may be smaller).
        workers: worker processes; 1 parses chunks sequentially
            in-process (useful for tests and for measuring the merge
            overhead in isolation).
        max_chunk_attempts: dispatches a chunk gets before the
            in-process fallback (each failed dispatch backs off
            exponentially).
        chunk_timeout: per-chunk wall-clock deadline in seconds; a
            chunk still running past it is treated as hung, its worker
            abandoned, and the chunk re-dispatched.  ``None`` waits
            forever (the historical behavior).
        fault: optional injected-fault schedule (see
            :class:`~repro.resilience.faults.ChunkFault`), consulted
            inside every chunk parse.
        backoff_base / backoff_max: the re-dispatch delay after the
            n-th failed wave is ``min(backoff_max, backoff_base *
            2**(n-1))`` seconds.
        sleep: injectable sleep for tests.
    """

    name = "Chunked"

    def __init__(
        self,
        factory: ParserFactory,
        chunk_size: int = 10_000,
        workers: int = 1,
        *,
        max_chunk_attempts: int = 3,
        chunk_timeout: float | None = None,
        fault=None,
        backoff_base: float = 0.05,
        backoff_max: float = 2.0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        super().__init__(preprocessor=None)
        if chunk_size < 1:
            raise ParserConfigurationError(
                f"chunk_size must be >= 1, got {chunk_size}"
            )
        if workers < 1:
            raise ParserConfigurationError(
                f"workers must be >= 1, got {workers}"
            )
        if max_chunk_attempts < 1:
            raise ParserConfigurationError(
                f"max_chunk_attempts must be >= 1, got {max_chunk_attempts}"
            )
        if chunk_timeout is not None and chunk_timeout <= 0:
            raise ParserConfigurationError(
                f"chunk_timeout must be > 0, got {chunk_timeout}"
            )
        self.factory = factory
        self.chunk_size = chunk_size
        self.workers = workers
        self.max_chunk_attempts = max_chunk_attempts
        self.chunk_timeout = chunk_timeout
        self.fault = fault
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self._sleep = sleep
        #: Recovery report of the most recent :meth:`parse` call.
        self.last_recovery: ChunkRecoveryReport | None = None

    def parse(self, records: Sequence[LogRecord]) -> ParseResult:
        records = list(records)
        chunks = [
            records[start : start + self.chunk_size]
            for start in range(0, len(records), self.chunk_size)
        ]
        report = ChunkRecoveryReport()
        self.last_recovery = report
        if not chunks:
            return ParseResult(events=[], assignments=[], records=[])
        results = self._dispatch(chunks, report)
        return self._merge(records, [results[i] for i in range(len(chunks))])

    # ------------------------------------------------------------------
    # Supervised dispatch
    # ------------------------------------------------------------------

    def _dispatch(
        self, chunks: list[list[LogRecord]], report: ChunkRecoveryReport
    ) -> dict[int, ParseResult]:
        """Parse every chunk, surviving worker crashes and hangs."""
        in_process = self.workers == 1 or len(chunks) == 1
        results: dict[int, ParseResult] = {}
        attempts = {index: 0 for index in range(len(chunks))}
        pending = set(attempts)
        wave = 0
        while pending:
            wave += 1
            ordered = sorted(pending)
            for index in ordered:
                attempts[index] += 1
            if in_process:
                failed = self._run_wave_in_process(
                    ordered, chunks, attempts, results, report
                )
            else:
                failed = self._run_wave_in_pool(
                    ordered, chunks, attempts, results, report
                )
            pending.difference_update(set(ordered) - set(failed))
            for index in failed:
                if attempts[index] >= self.max_chunk_attempts:
                    self._fallback(index, chunks, attempts, results, report)
                    pending.discard(index)
            if pending:
                self._sleep(
                    min(self.backoff_max, self.backoff_base * 2 ** (wave - 1))
                )
        return results

    def _run_wave_in_process(
        self, ordered, chunks, attempts, results, report
    ) -> list[int]:
        failed = []
        for index in ordered:
            try:
                results[index] = _parse_chunk(
                    self.factory,
                    chunks[index],
                    index,
                    attempts[index],
                    self.fault,
                    True,
                )
            except Exception as error:  # noqa: BLE001 - retried
                failed.append(index)
                report.attempts.append(
                    ChunkAttempt(
                        chunk=index,
                        attempt=attempts[index],
                        status=CHUNK_ERROR,
                        error=f"{type(error).__name__}: {error}",
                    )
                )
            else:
                report.attempts.append(
                    ChunkAttempt(
                        chunk=index, attempt=attempts[index], status=CHUNK_OK
                    )
                )
        return failed

    def _run_wave_in_pool(
        self, ordered, chunks, attempts, results, report
    ) -> list[int]:
        """One parallel dispatch wave; the pool is disposable.

        A fresh pool per wave means a wave poisoned by a dead or hung
        worker cannot leak into the next: on exit the pool is shut
        down without waiting, abandoning any still-running (hung)
        workers exactly like
        :func:`~repro.resilience.supervisor.run_with_deadline`
        abandons an overrunning thread.
        """
        failed = []
        pool = ProcessPoolExecutor(max_workers=self.workers)
        try:
            futures = {
                index: pool.submit(
                    _parse_chunk,
                    self.factory,
                    chunks[index],
                    index,
                    attempts[index],
                    self.fault,
                    False,
                )
                for index in ordered
            }
            for index in ordered:
                try:
                    results[index] = futures[index].result(
                        timeout=self.chunk_timeout
                    )
                except FuturesTimeoutError:
                    failed.append(index)
                    report.attempts.append(
                        ChunkAttempt(
                            chunk=index,
                            attempt=attempts[index],
                            status=CHUNK_TIMEOUT,
                            error=(
                                f"no result within {self.chunk_timeout}s; "
                                "worker abandoned"
                            ),
                        )
                    )
                except Exception as error:  # noqa: BLE001 - retried
                    failed.append(index)
                    report.attempts.append(
                        ChunkAttempt(
                            chunk=index,
                            attempt=attempts[index],
                            status=CHUNK_ERROR,
                            error=f"{type(error).__name__}: {error}",
                        )
                    )
                else:
                    report.attempts.append(
                        ChunkAttempt(
                            chunk=index,
                            attempt=attempts[index],
                            status=CHUNK_OK,
                        )
                    )
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        return failed

    def _fallback(self, index, chunks, attempts, results, report) -> None:
        """Last resort: parse the chunk in this process.

        Escapes a poisoned worker environment entirely; injected
        faults marked ``worker_only`` deliberately do not fire here.
        A failure at this point is a genuine parser bug on this input,
        surfaced as :class:`WorkerCrashError` with the full recovery
        report chained in.
        """
        attempts[index] += 1
        try:
            results[index] = _parse_chunk(
                self.factory,
                chunks[index],
                index,
                attempts[index],
                self.fault,
                True,
            )
        except Exception as error:  # noqa: BLE001 - rethrown
            report.attempts.append(
                ChunkAttempt(
                    chunk=index,
                    attempt=attempts[index],
                    status=CHUNK_ERROR,
                    error=f"{type(error).__name__}: {error}",
                )
            )
            raise WorkerCrashError(
                f"chunk {index} failed its in-process fallback after "
                f"{attempts[index]} attempts:\n{report.describe()}"
            ) from error
        report.attempts.append(
            ChunkAttempt(
                chunk=index, attempt=attempts[index], status=CHUNK_FALLBACK
            )
        )

    @staticmethod
    def _merge(
        records: list[LogRecord], results: list[ParseResult]
    ) -> ParseResult:
        """Merge chunk results; identical templates become one event."""
        template_to_id: dict[str, str] = {}
        events: list[EventTemplate] = []
        assignments: list[str] = []
        for result in results:
            local_map: dict[str, str] = {}
            for event in result.events:
                if event.template not in template_to_id:
                    merged_id = f"E{len(events) + 1}"
                    template_to_id[event.template] = merged_id
                    events.append(
                        EventTemplate(
                            event_id=merged_id, template=event.template
                        )
                    )
                local_map[event.event_id] = template_to_id[event.template]
            for event_id in result.assignments:
                assignments.append(
                    local_map.get(event_id, ParseResult.OUTLIER_EVENT_ID)
                )
        return ParseResult(
            events=events, assignments=assignments, records=records
        )

    def _cluster(self, token_lists):  # pragma: no cover - parse() overridden
        raise NotImplementedError(
            "ChunkedParallelParser overrides parse() directly"
        )
