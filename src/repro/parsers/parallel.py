"""Chunked parallel parsing — the paper's §V "Distributed Log Parsing".

The paper's Finding 3 is that clustering-based parsers do not scale and
"parallelization is a promising direction".  This module implements the
simplest such design: split the input into chunks, parse each chunk
independently (in worker processes when ``workers > 1``), and merge
clusters whose templates coincide.

The merge is exact for parsers whose templates are deterministic
functions of a cluster's members (SLCT, IPLoM) and approximate for the
randomized clustering parsers — the trade-off the paper's discussion
anticipates.

Dispatch is **supervised**: a chunk whose worker raises, dies (broken
pool), or exceeds ``chunk_timeout`` is re-dispatched into a fresh pool
with exponential backoff, and after ``max_chunk_attempts`` worker
tries the chunk is parsed in-process as a last resort — so one bad
worker (or one poisoned chunk of input) degrades throughput instead of
killing the whole parse.  Every attempt is recorded in
:attr:`ChunkedParallelParser.last_recovery`; only when the in-process
fallback itself fails does
:class:`~repro.common.errors.WorkerCrashError` propagate.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass, field
from collections.abc import Callable, Sequence

from repro.common.errors import ParserConfigurationError, WorkerCrashError
from repro.common.types import EventTemplate, LogRecord, ParseResult
from repro.observability.tracing import SPAN_PARSER_CALL, Tracer
from repro.parsers.base import LogParser

#: A zero-argument callable building a fresh parser (must be picklable
#: for multi-process use: a module-level function or functools.partial
#: over picklable arguments).
ParserFactory = Callable[[], LogParser]

#: Chunk attempt status tags.
CHUNK_OK = "ok"
CHUNK_ERROR = "error"
CHUNK_TIMEOUT = "timeout"
CHUNK_FALLBACK = "fallback-ok"


def _parse_chunk(
    factory: ParserFactory,
    records: list[LogRecord],
    chunk_index: int = 0,
    attempt: int = 1,
    fault=None,
    in_process: bool = True,
) -> ParseResult:
    """Parse one chunk, firing any scheduled injected fault first.

    *fault* is anything with ``should_fire(chunk_index, attempt,
    in_process)`` / ``fire(chunk_index, attempt)`` — in practice a
    :class:`~repro.resilience.faults.ChunkFault` — and is consulted
    here, inside the (possibly worker-side) call, so crashes happen
    exactly where real ones would.
    """
    if fault is not None and fault.should_fire(chunk_index, attempt, in_process):
        fault.fire(chunk_index, attempt)
    return factory().parse(records)


def _parse_chunk_traced(
    factory: ParserFactory,
    records: list[LogRecord],
    chunk_index: int,
    attempt: int,
    fault,
    in_process: bool,
    trace_context: dict,
) -> tuple[ParseResult, list[dict]]:
    """Worker-side traced chunk parse: spans cross the process boundary.

    The worker builds a throwaway tracer from the parent's serialized
    context (same trace id, parent span id, collision-free id prefix),
    times the actual ``parser_call`` where it runs, and ships the
    finished spans home as plain dicts alongside the result — the
    parent :meth:`~repro.observability.tracing.Tracer.adopt`\\ s them.
    Must stay module-level (picklable) like :func:`_parse_chunk`.
    """
    tracer = Tracer.from_worker_context(trace_context)
    parser = factory()
    span = tracer.start_root(
        SPAN_PARSER_CALL,
        parser=getattr(parser, "name", type(parser).__name__),
        chunk=chunk_index,
        attempt=attempt,
        records=len(records),
    )
    try:
        if fault is not None and fault.should_fire(
            chunk_index, attempt, in_process
        ):
            fault.fire(chunk_index, attempt)
        result = parser.parse(records)
    except BaseException as error:
        span.attrs["status"] = "error"
        span.attrs["error"] = type(error).__name__
        tracer.finish(span)
        raise
    tracer.finish(span)
    return result, tracer.serialize()


@dataclass(frozen=True)
class ChunkAttempt:
    """One dispatch of one chunk."""

    chunk: int
    attempt: int
    status: str
    error: str | None = None

    def describe(self) -> str:
        tail = f": {self.error}" if self.error else ""
        return f"chunk {self.chunk} attempt {self.attempt}: {self.status}{tail}"


@dataclass
class ChunkRecoveryReport:
    """Every chunk attempt of one :meth:`ChunkedParallelParser.parse`."""

    attempts: list[ChunkAttempt] = field(default_factory=list)

    @property
    def failures(self) -> list[ChunkAttempt]:
        return [
            a
            for a in self.attempts
            if a.status in (CHUNK_ERROR, CHUNK_TIMEOUT)
        ]

    @property
    def redispatched_chunks(self) -> set[int]:
        """Chunks that needed more than one attempt."""
        return {a.chunk for a in self.attempts if a.attempt > 1}

    @property
    def fallback_chunks(self) -> set[int]:
        """Chunks rescued by the in-process fallback."""
        return {a.chunk for a in self.attempts if a.status == CHUNK_FALLBACK}

    def describe(self) -> str:
        if not self.failures:
            return "all chunks parsed on first dispatch"
        lines = [a.describe() for a in self.attempts]
        summary = (
            f"{len(self.failures)} failed attempts, "
            f"{len(self.redispatched_chunks)} chunks re-dispatched, "
            f"{len(self.fallback_chunks)} rescued in-process"
        )
        return "\n".join([*lines, summary])


class ChunkedParallelParser(LogParser):
    """Parse chunks independently and merge equal templates.

    Args:
        factory: builds the underlying parser for each chunk.
        chunk_size: lines per chunk (the final chunk may be smaller).
        workers: worker processes; 1 parses chunks sequentially
            in-process (useful for tests and for measuring the merge
            overhead in isolation).
        max_chunk_attempts: dispatches a chunk gets before the
            in-process fallback (each failed dispatch backs off
            exponentially).
        chunk_timeout: per-chunk wall-clock deadline in seconds; a
            chunk still running past it is treated as hung, its worker
            abandoned, and the chunk re-dispatched.  ``None`` waits
            forever (the historical behavior).
        fault: optional injected-fault schedule (see
            :class:`~repro.resilience.faults.ChunkFault`), consulted
            inside every chunk parse.
        backoff_base / backoff_max: the re-dispatch delay after the
            n-th failed wave is ``min(backoff_max, backoff_base *
            2**(n-1))`` seconds.
        sleep: injectable sleep for tests.
        telemetry: optional
            :class:`~repro.observability.telemetry.Telemetry` handle.
            When set, every chunk dispatch is counted by outcome and
            every chunk parse gets a ``parser_call`` span — recorded
            worker-side and serialized back across the process
            boundary for pool dispatches, locally for in-process ones.
    """

    name = "Chunked"

    def __init__(
        self,
        factory: ParserFactory,
        chunk_size: int = 10_000,
        workers: int = 1,
        *,
        max_chunk_attempts: int = 3,
        chunk_timeout: float | None = None,
        fault=None,
        backoff_base: float = 0.05,
        backoff_max: float = 2.0,
        sleep: Callable[[float], None] = time.sleep,
        telemetry=None,
    ) -> None:
        super().__init__(preprocessor=None)
        if chunk_size < 1:
            raise ParserConfigurationError(
                f"chunk_size must be >= 1, got {chunk_size}"
            )
        if workers < 1:
            raise ParserConfigurationError(
                f"workers must be >= 1, got {workers}"
            )
        if max_chunk_attempts < 1:
            raise ParserConfigurationError(
                f"max_chunk_attempts must be >= 1, got {max_chunk_attempts}"
            )
        if chunk_timeout is not None and chunk_timeout <= 0:
            raise ParserConfigurationError(
                f"chunk_timeout must be > 0, got {chunk_timeout}"
            )
        self.factory = factory
        self.chunk_size = chunk_size
        self.workers = workers
        self.max_chunk_attempts = max_chunk_attempts
        self.chunk_timeout = chunk_timeout
        self.fault = fault
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self._sleep = sleep
        self.telemetry = telemetry
        #: Monotonic dispatch counter — worker tracer id prefixes are
        #: derived from it so span ids never collide across flushes.
        self._dispatches = 0
        #: Recovery report of the most recent :meth:`parse` call.
        self.last_recovery: ChunkRecoveryReport | None = None

    def _record_attempt(self, report: ChunkRecoveryReport, attempt: ChunkAttempt) -> None:
        """Append to the recovery report and count the outcome."""
        report.attempts.append(attempt)
        if self.telemetry is not None:
            self.telemetry.metrics.get(
                "repro_parallel_chunk_attempts_total"
            ).labels(status=attempt.status).inc()

    def parse(self, records: Sequence[LogRecord]) -> ParseResult:
        records = list(records)
        chunks = [
            records[start : start + self.chunk_size]
            for start in range(0, len(records), self.chunk_size)
        ]
        report = ChunkRecoveryReport()
        self.last_recovery = report
        if not chunks:
            return ParseResult(events=[], assignments=[], records=[])
        results = self._dispatch(chunks, report)
        return self._merge(records, [results[i] for i in range(len(chunks))])

    # ------------------------------------------------------------------
    # Supervised dispatch
    # ------------------------------------------------------------------

    def _dispatch(
        self, chunks: list[list[LogRecord]], report: ChunkRecoveryReport
    ) -> dict[int, ParseResult]:
        """Parse every chunk, surviving worker crashes and hangs."""
        in_process = self.workers == 1 or len(chunks) == 1
        results: dict[int, ParseResult] = {}
        attempts = {index: 0 for index in range(len(chunks))}
        pending = set(attempts)
        wave = 0
        while pending:
            wave += 1
            ordered = sorted(pending)
            for index in ordered:
                attempts[index] += 1
            if in_process:
                failed = self._run_wave_in_process(
                    ordered, chunks, attempts, results, report
                )
            else:
                failed = self._run_wave_in_pool(
                    ordered, chunks, attempts, results, report
                )
            pending.difference_update(set(ordered) - set(failed))
            for index in failed:
                if attempts[index] >= self.max_chunk_attempts:
                    self._fallback(index, chunks, attempts, results, report)
                    pending.discard(index)
            if pending:
                self._sleep(
                    min(self.backoff_max, self.backoff_base * 2 ** (wave - 1))
                )
        return results

    def _run_wave_in_process(
        self, ordered, chunks, attempts, results, report
    ) -> list[int]:
        failed = []
        for index in ordered:
            try:
                results[index] = self._parse_in_process(
                    chunks[index], index, attempts[index]
                )
            except Exception as error:  # noqa: BLE001 - retried
                failed.append(index)
                self._record_attempt(
                    report,
                    ChunkAttempt(
                        chunk=index,
                        attempt=attempts[index],
                        status=CHUNK_ERROR,
                        error=f"{type(error).__name__}: {error}",
                    ),
                )
            else:
                self._record_attempt(
                    report,
                    ChunkAttempt(
                        chunk=index, attempt=attempts[index], status=CHUNK_OK
                    ),
                )
        return failed

    def _parse_in_process(
        self, chunk: list[LogRecord], index: int, attempt: int
    ) -> ParseResult:
        """One in-process chunk parse, with a local span when traced."""
        if self.telemetry is None:
            return _parse_chunk(
                self.factory, chunk, index, attempt, self.fault, True
            )
        with self.telemetry.tracer.span(
            SPAN_PARSER_CALL,
            chunk=index,
            attempt=attempt,
            records=len(chunk),
            in_process=True,
        ):
            return _parse_chunk(
                self.factory, chunk, index, attempt, self.fault, True
            )

    def _run_wave_in_pool(
        self, ordered, chunks, attempts, results, report
    ) -> list[int]:
        """One parallel dispatch wave; the pool is disposable.

        A fresh pool per wave means a wave poisoned by a dead or hung
        worker cannot leak into the next: on exit the pool is shut
        down without waiting, abandoning any still-running (hung)
        workers exactly like
        :func:`~repro.resilience.supervisor.run_with_deadline`
        abandons an overrunning thread.
        """
        failed = []
        traced = self.telemetry is not None
        pool = ProcessPoolExecutor(max_workers=self.workers)
        try:
            futures = {}
            for index in ordered:
                if traced:
                    self._dispatches += 1
                    context = self.telemetry.tracer.worker_context(
                        prefix=f"w{self._dispatches}-"
                    )
                    futures[index] = pool.submit(
                        _parse_chunk_traced,
                        self.factory,
                        chunks[index],
                        index,
                        attempts[index],
                        self.fault,
                        False,
                        context,
                    )
                else:
                    futures[index] = pool.submit(
                        _parse_chunk,
                        self.factory,
                        chunks[index],
                        index,
                        attempts[index],
                        self.fault,
                        False,
                    )
            for index in ordered:
                try:
                    outcome = futures[index].result(
                        timeout=self.chunk_timeout
                    )
                    if traced:
                        results[index], worker_spans = outcome
                        self.telemetry.tracer.adopt(worker_spans)
                    else:
                        results[index] = outcome
                except FuturesTimeoutError:
                    failed.append(index)
                    self._record_attempt(
                        report,
                        ChunkAttempt(
                            chunk=index,
                            attempt=attempts[index],
                            status=CHUNK_TIMEOUT,
                            error=(
                                f"no result within {self.chunk_timeout}s; "
                                "worker abandoned"
                            ),
                        ),
                    )
                except Exception as error:  # noqa: BLE001 - retried
                    failed.append(index)
                    self._record_attempt(
                        report,
                        ChunkAttempt(
                            chunk=index,
                            attempt=attempts[index],
                            status=CHUNK_ERROR,
                            error=f"{type(error).__name__}: {error}",
                        ),
                    )
                else:
                    self._record_attempt(
                        report,
                        ChunkAttempt(
                            chunk=index,
                            attempt=attempts[index],
                            status=CHUNK_OK,
                        ),
                    )
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        return failed

    def _fallback(self, index, chunks, attempts, results, report) -> None:
        """Last resort: parse the chunk in this process.

        Escapes a poisoned worker environment entirely; injected
        faults marked ``worker_only`` deliberately do not fire here.
        A failure at this point is a genuine parser bug on this input,
        surfaced as :class:`WorkerCrashError` with the full recovery
        report chained in.
        """
        attempts[index] += 1
        try:
            results[index] = self._parse_in_process(
                chunks[index], index, attempts[index]
            )
        except Exception as error:  # noqa: BLE001 - rethrown
            self._record_attempt(
                report,
                ChunkAttempt(
                    chunk=index,
                    attempt=attempts[index],
                    status=CHUNK_ERROR,
                    error=f"{type(error).__name__}: {error}",
                ),
            )
            raise WorkerCrashError(
                f"chunk {index} failed its in-process fallback after "
                f"{attempts[index]} attempts:\n{report.describe()}"
            ) from error
        self._record_attempt(
            report,
            ChunkAttempt(
                chunk=index, attempt=attempts[index], status=CHUNK_FALLBACK
            ),
        )

    @staticmethod
    def _merge(
        records: list[LogRecord], results: list[ParseResult]
    ) -> ParseResult:
        """Merge chunk results; identical templates become one event."""
        template_to_id: dict[str, str] = {}
        events: list[EventTemplate] = []
        assignments: list[str] = []
        for result in results:
            local_map: dict[str, str] = {}
            for event in result.events:
                if event.template not in template_to_id:
                    merged_id = f"E{len(events) + 1}"
                    template_to_id[event.template] = merged_id
                    events.append(
                        EventTemplate(
                            event_id=merged_id, template=event.template
                        )
                    )
                local_map[event.event_id] = template_to_id[event.template]
            for event_id in result.assignments:
                assignments.append(
                    local_map.get(event_id, ParseResult.OUTLIER_EVENT_ID)
                )
        return ParseResult(
            events=events, assignments=assignments, records=records
        )

    def _cluster(self, token_lists):  # pragma: no cover - parse() overridden
        raise NotImplementedError(
            "ChunkedParallelParser overrides parse() directly"
        )
