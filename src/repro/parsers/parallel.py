"""Chunked parallel parsing — the paper's §V "Distributed Log Parsing".

The paper's Finding 3 is that clustering-based parsers do not scale and
"parallelization is a promising direction".  This module implements the
simplest such design: split the input into chunks, parse each chunk
independently (in worker processes when ``workers > 1``), and merge
clusters whose templates coincide.

The merge is exact for parsers whose templates are deterministic
functions of a cluster's members (SLCT, IPLoM) and approximate for the
randomized clustering parsers — the trade-off the paper's discussion
anticipates.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from collections.abc import Callable, Sequence

from repro.common.errors import ParserConfigurationError
from repro.common.types import EventTemplate, LogRecord, ParseResult
from repro.parsers.base import LogParser

#: A zero-argument callable building a fresh parser (must be picklable
#: for multi-process use: a module-level function or functools.partial
#: over picklable arguments).
ParserFactory = Callable[[], LogParser]


def _parse_chunk(
    factory: ParserFactory, records: list[LogRecord]
) -> ParseResult:
    return factory().parse(records)


class ChunkedParallelParser(LogParser):
    """Parse chunks independently and merge equal templates.

    Args:
        factory: builds the underlying parser for each chunk.
        chunk_size: lines per chunk (the final chunk may be smaller).
        workers: worker processes; 1 parses chunks sequentially
            in-process (useful for tests and for measuring the merge
            overhead in isolation).
    """

    name = "Chunked"

    def __init__(
        self,
        factory: ParserFactory,
        chunk_size: int = 10_000,
        workers: int = 1,
    ) -> None:
        super().__init__(preprocessor=None)
        if chunk_size < 1:
            raise ParserConfigurationError(
                f"chunk_size must be >= 1, got {chunk_size}"
            )
        if workers < 1:
            raise ParserConfigurationError(
                f"workers must be >= 1, got {workers}"
            )
        self.factory = factory
        self.chunk_size = chunk_size
        self.workers = workers

    def parse(self, records: Sequence[LogRecord]) -> ParseResult:
        records = list(records)
        chunks = [
            records[start : start + self.chunk_size]
            for start in range(0, len(records), self.chunk_size)
        ]
        if not chunks:
            return ParseResult(events=[], assignments=[], records=[])

        if self.workers == 1 or len(chunks) == 1:
            results = [_parse_chunk(self.factory, chunk) for chunk in chunks]
        else:
            with ProcessPoolExecutor(max_workers=self.workers) as pool:
                results = list(
                    pool.map(
                        _parse_chunk,
                        [self.factory] * len(chunks),
                        chunks,
                    )
                )
        return self._merge(records, results)

    @staticmethod
    def _merge(
        records: list[LogRecord], results: list[ParseResult]
    ) -> ParseResult:
        """Merge chunk results; identical templates become one event."""
        template_to_id: dict[str, str] = {}
        events: list[EventTemplate] = []
        assignments: list[str] = []
        for result in results:
            local_map: dict[str, str] = {}
            for event in result.events:
                if event.template not in template_to_id:
                    merged_id = f"E{len(events) + 1}"
                    template_to_id[event.template] = merged_id
                    events.append(
                        EventTemplate(
                            event_id=merged_id, template=event.template
                        )
                    )
                local_map[event.event_id] = template_to_id[event.template]
            for event_id in result.assignments:
                assignments.append(
                    local_map.get(event_id, ParseResult.OUTLIER_EVENT_ID)
                )
        return ParseResult(
            events=events, assignments=assignments, records=records
        )

    def _cluster(self, token_lists):  # pragma: no cover - parse() overridden
        raise NotImplementedError(
            "ChunkedParallelParser overrides parse() directly"
        )
