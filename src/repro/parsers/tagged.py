"""Event-ID-tagged logging — the paper's §V "Logging of Event ID".

The discussion's second proposed direction: *"We could also improve log
parsing process by recording event ID in logs in the first place...
adding event ID to log message is a good logging practice from the
perspective of log mining."*

This module implements both halves of that idea:

* :func:`tag_records` — the "tool that automatically adds event ID into
  source code", simulated at the log level: given records with known
  events (from a generator or an oracle parse), prefix each message
  with a stable ``[EV:<id>]`` tag, producing the log a retrofitted
  system would emit.
* :class:`TaggedLogParser` — the trivial, exact, O(n) parser such logs
  enable: read the tag, strip it, recover the template from the tagged
  population.  Untagged lines fall back to the outlier cluster, so
  partially-migrated systems still parse.
"""

from __future__ import annotations

import re
from collections import Counter
from collections.abc import Sequence

from repro.common.errors import ValidationError

from repro.common.tokenize import render_template, template_from_cluster
from repro.common.types import EventTemplate, LogRecord, ParseResult
from repro.parsers.base import LogParser

#: Tag format prepended to each message: ``[EV:E17]``.
TAG_PATTERN = re.compile(r"^\[EV:([A-Za-z0-9_.-]+)\]\s+")


def tag_records(records: Sequence[LogRecord]) -> list[LogRecord]:
    """Prefix each record's content with its event-id tag.

    Records must carry ``truth_event`` (generator output, or the result
    of re-labeling by an oracle parse); this simulates a codebase whose
    log statements were instrumented with stable event ids.
    """
    tagged = []
    for record in records:
        if not record.truth_event:
            raise ValidationError(
                "cannot tag a record without a known event id"
            )
        tagged.append(
            LogRecord(
                content=f"[EV:{record.truth_event}] {record.content}",
                timestamp=record.timestamp,
                session_id=record.session_id,
                truth_event=record.truth_event,
            )
        )
    return tagged


class TaggedLogParser(LogParser):
    """Exact single-pass parser for event-ID-tagged logs.

    Parsing collapses to reading the tag; templates are reconstructed
    from each tag's population by column-wise masking (over the modal
    message length, so occasional free-text tails do not poison the
    template).  Lines without a tag go to the outlier cluster.
    """

    name = "Tagged"

    def parse(self, records: Sequence[LogRecord]) -> ParseResult:
        records = list(records)
        assignments: list[str] = []
        members: dict[str, list[list[str]]] = {}
        for record in records:
            match = TAG_PATTERN.match(record.content)
            if match is None:
                assignments.append(ParseResult.OUTLIER_EVENT_ID)
                continue
            event_id = match.group(1)
            body = record.content[match.end():]
            assignments.append(event_id)
            members.setdefault(event_id, []).append(body.split())
        events = [
            EventTemplate(
                event_id=event_id,
                template=self._template_of(token_lists),
            )
            for event_id, token_lists in members.items()
        ]
        return ParseResult(
            events=events, assignments=assignments, records=records
        )

    @staticmethod
    def _template_of(token_lists: list[list[str]]) -> str:
        lengths = Counter(len(tokens) for tokens in token_lists)
        width = lengths.most_common(1)[0][0]
        aligned = [
            tokens for tokens in token_lists if len(tokens) == width
        ]
        return render_template(template_from_cluster(aligned))

    def _cluster(self, token_lists):  # pragma: no cover - parse() overridden
        raise NotImplementedError("TaggedLogParser overrides parse()")
