"""The four log parsers evaluated in the paper, plus supporting pieces.

* :class:`~repro.parsers.slct.Slct` — Simple Logfile Clustering Tool
  (Vaarandi, IPOM 2003).
* :class:`~repro.parsers.iplom.Iplom` — Iterative Partitioning Log
  Mining (Makanju et al., KDD 2009 / TKDE 2012).
* :class:`~repro.parsers.lke.Lke` — Log Key Extraction (Fu et al.,
  ICDM 2009).
* :class:`~repro.parsers.logsig.LogSig` — message signature search
  (Tang et al., CIKM 2011).
* :class:`~repro.parsers.oracle.OracleParser` — ground-truth parser
  (the "source code based" parser of Xu et al., used for Table III's
  Ground-truth row).
* :class:`~repro.parsers.drain.DrainParser` — fixed-depth-tree online
  parsing (He et al., ICWS 2017), the modern baseline added by the
  expanded comparison.

All parsers share the standard contract of §II-C: a list of
:class:`~repro.common.types.LogRecord` in, a
:class:`~repro.common.types.ParseResult` out (events file + structured
log file).
"""

from repro.parsers.base import LogParser
from repro.parsers.preprocess import (
    Preprocessor,
    Rule,
    default_preprocessor,
)
from repro.parsers.slct import Slct
from repro.parsers.iplom import Iplom
from repro.parsers.lke import Lke
from repro.parsers.logsig import LogSig
from repro.parsers.drain import DrainParser, DrainTree
from repro.parsers.oracle import OracleParser
from repro.parsers.passthrough import PassthroughParser
from repro.parsers.registry import (
    LADDER_PARSER_NAMES,
    PARSER_NAMES,
    available_parsers,
    make_parser,
    resolve_parser_name,
)
from repro.parsers.parallel import ChunkedParallelParser
from repro.parsers.tagged import TaggedLogParser, tag_records

__all__ = [
    "LogParser",
    "Preprocessor",
    "Rule",
    "default_preprocessor",
    "Slct",
    "Iplom",
    "Lke",
    "LogSig",
    "DrainParser",
    "DrainTree",
    "OracleParser",
    "PassthroughParser",
    "LADDER_PARSER_NAMES",
    "PARSER_NAMES",
    "available_parsers",
    "make_parser",
    "resolve_parser_name",
    "ChunkedParallelParser",
    "TaggedLogParser",
    "tag_records",
]
