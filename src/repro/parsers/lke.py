"""LKE — Log Key Extraction (Fu et al., ICDM 2009).

LKE was developed at Microsoft for unstructured log analysis.  It
combines clustering with heuristic rules:

1. **Log clustering** — raw messages are clustered by a *weighted* edit
   distance: an edit at token index ``x`` costs ``1/(1+e^(x-mid))``, so
   differences near the head of a message (where constants live) count
   almost fully while differences in the tail (parameters) are nearly
   free.  The clustering is single-linkage with a distance threshold
   estimated from the data by 2-means — the "aggressive" strategy the
   paper blames for LKE's collapse on HPC: one close pair anywhere
   merges two whole clusters.
2. **Cluster splitting** — heuristic rules further split each cluster:
   a column whose distinct-value count is small (≤ ``split_threshold``)
   but larger than one likely mixes distinct constants, so the cluster
   is split on it; columns with many distinct values are parameters and
   are left alone.
3. **Log template generation** — the template of each final cluster is
   the common token skeleton of its members (longest common
   subsequence), with non-common positions masked.

The pairwise clustering step is O(n²) in the number of *unique*
messages — the reproduction keeps that complexity (it is the subject of
the paper's Finding 3) but dedupes exact-duplicate messages and abandons
distance computations early once they exceed the clustering threshold.
"""

from __future__ import annotations

import math

from repro.common.errors import ParserConfigurationError
from repro.common.rng import spawn
from repro.common.textutil import longest_common_subsequence
from repro.common.tokenize import WILDCARD
from repro.parsers.base import Clustering, LogParser


#: Memoized logistic weight tables keyed by (midpoint*2, table length):
#: the weight only depends on min(len_a, len_b), and computing
#: ``math.exp`` per DP cell dominates the pairwise stage otherwise.
_WEIGHT_TABLES: dict[tuple[int, int], list[float]] = {}


def _weight_function(length_a: int, length_b: int):
    """LKE's logistic position weight, centred mid-message."""
    midpoint = min(length_a, length_b) / 2.0

    def weight(index: int) -> float:
        return 1.0 / (1.0 + math.exp(index - midpoint))

    return weight


def _weight_table(length_a: int, length_b: int) -> list[float]:
    """Precomputed ``weight(0..max(len)-1)`` for one length pair."""
    shorter = min(length_a, length_b)
    longer = max(length_a, length_b)
    key = (shorter, longer)
    table = _WEIGHT_TABLES.get(key)
    if table is None:
        midpoint = shorter / 2.0
        table = [
            1.0 / (1.0 + math.exp(index - midpoint))
            for index in range(longer + 1)
        ]
        _WEIGHT_TABLES[key] = table
    return table


def _weighted_edit_distance(
    a: tuple[str, ...],
    b: tuple[str, ...],
    bound: float = math.inf,
) -> float:
    """Weighted edit distance; returns ``inf`` early if it exceeds *bound*.

    The early-abandon check (minimum of the current DP row already above
    *bound*) keeps the O(n²) pairwise stage tolerable without changing
    which pairs fall under the clustering threshold.
    """
    n, m = len(a), len(b)
    weight = _weight_table(n, m)
    previous = [0.0] * (m + 1)
    for j in range(1, m + 1):
        previous[j] = previous[j - 1] + weight[j - 1]
    for i in range(1, n + 1):
        weight_i = weight[i - 1]
        current = [previous[0] + weight_i] + [0.0] * m
        token_a = a[i - 1]
        for j in range(1, m + 1):
            if token_a == b[j - 1]:
                substitution = previous[j - 1]
            else:
                substitution = previous[j - 1] + weight[max(i, j) - 1]
            deletion = previous[j] + weight_i
            insertion = current[j - 1] + weight[j - 1]
            best = substitution
            if deletion < best:
                best = deletion
            if insertion < best:
                best = insertion
            current[j] = best
        if min(current) > bound:
            return math.inf
        previous = current
    return previous[m]


def estimate_threshold_two_means(
    distances: list[float], iterations: int = 50
) -> float:
    """Split sampled pairwise distances into near/far groups by 2-means.

    Returns the midpoint between the two cluster boundaries — LKE's
    data-driven clustering threshold.  With fewer than two distinct
    values the threshold falls back to just above the single value.
    """
    if not distances:
        return 0.0
    low, high = min(distances), max(distances)
    if low == high:
        return low + 1e-9
    center_low, center_high = low, high
    for _ in range(iterations):
        near = [d for d in distances if abs(d - center_low) <= abs(d - center_high)]
        far = [d for d in distances if abs(d - center_low) > abs(d - center_high)]
        if not near or not far:
            break
        new_low = sum(near) / len(near)
        new_high = sum(far) / len(far)
        if new_low == center_low and new_high == center_high:
            break
        center_low, center_high = new_low, new_high
    near_max = max(
        (d for d in distances if abs(d - center_low) <= abs(d - center_high)),
        default=low,
    )
    far_min = min(
        (d for d in distances if abs(d - center_low) > abs(d - center_high)),
        default=high,
    )
    return (near_max + far_min) / 2.0


class _UnionFind:
    """Minimal union-find for single-linkage clustering."""

    def __init__(self, size: int) -> None:
        self.parent = list(range(size))

    def find(self, item: int) -> int:
        root = item
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[item] != root:
            self.parent[item], item = root, self.parent[item]
        return root

    def union(self, a: int, b: int) -> None:
        root_a, root_b = self.find(a), self.find(b)
        if root_a != root_b:
            self.parent[root_b] = root_a


class Lke(LogParser):
    """LKE with the original's clustering + splitting heuristics.

    Args:
        split_threshold: a column with 1 < distinct values ≤ this is
            treated as mixed constants and split on (Fu et al.'s
            heuristic rule); columns above it are parameters.
        distance_threshold: fixed clustering threshold; ``None`` (the
            default and the original behaviour) estimates it from the
            data: 2-means over sampled nearest-neighbour distances,
            which separates "has a same-event twin" from "is its own
            event" far more sharply than raw pairwise distances.
        threshold_sample: number of messages sampled for the
            nearest-neighbour threshold estimate.
        seed: RNG seed for the threshold sampling (the paper runs LKE
            10× and averages because of this nondeterminism).
        preprocessor: optional domain-knowledge preprocessing.
    """

    name = "LKE"

    def __init__(
        self,
        split_threshold: int = 6,
        distance_threshold: float | None = None,
        threshold_sample: int = 200,
        seed: int | None = None,
        preprocessor=None,
    ) -> None:
        super().__init__(preprocessor=preprocessor)
        if split_threshold < 2:
            raise ParserConfigurationError(
                f"split_threshold must be >= 2, got {split_threshold}"
            )
        if distance_threshold is not None and distance_threshold < 0:
            raise ParserConfigurationError(
                f"distance_threshold must be >= 0, got {distance_threshold}"
            )
        if threshold_sample < 2:
            raise ParserConfigurationError(
                f"threshold_sample must be >= 2, got {threshold_sample}"
            )
        self.split_threshold = split_threshold
        self.distance_threshold = distance_threshold
        self.threshold_sample = threshold_sample
        self.seed = seed

    # ------------------------------------------------------------------

    def _cluster(self, token_lists: list[list[str]]) -> Clustering:
        if not token_lists:
            return Clustering(labels=[], templates=[])

        # Deduplicate identical messages; they always cluster together.
        unique: dict[tuple[str, ...], int] = {}
        line_to_unique: list[int] = []
        for tokens in token_lists:
            key = tuple(tokens)
            if key not in unique:
                unique[key] = len(unique)
            line_to_unique.append(unique[key])
        messages = list(unique)
        n = len(messages)

        threshold = self.distance_threshold
        if threshold is None:
            threshold = self._estimate_threshold(messages)

        # Single-linkage clustering: any pair under the threshold merges.
        union = _UnionFind(n)
        for i in range(n):
            message_i = messages[i]
            for j in range(i + 1, n):
                if union.find(i) == union.find(j):
                    continue
                distance = _weighted_edit_distance(
                    message_i, messages[j], bound=threshold
                )
                if distance <= threshold:
                    union.union(i, j)

        clusters: dict[int, list[int]] = {}
        for index in range(n):
            clusters.setdefault(union.find(index), []).append(index)

        # Heuristic cluster splitting, then template generation.
        final_clusters: list[list[int]] = []
        for members in clusters.values():
            final_clusters.extend(self._split_cluster(members, messages))

        labels_by_unique = [0] * n
        templates: list[list[str]] = []
        for label, members in enumerate(final_clusters):
            templates.append(
                self._make_template([messages[m] for m in members])
            )
            for member in members:
                labels_by_unique[member] = label
        labels = [labels_by_unique[u] for u in line_to_unique]
        return Clustering(labels=labels, templates=templates)

    # ------------------------------------------------------------------

    def _estimate_threshold(self, messages: list[tuple[str, ...]]) -> float:
        """2-means over nearest-neighbour distances of a message sample.

        A message with a same-event twin in the sample has a small
        nearest-neighbour distance; a message that is the only instance
        of its event has a large one.  The gap between those two modes
        is the natural clustering threshold.
        """
        n = len(messages)
        if n < 2:
            return 0.0
        rng = spawn(self.seed, f"lke-threshold:{n}")
        sample = (
            rng.sample(range(n), self.threshold_sample)
            if n > self.threshold_sample
            else list(range(n))
        )
        nearest: list[float] = []
        for i in sample:
            best = math.inf
            for j in sample:
                if i == j:
                    continue
                distance = _weighted_edit_distance(
                    messages[i], messages[j], bound=best
                )
                if distance < best:
                    best = distance
            if math.isfinite(best):
                nearest.append(best)
        return estimate_threshold_two_means(nearest)

    # ------------------------------------------------------------------

    def _split_cluster(
        self, members: list[int], messages: list[tuple[str, ...]]
    ) -> list[list[int]]:
        """Recursively split on low-cardinality (constant-mixing) columns.

        A column is a split candidate when its distinct values are few
        (≤ ``split_threshold``) *and* symbolic: values containing
        digits are parameters (ids, counters, addresses), which Fu et
        al.'s heuristic rules leave alone even when only a handful of
        distinct values occur in the data.
        """
        if len(members) <= 1:
            return [members]
        width = min(len(messages[m]) for m in members)
        best_column = None
        best_cardinality = None
        for column in range(width):
            values = {messages[m][column] for m in members}
            if not 1 < len(values) <= self.split_threshold:
                continue
            if any(any(ch.isdigit() for ch in value) for value in values):
                continue
            if best_cardinality is None or len(values) < best_cardinality:
                best_column = column
                best_cardinality = len(values)
        if best_column is None:
            return [members]
        groups: dict[str, list[int]] = {}
        for member in members:
            groups.setdefault(messages[member][best_column], []).append(member)
        result: list[list[int]] = []
        for value in sorted(groups):
            result.extend(self._split_cluster(groups[value], messages))
        return result

    # ------------------------------------------------------------------

    @staticmethod
    def _make_template(members: list[tuple[str, ...]]) -> list[str]:
        """Common-skeleton template: LCS tokens kept, the rest masked."""
        representative = list(members[0])
        common = list(members[0])
        for message in members[1:]:
            common = longest_common_subsequence(common, list(message))
            if not common:
                break
        template = []
        common_iter = iter(common)
        pending = next(common_iter, None)
        for token in representative:
            if pending is not None and token == pending:
                template.append(token)
                pending = next(common_iter, None)
            else:
                template.append(WILDCARD)
        return template
