"""The abstract log parser and the standard input/output contract.

A concrete parser implements :meth:`LogParser._cluster`, which maps the
(possibly preprocessed) token lists to integer cluster labels plus one
template per cluster.  The base class handles preprocessing, outlier
labeling, event-id assignment, and assembly of the
:class:`~repro.common.types.ParseResult`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from collections.abc import Sequence

from repro.common.errors import ParserConfigurationError, ValidationError
from repro.common.tokenize import WILDCARD, render_template, tokenize
from repro.common.types import EventTemplate, LogRecord, ParseResult
from repro.parsers.preprocess import Preprocessor

#: Cluster label a parser uses for lines it refuses to cluster.
OUTLIER = -1


@dataclass
class Clustering:
    """Raw output of a parser's clustering stage.

    Attributes:
        labels: one integer per input line; ``OUTLIER`` (-1) marks
            unclustered lines, other values index ``templates``.
        templates: token-list template for each cluster label
            ``0..len-1``.
    """

    labels: list[int]
    templates: list[list[str]]

    def __post_init__(self) -> None:
        for label in self.labels:
            if label != OUTLIER and not 0 <= label < len(self.templates):
                raise ValidationError(f"cluster label {label} out of range")


class LogParser(abc.ABC):
    """Base class for all log parsers (standard contract of §II-C)."""

    #: Short name used in tables and the CLI; subclasses override.
    name = "abstract"

    def __init__(self, preprocessor: Preprocessor | None = None) -> None:
        self.preprocessor = preprocessor

    def parse(self, records: Sequence[LogRecord]) -> ParseResult:
        """Parse raw *records* into events + structured logs.

        Preprocessing (if configured) rewrites message contents before
        clustering; assignments still line up 1:1 with the input
        records, so downstream evaluation and mining are unaffected by
        whether preprocessing ran.
        """
        records = list(records)
        contents = [record.content for record in records]
        if self.preprocessor is not None:
            contents = [self.preprocessor(content) for content in contents]
        token_lists = [tokenize(content) for content in contents]
        clustering = self._cluster(token_lists)
        if len(clustering.labels) != len(records):
            raise ParserConfigurationError(
                f"{self.name}: clustering returned {len(clustering.labels)} "
                f"labels for {len(records)} records"
            )
        events = [
            EventTemplate(
                event_id=f"E{index + 1}",
                template=render_template(template),
            )
            for index, template in enumerate(clustering.templates)
        ]
        assignments = [
            ParseResult.OUTLIER_EVENT_ID
            if label == OUTLIER
            else events[label].event_id
            for label in clustering.labels
        ]
        return ParseResult(
            events=events, assignments=assignments, records=records
        )

    def parse_contents(self, contents: Sequence[str]) -> ParseResult:
        """Convenience: parse bare message strings."""
        return self.parse([LogRecord(content=c) for c in contents])

    @abc.abstractmethod
    def _cluster(self, token_lists: list[list[str]]) -> Clustering:
        """Cluster tokenized messages; see :class:`Clustering`."""

    @staticmethod
    def _wildcard_template(length: int) -> list[str]:
        """An all-wildcard template of the given token length."""
        return [WILDCARD] * length
