"""Passthrough tagger — the terminal rung of a degradation ladder.

When every clustering parser has been shed for survival (the
graceful-degradation runtime of :mod:`repro.degradation`), the pipeline
still has to emit *valid* structured logs: every line assigned to an
event, every event carrying a template.  The passthrough tagger is the
cheapest parser that honors that contract — it clusters lines by their
exact token signature in a single O(n) pass, so each distinct message
becomes its own event and its own template (no wildcards, no
abstraction).

That output is deliberately honest about its cost: exact-signature
"templates" fragment parameterized events into one event per parameter
value, which is precisely the error shape Finding 6 shows is most
destructive to PCA mining (near-unique high-IDF columns).  The
:class:`~repro.degradation.ledger.MiningImpactLedger` accounts for that
when a ladder lands here; the point of the rung is that the *stream
survives* with full provenance, and the structured output can be
re-parsed properly once pressure subsides.
"""

from __future__ import annotations

from repro.parsers.base import Clustering, LogParser


class PassthroughParser(LogParser):
    """Exact-signature dedup parser: one event per distinct message.

    Never fails, never blocks, allocates one template per distinct
    token signature — the guaranteed-feasible floor of any parser
    fallback chain or degradation ladder.
    """

    name = "Passthrough"

    def _cluster(self, token_lists: list[list[str]]) -> Clustering:
        labels: list[int] = []
        templates: list[list[str]] = []
        signature_to_label: dict[tuple[str, ...], int] = {}
        for tokens in token_lists:
            signature = tuple(tokens)
            label = signature_to_label.get(signature)
            if label is None:
                label = len(templates)
                signature_to_label[signature] = label
                templates.append(list(tokens))
            labels.append(label)
        return Clustering(labels=labels, templates=templates)
