"""Domain-knowledge log preprocessing (the paper's Finding 2).

Developers usually erase obvious parameters before running a parser:
the paper removes IP addresses (HPC, Zookeeper, HDFS), core ids (BGL),
and block ids (HDFS), and shows this lifts the accuracy of SLCT, LKE
and LogSig substantially while leaving IPLoM roughly unchanged.

A :class:`Preprocessor` is an ordered list of named regex
:class:`Rule` s; each rule rewrites every match to the wildcard ``*``.
:func:`default_preprocessor` reproduces the paper's per-dataset rule
sets.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.common.errors import ParserConfigurationError
from repro.common.tokenize import WILDCARD


@dataclass(frozen=True)
class Rule:
    """One preprocessing rewrite: all regex matches become ``*``."""

    name: str
    pattern: str
    replacement: str = WILDCARD
    _compiled: re.Pattern = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        try:
            compiled = re.compile(self.pattern)
        except re.error as exc:
            raise ParserConfigurationError(
                f"rule {self.name}: bad regex {self.pattern!r}: {exc}"
            ) from exc
        object.__setattr__(self, "_compiled", compiled)

    def apply(self, content: str) -> str:
        return self._compiled.sub(self.replacement, content)


#: Reusable rule definitions matching the paper's description (§IV-B).
IP_ADDRESS = Rule("ip", r"\d{1,3}\.\d{1,3}\.\d{1,3}\.\d{1,3}(:\d+)?")
BLOCK_ID = Rule("block_id", r"blk_-?\d+")
CORE_ID = Rule("core_id", r"\bcore\.\d+")


@dataclass(frozen=True)
class Preprocessor:
    """An ordered pipeline of preprocessing rules."""

    rules: tuple[Rule, ...]

    def __call__(self, content: str) -> str:
        for rule in self.rules:
            content = rule.apply(content)
        return content

    @property
    def rule_names(self) -> list[str]:
        return [rule.name for rule in self.rules]


#: Per-dataset rule sets from §IV-B: "we remove obvious numerical
#: parameters (i.e., IP addresses in HPC & Zookeeper & HDFS, core IDs in
#: BGL, and block IDs in HDFS). Proxifier does not contain words that
#: could be preprocessed based on domain knowledge."
_DATASET_RULES: dict[str, tuple[Rule, ...]] = {
    "BGL": (CORE_ID,),
    "HPC": (IP_ADDRESS,),
    "HDFS": (BLOCK_ID, IP_ADDRESS),
    "Zookeeper": (IP_ADDRESS,),
    "Proxifier": (),
}


def default_preprocessor(dataset_name: str) -> Preprocessor | None:
    """The paper's preprocessing rules for *dataset_name* (or None).

    Returns ``None`` for datasets with no applicable domain knowledge
    (Proxifier), mirroring the '-' cells of Table II.
    """
    for name, rules in _DATASET_RULES.items():
        if name.lower() == dataset_name.lower():
            return Preprocessor(rules=rules) if rules else None
    raise ParserConfigurationError(
        f"no preprocessing rules registered for dataset {dataset_name!r}"
    )
