"""IPLoM — Iterative Partitioning Log Mining (Makanju et al., KDD 2009).

IPLoM partitions the log through three heuristic steps, then derives one
template per leaf partition:

1. **Partition by event size** — lines are grouped by token count
   (templates never change a message's length).
2. **Partition by token position** — each partition is split on the
   column with the fewest unique tokens (that column is most likely a
   constant; splitting on it separates different event types that
   happen to share a length).
3. **Partition by search for mapping** — the two most informative
   columns are chosen and the mapping relation between their unique
   token sets (1-1, 1-M, M-1, M-M) drives a final split.  Whether the
   "many" side of a 1-M/M-1 relation is a variable (split on the "1"
   side) or a set of constants (split on the "many" side) is decided by
   the lower/upper bound heuristic of the original paper.
4. **Template generation** — in each leaf partition a column keeps its
   token when all members agree, otherwise it becomes ``*``.

Parameters mirror the original: cluster goodness threshold ``ct``,
``lower_bound``/``upper_bound`` for the 1-M decision, and an optional
partition support threshold ``pst`` that sends undersized partitions to
the outlier cluster.
"""

from __future__ import annotations

from collections import Counter, defaultdict

from repro.common.errors import ParserConfigurationError
from repro.common.tokenize import WILDCARD
from repro.parsers.base import Clustering, LogParser, OUTLIER


class Iplom(LogParser):
    """IPLoM with the original's four tunables.

    Args:
        ct: cluster goodness threshold in [0, 1]; partitions whose
            fraction of constant columns exceeds it skip step 3.
        lower_bound / upper_bound: thresholds of the 1-M "variable or
            constants?" decision (0 < lower ≤ upper ≤ 1).
        pst: partition support threshold in [0, 1); partitions holding
            fewer than ``pst × n_lines`` lines after each step are sent
            to the outlier cluster (0 disables, the original default).
        preprocessor: optional domain-knowledge preprocessing.
    """

    name = "IPLoM"

    def __init__(
        self,
        ct: float = 0.35,
        lower_bound: float = 0.25,
        upper_bound: float = 0.9,
        pst: float = 0.0,
        preprocessor=None,
    ) -> None:
        super().__init__(preprocessor=preprocessor)
        if not 0.0 <= ct <= 1.0:
            raise ParserConfigurationError(f"ct must be in [0,1], got {ct}")
        if not 0.0 < lower_bound <= upper_bound <= 1.0:
            raise ParserConfigurationError(
                f"need 0 < lower_bound <= upper_bound <= 1, got "
                f"{lower_bound}, {upper_bound}"
            )
        if not 0.0 <= pst < 1.0:
            raise ParserConfigurationError(
                f"pst must be in [0,1), got {pst}"
            )
        self.ct = ct
        self.lower_bound = lower_bound
        self.upper_bound = upper_bound
        self.pst = pst

    # ------------------------------------------------------------------
    # Main clustering pipeline
    # ------------------------------------------------------------------

    def _cluster(self, token_lists: list[list[str]]) -> Clustering:
        if not token_lists:
            return Clustering(labels=[], templates=[])
        n_lines = len(token_lists)
        min_support = int(self.pst * n_lines)

        outliers: list[int] = []

        def enforce_support(
            partitions: list[list[int]],
        ) -> list[list[int]]:
            if min_support <= 0:
                return partitions
            kept = []
            for partition in partitions:
                if len(partition) < min_support:
                    outliers.extend(partition)
                else:
                    kept.append(partition)
            return kept

        by_size = self._partition_by_size(token_lists)
        by_size = enforce_support(by_size)

        by_position: list[list[int]] = []
        for partition in by_size:
            by_position.extend(
                self._partition_by_position(partition, token_lists)
            )
        by_position = enforce_support(by_position)

        leaves: list[list[int]] = []
        for partition in by_position:
            leaves.extend(self._partition_by_mapping(partition, token_lists))
        leaves = enforce_support(leaves)

        labels = [OUTLIER] * n_lines
        templates: list[list[str]] = []
        for partition in leaves:
            template = self._make_template(partition, token_lists)
            label = len(templates)
            templates.append(template)
            for line_no in partition:
                labels[line_no] = label
        return Clustering(labels=labels, templates=templates)

    # ------------------------------------------------------------------
    # Step 1: partition by event size
    # ------------------------------------------------------------------

    @staticmethod
    def _partition_by_size(token_lists: list[list[str]]) -> list[list[int]]:
        by_length: dict[int, list[int]] = defaultdict(list)
        for line_no, tokens in enumerate(token_lists):
            by_length[len(tokens)].append(line_no)
        return [by_length[length] for length in sorted(by_length)]

    # ------------------------------------------------------------------
    # Step 2: partition by token position
    # ------------------------------------------------------------------

    @staticmethod
    def _column_cardinalities(
        partition: list[int], token_lists: list[list[str]]
    ) -> list[set[str]]:
        width = len(token_lists[partition[0]])
        columns: list[set[str]] = [set() for _ in range(width)]
        for line_no in partition:
            for position, token in enumerate(token_lists[line_no]):
                columns[position].add(token)
        return columns

    def _partition_by_position(
        self, partition: list[int], token_lists: list[list[str]]
    ) -> list[list[int]]:
        width = len(token_lists[partition[0]])
        if width == 0 or len(partition) <= 1:
            return [partition]
        columns = self._column_cardinalities(partition, token_lists)
        # Choose the non-constant column with the fewest unique tokens;
        # ties go to the leftmost column (constants tend to lead log
        # messages).  A column whose cardinality is large relative to
        # the partition is a free parameter, not a mix of constants —
        # splitting on it would shatter one event into per-value
        # fragments, so such columns are skipped (the original's
        # "partition support" safeguard).
        candidates = [
            position
            for position in range(width)
            if 1 < len(columns[position]) <= max(2, len(partition) // 4)
        ]
        if not candidates:
            return [partition]
        split_position = min(
            candidates, key=lambda position: len(columns[position])
        )
        groups: dict[str, list[int]] = defaultdict(list)
        for line_no in partition:
            groups[token_lists[line_no][split_position]].append(line_no)
        return [groups[token] for token in sorted(groups)]

    # ------------------------------------------------------------------
    # Step 3: partition by search for mapping (bijection)
    # ------------------------------------------------------------------

    def _partition_by_mapping(
        self, partition: list[int], token_lists: list[list[str]]
    ) -> list[list[int]]:
        width = len(token_lists[partition[0]])
        if width < 2 or len(partition) <= 1:
            return [partition]
        columns = self._column_cardinalities(partition, token_lists)

        constant_columns = sum(1 for column in columns if len(column) == 1)
        cluster_goodness = constant_columns / width
        if cluster_goodness > self.ct:
            return [partition]

        chosen = self._determine_p1_p2(columns)
        if chosen is None:
            return [partition]
        p1, p2 = chosen

        forward: dict[str, set[str]] = defaultdict(set)
        backward: dict[str, set[str]] = defaultdict(set)
        p1_line_counts: Counter[str] = Counter()
        p2_line_counts: Counter[str] = Counter()
        for line_no in partition:
            token1 = token_lists[line_no][p1]
            token2 = token_lists[line_no][p2]
            forward[token1].add(token2)
            backward[token2].add(token1)
            p1_line_counts[token1] += 1
            p2_line_counts[token2] += 1

        groups: dict[tuple, list[int]] = defaultdict(list)
        for line_no in partition:
            token1 = token_lists[line_no][p1]
            token2 = token_lists[line_no][p2]
            fan_out = len(forward[token1])
            fan_in = len(backward[token2])
            if fan_out == 1 and fan_in == 1:
                key = ("1-1", token1)
            elif fan_out > 1 and fan_in == 1:
                # token1 maps to many p2 values (1-M).
                if self._many_side_is_variable(
                    len(forward[token1]), p1_line_counts[token1]
                ):
                    key = ("1-M", token1)
                else:
                    key = ("1-M-const", token2)
            elif fan_out == 1 and fan_in > 1:
                # Many p1 values map to token2 (M-1).
                if self._many_side_is_variable(
                    len(backward[token2]), p2_line_counts[token2]
                ):
                    key = ("M-1", token2)
                else:
                    key = ("M-1-const", token1)
            else:
                key = ("M-M",)
            groups[key].append(line_no)
        return [groups[key] for key in sorted(groups, key=str)]

    def _determine_p1_p2(
        self, columns: list[set[str]]
    ) -> tuple[int, int] | None:
        """Pick the two columns whose cardinality is most common (>1).

        Columns sharing the modal cardinality are the best candidates
        for a meaningful mapping; with fewer than two such columns the
        partition is left alone.
        """
        if len(columns) == 2:
            return (0, 1)
        cardinalities = [len(column) for column in columns]
        interesting = [c for c in cardinalities if c > 1]
        if not interesting:
            return None
        modal = Counter(interesting).most_common(1)[0][0]
        candidates = [
            position
            for position, cardinality in enumerate(cardinalities)
            if cardinality == modal
        ]
        if len(candidates) >= 2:
            return candidates[0], candidates[1]
        # Fall back: pair the modal column with the next non-constant one.
        others = [
            position
            for position, cardinality in enumerate(cardinalities)
            if cardinality > 1 and position not in candidates
        ]
        if not others:
            return None
        return candidates[0], others[0]

    def _many_side_is_variable(self, many_count: int, line_count: int) -> bool:
        """The original get_rank heuristic for 1-M relations.

        A "many" set nearly as large as its line count looks like a
        free-ranging variable (split on the "1" side); a small set of
        repeated values looks like distinct constants (split on the
        "many" side).  Between the bounds the original defaults to
        treating the many side as a variable.
        """
        ratio = many_count / line_count if line_count else 1.0
        if ratio <= self.lower_bound:
            return False
        if ratio >= self.upper_bound:
            return True
        # Between the bounds the original defaults to the variable
        # interpretation (split on the "1" side).
        return True

    # ------------------------------------------------------------------
    # Step 4: template generation
    # ------------------------------------------------------------------

    def _make_template(
        self, partition: list[int], token_lists: list[list[str]]
    ) -> list[str]:
        columns = self._column_cardinalities(partition, token_lists)
        first = token_lists[partition[0]]
        return [
            first[position] if len(column) == 1 else WILDCARD
            for position, column in enumerate(columns)
        ]
