"""SLCT — Simple Logfile Clustering Tool (Vaarandi, IPOM 2003).

The first automated log parser.  Inspired by association-rule mining,
it runs as a three-step procedure with two passes over the data:

1. **Word vocabulary construction** — one pass counts the frequency of
   every (position, word) pair.
2. **Cluster candidate construction** — a second pass maps each line to
   the set of its *frequent* (position, word) pairs (frequency ≥ the
   support threshold); that set, together with the line's token count,
   is the line's cluster candidate.
3. **Log template generation** — candidates whose member count reaches
   the support threshold become clusters; the frequent positions keep
   their word and every other position becomes ``*``.  Lines of all
   remaining candidates go to the outlier cluster.

The support threshold may be given as an absolute line count or as a
fraction of the input size (matching the original tool's ``-s`` option).
"""

from __future__ import annotations

from collections import Counter, defaultdict

from repro.common.errors import ParserConfigurationError
from repro.common.tokenize import WILDCARD
from repro.parsers.base import Clustering, LogParser, OUTLIER


class Slct(LogParser):
    """SLCT with a support threshold (absolute count or fraction).

    Args:
        support: clusters need at least this many member lines.  Values
            in (0, 1) are interpreted as a fraction of the input size;
            values ≥ 1 as absolute counts.
        preprocessor: optional domain-knowledge preprocessing.
    """

    name = "SLCT"

    def __init__(self, support: float = 0.01, preprocessor=None) -> None:
        super().__init__(preprocessor=preprocessor)
        if support <= 0:
            raise ParserConfigurationError(
                f"SLCT support must be positive, got {support}"
            )
        self.support = support

    def _absolute_support(self, n_lines: int) -> int:
        if self.support < 1:
            return max(1, int(self.support * n_lines))
        return int(self.support)

    def _cluster(self, token_lists: list[list[str]]) -> Clustering:
        if not token_lists:
            return Clustering(labels=[], templates=[])
        support = self._absolute_support(len(token_lists))

        # Pass 1: word vocabulary (position, word) -> frequency.
        vocabulary: Counter[tuple[int, str]] = Counter()
        for tokens in token_lists:
            vocabulary.update(enumerate(tokens))

        # Pass 2: map each line to its cluster candidate.
        candidate_members: dict[
            tuple[int, frozenset[tuple[int, str]]], list[int]
        ] = defaultdict(list)
        for line_no, tokens in enumerate(token_lists):
            frequent = frozenset(
                (position, word)
                for position, word in enumerate(tokens)
                if vocabulary[(position, word)] >= support
            )
            candidate_members[(len(tokens), frequent)].append(line_no)

        # Step 3: select clusters and emit templates.
        labels = [OUTLIER] * len(token_lists)
        templates: list[list[str]] = []
        for (length, frequent), members in sorted(
            candidate_members.items(),
            key=lambda item: item[1][0],  # stable: by first occurrence
        ):
            if len(members) < support or not frequent:
                continue  # members stay outliers
            template = [WILDCARD] * length
            for position, word in frequent:
                template[position] = word
            label = len(templates)
            templates.append(template)
            for line_no in members:
                labels[line_no] = label
        return Clustering(labels=labels, templates=templates)
