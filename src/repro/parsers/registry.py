"""Name-based parser construction for the CLI and the harnesses."""

from __future__ import annotations

from repro.common.errors import ParserConfigurationError
from repro.parsers.base import LogParser
from repro.parsers.iplom import Iplom
from repro.parsers.lke import Lke
from repro.parsers.logsig import LogSig
from repro.parsers.oracle import OracleParser
from repro.parsers.passthrough import PassthroughParser
from repro.parsers.slct import Slct

_PARSERS: dict[str, type[LogParser]] = {
    "SLCT": Slct,
    "IPLoM": Iplom,
    "LKE": Lke,
    "LogSig": LogSig,
    "GroundTruth": OracleParser,
    "Passthrough": PassthroughParser,
}

#: Parser names in the paper's presentation order.
PARSER_NAMES = ["SLCT", "IPLoM", "LKE", "LogSig"]

#: Names admissible on a degradation ladder (cheapest rung last).
LADDER_PARSER_NAMES = [*PARSER_NAMES, "Passthrough"]


def make_parser(name: str, **params) -> LogParser:
    """Construct a parser by (case-insensitive) name.

    Keyword arguments are forwarded to the parser constructor, so e.g.
    ``make_parser("slct", support=0.005)`` works.
    """
    for registered, cls in _PARSERS.items():
        if registered.lower() == name.lower():
            return cls(**params)
    raise ParserConfigurationError(
        f"unknown parser {name!r}; choose from {sorted(_PARSERS)}"
    )
