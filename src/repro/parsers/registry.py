"""Name-based parser construction for the CLI and the harnesses."""

from __future__ import annotations

from repro.common.errors import ValidationError
from repro.parsers.base import LogParser
from repro.parsers.drain import DrainParser
from repro.parsers.iplom import Iplom
from repro.parsers.lke import Lke
from repro.parsers.logsig import LogSig
from repro.parsers.oracle import OracleParser
from repro.parsers.passthrough import PassthroughParser
from repro.parsers.slct import Slct

_PARSERS: dict[str, type[LogParser]] = {
    "SLCT": Slct,
    "IPLoM": Iplom,
    "LKE": Lke,
    "LogSig": LogSig,
    "Drain": DrainParser,
    "GroundTruth": OracleParser,
    "Passthrough": PassthroughParser,
}

#: Parser names in the paper's presentation order, plus the modern
#: Drain baseline appended by the expanded comparison.
PARSER_NAMES = ["SLCT", "IPLoM", "LKE", "LogSig", "Drain"]

#: Names admissible on a degradation ladder (cheapest rung last).
LADDER_PARSER_NAMES = [*PARSER_NAMES, "Passthrough"]


def available_parsers() -> list[str]:
    """Every registered parser name, in registration order."""
    return list(_PARSERS)


def resolve_parser_name(name: str) -> str:
    """Canonical registry name for ``name``, case-insensitively.

    Raises :class:`~repro.common.errors.ValidationError` listing the
    available parsers when ``name`` is not registered.  Unlike
    :func:`make_parser` this never constructs the parser, so it is safe
    for names whose constructors demand parameters (e.g. LogSig).
    """
    for registered in _PARSERS:
        if registered.lower() == name.lower():
            return registered
    raise ValidationError(
        f"unknown parser {name!r}; choose from {sorted(_PARSERS)}"
    )


def make_parser(name: str, **params) -> LogParser:
    """Construct a parser by (case-insensitive) name.

    Keyword arguments are forwarded to the parser constructor, so e.g.
    ``make_parser("slct", support=0.005)`` works.

    Raises :class:`~repro.common.errors.ValidationError` (a
    configuration error, exit code 2 at the CLI) for a name not in the
    registry, listing what *is* available.
    """
    for registered, cls in _PARSERS.items():
        if registered.lower() == name.lower():
            return cls(**params)
    raise ValidationError(
        f"unknown parser {name!r}; choose from {sorted(_PARSERS)}"
    )
