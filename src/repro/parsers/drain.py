"""Drain — fixed-depth-tree online log parsing (He et al., ICWS 2017).

Drain is the de-facto modern baseline ("Tools and Benchmarks for
Automated Log Parsing"): a single-pass, genuinely *online* parser that
routes each message through a fixed-depth prefix tree and merges it
into the most similar existing template group, or starts a new one.

The tree has three kinds of levels:

1. **Root → length node** — messages are first partitioned by token
   count, exploiting that lines of one event type almost always have
   the same length (the same assumption IPLoM's first step makes).
2. **Length node → token nodes** — the next ``depth`` levels branch on
   the leading tokens of the message.  Tokens containing digits are
   assumed to be parameters and all routed through a single wildcard
   branch; once a node has ``max_children`` distinct branches, further
   new tokens share the wildcard branch too, bounding the tree width.
3. **Leaf → template groups** — each leaf holds the groups whose
   members took that path.  The incoming message is compared against
   each group's template by positional similarity (wildcard positions
   never count as agreement); the best group at or above
   ``sim_threshold`` absorbs the line and generalizes its template
   (:func:`~repro.common.tokenize.generalize`), otherwise the line
   founds a new group.

Both the routing and the merge are deterministic functions of the
input prefix, so Drain needs no seed, parses in one O(tokens) step per
line, and is ``feed``-compatible: :class:`DrainTree` exposes the
incremental interface directly (one :meth:`DrainTree.feed` per line),
while :class:`DrainParser` wraps a fresh tree per :meth:`parse` call
to honor the stateless batch contract of §II-C shared by every parser
in the registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ParserConfigurationError
from repro.common.tokenize import WILDCARD, generalize, is_wildcard
from repro.parsers.base import Clustering, LogParser

#: Branch label shared by parameter-like and overflow tokens.
_WILDCARD_BRANCH = WILDCARD

#: Branch label for the empty message (token count zero).
_EMPTY_BRANCH = ""


def _looks_variable(token: str) -> bool:
    """Heuristic of the Drain paper: digit-bearing tokens are parameters."""
    return any(character.isdigit() for character in token)


@dataclass
class _Group:
    """One template group: the evolving template plus its member lines."""

    group_id: int
    template: list[str]
    size: int = 0


@dataclass
class _Node:
    """One internal tree node: branches by token (or the wildcard)."""

    children: dict[str, "_Node"] = field(default_factory=dict)
    groups: list[_Group] = field(default_factory=list)


class DrainTree:
    """The incremental Drain state: feed token lists, get group ids.

    This is the online half of the parser — long-lived, one
    :meth:`feed` per line, group ids stable for the lifetime of the
    tree — usable directly wherever incremental template extraction is
    needed (the streaming engine's flushes construct it afresh per
    batch via :class:`DrainParser`).

    Args:
        depth: total tree depth as in the paper — root and leaf
            included, so ``depth - 2`` leading tokens are used for
            routing.  Must be >= 3.
        sim_threshold: similarity a group must reach to absorb a line,
            in (0, 1).  Positional agreement over the token count;
            wildcard template positions do not count as agreement.
        max_children: distinct token branches per node before new
            tokens fall through to the wildcard branch.
    """

    def __init__(
        self,
        depth: int = 4,
        sim_threshold: float = 0.4,
        max_children: int = 100,
    ) -> None:
        if depth < 3:
            raise ParserConfigurationError(
                f"Drain depth must be >= 3 (root + >=1 token level + "
                f"leaf), got {depth}"
            )
        if not 0.0 < sim_threshold < 1.0:
            raise ParserConfigurationError(
                f"Drain sim_threshold must be in (0, 1), got {sim_threshold}"
            )
        if max_children < 1:
            raise ParserConfigurationError(
                f"Drain max_children must be >= 1, got {max_children}"
            )
        self.depth = depth
        self.sim_threshold = sim_threshold
        self.max_children = max_children
        self._root = _Node()
        self._groups: list[_Group] = []

    # ------------------------------------------------------------------
    # Incremental interface
    # ------------------------------------------------------------------

    @property
    def n_groups(self) -> int:
        return len(self._groups)

    def templates(self) -> list[list[str]]:
        """Current template per group id (index == group id)."""
        return [list(group.template) for group in self._groups]

    def feed(self, tokens: list[str]) -> int:
        """Route one tokenized line; returns its (stable) group id.

        New lines either join the most similar group at the reached
        leaf (generalizing its template in place) or found a new group
        there.  Group ids are assigned in discovery order and never
        change afterwards.
        """
        leaf = self._descend(tokens)
        group = self._best_match(leaf, tokens)
        if group is None:
            group = _Group(group_id=len(self._groups), template=list(tokens))
            self._groups.append(group)
            leaf.groups.append(group)
        else:
            group.template = generalize(group.template, tokens)
        group.size += 1
        return group.group_id

    def _descend(self, tokens: list[str]) -> _Node:
        """Walk (building as needed) root → length → leading tokens."""
        node = self._branch(self._root, str(len(tokens)), bounded=False)
        for position in range(self.depth - 2):
            if position >= len(tokens):
                break
            token = tokens[position]
            if _looks_variable(token):
                token = _WILDCARD_BRANCH
            elif token == _EMPTY_BRANCH:  # pragma: no cover - tokenize()
                token = _WILDCARD_BRANCH  # never yields empty tokens
            node = self._branch(node, token, bounded=True)
        return node

    def _branch(self, node: _Node, token: str, *, bounded: bool) -> _Node:
        child = node.children.get(token)
        if child is None:
            if (
                bounded
                and token != _WILDCARD_BRANCH
                and len(node.children) >= self.max_children
            ):
                return self._branch(node, _WILDCARD_BRANCH, bounded=False)
            child = _Node()
            node.children[token] = child
        return child

    def _best_match(self, leaf: _Node, tokens: list[str]) -> _Group | None:
        """Most similar group at *leaf* reaching the threshold, if any."""
        best: _Group | None = None
        best_score = -1.0
        for group in leaf.groups:
            score = self._similarity(group.template, tokens)
            if score > best_score:
                best, best_score = group, score
        if best is not None and best_score >= self.sim_threshold:
            return best
        return None

    @staticmethod
    def _similarity(template: list[str], tokens: list[str]) -> float:
        """Positional agreement ratio; wildcards never count as equal.

        Groups under one leaf always share a token count (the length
        level guarantees it), so the comparison is positional.  The
        empty message is identical to the empty template (1.0).
        """
        if not tokens:
            return 1.0
        matching = sum(
            1
            for expected, actual in zip(template, tokens)
            if expected == actual and not is_wildcard(expected)
        )
        return matching / len(tokens)

    # ------------------------------------------------------------------
    # Introspection (invariant checks, tests)
    # ------------------------------------------------------------------

    def node_depths(self) -> list[int]:
        """Depth of every node, root = 1 (paper counting, leaf level last)."""
        depths: list[int] = []
        stack: list[tuple[_Node, int]] = [(self._root, 1)]
        while stack:
            node, level = stack.pop()
            depths.append(level)
            for child in node.children.values():
                stack.append((child, level + 1))
        return depths

    def leaf_groups(self) -> list[list[int]]:
        """Group ids per populated leaf, for invariant checks."""
        leaves: list[list[int]] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.groups:
                leaves.append([group.group_id for group in node.groups])
            stack.extend(node.children.values())
        return leaves


class DrainParser(LogParser):
    """Drain under the standard batch contract (§II-C).

    Each :meth:`parse` call feeds the (preprocessed, tokenized) lines
    through a fresh :class:`DrainTree` in input order and reports the
    final group templates — deterministic for a given input sequence,
    no randomness, never an outlier (every line founds a group if
    nothing absorbs it, exactly like the original tool).

    Args:
        depth: fixed tree depth (see :class:`DrainTree`).
        sim_threshold: similarity threshold in (0, 1).
        max_children: branch bound per tree node.
        preprocessor: optional domain-knowledge preprocessing.
    """

    name = "Drain"

    def __init__(
        self,
        depth: int = 4,
        sim_threshold: float = 0.4,
        max_children: int = 100,
        preprocessor=None,
    ) -> None:
        super().__init__(preprocessor=preprocessor)
        # Validate eagerly: a bad configuration should fail at
        # construction, not at the first parse.
        DrainTree(
            depth=depth,
            sim_threshold=sim_threshold,
            max_children=max_children,
        )
        self.depth = depth
        self.sim_threshold = sim_threshold
        self.max_children = max_children

    def tree(self) -> DrainTree:
        """A fresh incremental tree with this parser's configuration."""
        return DrainTree(
            depth=self.depth,
            sim_threshold=self.sim_threshold,
            max_children=self.max_children,
        )

    def _cluster(self, token_lists: list[list[str]]) -> Clustering:
        tree = self.tree()
        labels = [tree.feed(tokens) for tokens in token_lists]
        return Clustering(labels=labels, templates=tree.templates())
