"""The metrics registry: labeled counters, gauges, and histograms.

Zero-dependency, deterministic, and cheap: a
:class:`MetricsRegistry` is a named map of metric *families*
(counter / gauge / histogram), each family keyed by a fixed tuple of
label names and holding one child per label-value combination.  The
registry exists so every subsystem of the runtime — streaming engine,
supervisor, degradation ladder, quarantine, checkpointing — reports
through **one** schema instead of each printing its own arithmetic
(ISSUE 4; the measurement discipline argued by Zhu et al.'s
benchmarking study).

Design points:

* **Naming scheme** ``repro_<subsystem>_<quantity>[_<unit>|_total]``,
  Prometheus-compatible (see :mod:`repro.observability.exporters` for
  the text exposition).
* **Collectors**: hot paths that already count internally (the
  template cache's hit counters, the engine's line counter) are not
  double-instrumented; instead a *collector callback* registered via
  :meth:`MetricsRegistry.register_collector` syncs those source-of-
  truth counters into the registry right before any snapshot or
  export.  The fast path therefore pays nothing for these metrics.
* **Histograms** use fixed upper-bound buckets (``le`` semantics:
  an observation equal to a boundary lands in that boundary's
  bucket) with quantile estimation by linear interpolation inside
  the winning bucket, so ``quantile(1.0)`` of observations sitting
  exactly on a boundary returns that boundary exactly.
* **Time series**: :meth:`MetricsRegistry.snapshot` flattens every
  sample into a dict and appends it to a bounded in-memory ring
  buffer, so a long run keeps a trajectory (lines/s over time, cache
  hit-rate warm-up curves) without unbounded growth.
* **Injectable clock** so tests assert exact timestamps.
"""

from __future__ import annotations

import math
import re
import time
from collections import deque
from collections.abc import Callable, Iterable, Sequence

from repro.common.errors import ValidationError

#: Valid Prometheus metric and label names.
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Metric family kinds.
KIND_COUNTER = "counter"
KIND_GAUGE = "gauge"
KIND_HISTOGRAM = "histogram"

#: Default latency buckets (seconds): sub-millisecond flushes up to
#: multi-second full re-parses.
DEFAULT_LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

#: Default size buckets (records per batch).
DEFAULT_SIZE_BUCKETS = (
    1.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1_000.0, 2_500.0, 5_000.0, 10_000.0,
)


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValidationError(f"invalid metric name {name!r}")
    return name


def _check_labels(labelnames: Sequence[str]) -> tuple[str, ...]:
    names = tuple(labelnames)
    for label in names:
        if not _LABEL_RE.match(label):
            raise ValidationError(f"invalid label name {label!r}")
    if len(set(names)) != len(names):
        raise ValidationError(f"duplicate label names in {names}")
    return names


class Counter:
    """One monotonically-growing child value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValidationError(
                f"counters only go up; use a gauge (got {amount})"
            )
        self.value += amount

    def sync(self, value: float) -> None:
        """Adopt an externally-maintained cumulative value.

        Used by collector callbacks mirroring a source-of-truth counter
        (e.g. the template cache's own hit tallies) so the hot path is
        never double-instrumented.
        """
        self.value = float(value)


class Gauge:
    """One freely-moving child value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram child with quantile summaries.

    Args:
        buckets: strictly-increasing finite upper bounds.  A final
            ``+Inf`` bucket is implicit.  An observation ``v`` lands in
            the first bucket whose upper bound satisfies ``v <= ub``.
    """

    __slots__ = ("buckets", "counts", "inf_count", "sum", "count")

    def __init__(self, buckets: Sequence[float]) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValidationError("histogram needs >= 1 finite bucket")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValidationError(
                f"histogram buckets must strictly increase, got {bounds}"
            )
        if any(math.isinf(b) or math.isnan(b) for b in bounds):
            raise ValidationError(
                "histogram buckets must be finite (+Inf is implicit)"
            )
        self.buckets = bounds
        self.counts = [0] * len(bounds)
        self.inf_count = 0
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                return
        self.inf_count += 1

    def cumulative(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ``+Inf`` last."""
        pairs: list[tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.buckets, self.counts):
            running += count
            pairs.append((bound, running))
        pairs.append((math.inf, running + self.inf_count))
        return pairs

    def quantile(self, q: float) -> float | None:
        """Estimate the *q*-quantile, ``None`` for an empty histogram.

        Linear interpolation inside the winning bucket (lower edge 0
        for the first bucket — observations are assumed non-negative,
        which holds for every duration/size metric in this runtime).
        Targets resolving past the last finite bucket return its upper
        bound: the histogram cannot see further.
        """
        if not 0.0 <= q <= 1.0:
            raise ValidationError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return None
        target = q * self.count
        running = 0
        lower = 0.0
        for bound, count in zip(self.buckets, self.counts):
            if count and target <= running + count:
                fraction = (target - running) / count
                return lower + fraction * (bound - lower)
            running += count
            lower = bound
        return self.buckets[-1]

    def state(self) -> dict:
        """JSON-ready snapshot of the histogram's observations.

        The cross-process sync path: shard workers ship this on their
        heartbeat/checkpoint messages and the supervisor adopts (or
        merges) it into the parent registry with :meth:`sync_state`.
        """
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "inf": self.inf_count,
            "sum": self.sum,
            "count": self.count,
        }

    def sync_state(self, state: dict) -> None:
        """Adopt an externally-maintained :meth:`state` wholesale.

        The histogram analogue of :meth:`Counter.sync` — a collector
        or supervisor mirroring a source-of-truth histogram (a worker
        subprocess's) replaces this child's observations with it.
        """
        if tuple(float(b) for b in state["buckets"]) != self.buckets:
            raise ValidationError(
                f"histogram bucket mismatch: have {self.buckets}, "
                f"state carries {tuple(state['buckets'])}"
            )
        self.counts = [int(c) for c in state["counts"]]
        self.inf_count = int(state["inf"])
        self.sum = float(state["sum"])
        self.count = int(state["count"])


def merge_histogram_states(base: dict | None, extra: dict | None) -> dict | None:
    """Sum two :meth:`Histogram.state` snapshots bucket-by-bucket.

    Supervisors accumulate across worker *lives*: each incarnation's
    local histograms restart at zero, so the parent folds the last
    state a dead worker shipped into a base and merges the live
    worker's state on top.  Either side may be ``None`` (no
    observations yet).
    """
    if base is None:
        return dict(extra) if extra is not None else None
    if extra is None:
        return dict(base)
    if list(base["buckets"]) != list(extra["buckets"]):
        raise ValidationError(
            "cannot merge histograms with different buckets: "
            f"{base['buckets']} vs {extra['buckets']}"
        )
    return {
        "buckets": list(base["buckets"]),
        "counts": [
            int(a) + int(b)
            for a, b in zip(base["counts"], extra["counts"])
        ],
        "inf": int(base["inf"]) + int(extra["inf"]),
        "sum": float(base["sum"]) + float(extra["sum"]),
        "count": int(base["count"]) + int(extra["count"]),
    }


class MetricFamily:
    """One named metric with a fixed label schema and typed children."""

    def __init__(
        self,
        name: str,
        kind: str,
        help_text: str,
        labelnames: Sequence[str],
        buckets: Sequence[float] | None = None,
    ) -> None:
        self.name = _check_name(name)
        self.kind = kind
        self.help = help_text
        self.labelnames = _check_labels(labelnames)
        self._buckets = tuple(buckets) if buckets is not None else None
        self._children: dict[tuple[str, ...], object] = {}

    def _make_child(self):
        if self.kind == KIND_COUNTER:
            return Counter()
        if self.kind == KIND_GAUGE:
            return Gauge()
        return Histogram(self._buckets or DEFAULT_LATENCY_BUCKETS)

    def labels(self, **labelvalues: str):
        """The child for this label-value combination (created lazily)."""
        if set(labelvalues) != set(self.labelnames):
            raise ValidationError(
                f"metric {self.name} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}"
            )
        key = tuple(str(labelvalues[label]) for label in self.labelnames)
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = self._make_child()
        return child

    def _default_child(self):
        if self.labelnames:
            raise ValidationError(
                f"metric {self.name} is labeled {self.labelnames}; "
                "use .labels(...)"
            )
        return self.labels()

    # Unlabeled convenience passthroughs -------------------------------

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default_child().dec(amount)

    def set(self, value: float) -> None:
        self._default_child().set(value)

    def sync(self, value: float) -> None:
        self._default_child().sync(value)

    def observe(self, value: float) -> None:
        self._default_child().observe(value)

    def quantile(self, q: float) -> float | None:
        return self._default_child().quantile(q)

    @property
    def value(self) -> float:
        return self._default_child().value

    def children(self) -> Iterable[tuple[tuple[str, ...], object]]:
        """A point-in-time list of ``(label key, child)`` pairs.

        A *copy*, not a live view: the HTTP scrape endpoint iterates
        families from its own thread while ingest threads materialize
        new label children, and ``list(dict.items())`` is atomic under
        the GIL where iterating a growing view is not.
        """
        return list(self._children.items())


class MetricsRegistry:
    """Process-local registry of metric families plus a snapshot ring.

    Args:
        clock: monotonic time source stamped onto snapshots
            (injectable so tests stay deterministic).
        ring_capacity: snapshots retained by the in-memory time-series
            ring buffer.
    """

    def __init__(
        self,
        clock: Callable[[], float] = time.monotonic,
        ring_capacity: int = 256,
    ) -> None:
        if ring_capacity < 1:
            raise ValidationError(
                f"ring_capacity must be >= 1, got {ring_capacity}"
            )
        self._clock = clock
        self._families: dict[str, MetricFamily] = {}
        self._collectors: list[Callable[[], None]] = []
        self._ring: deque[dict] = deque(maxlen=ring_capacity)

    # -- registration ---------------------------------------------------

    def _register(
        self,
        name: str,
        kind: str,
        help_text: str,
        labelnames: Sequence[str],
        buckets: Sequence[float] | None = None,
    ) -> MetricFamily:
        existing = self._families.get(name)
        if existing is not None:
            if existing.kind != kind or existing.labelnames != tuple(labelnames):
                raise ValidationError(
                    f"metric {name} already registered as {existing.kind}"
                    f"{existing.labelnames}, cannot re-register as "
                    f"{kind}{tuple(labelnames)}"
                )
            return existing
        family = MetricFamily(name, kind, help_text, labelnames, buckets)
        self._families[name] = family
        return family

    def counter(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        return self._register(name, KIND_COUNTER, help_text, labelnames)

    def gauge(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        return self._register(name, KIND_GAUGE, help_text, labelnames)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> MetricFamily:
        return self._register(
            name, KIND_HISTOGRAM, help_text, labelnames, buckets
        )

    def register_collector(self, collector: Callable[[], None]) -> None:
        """Add a callback syncing source-of-truth counters before reads."""
        self._collectors.append(collector)

    # -- reads ----------------------------------------------------------

    def collect(self) -> None:
        """Run every collector so the registry reflects live state."""
        for collector in self._collectors:
            collector()

    def families(self) -> list[MetricFamily]:
        return list(self._families.values())

    def get(self, name: str) -> MetricFamily | None:
        return self._families.get(name)

    def value(self, name: str, **labelvalues: str) -> float:
        """One collected sample value (0.0 when the child never fired).

        The canonical read path for anything rendering a summary: the
        CLI's hit-rate and lines/s lines read here rather than keeping
        private arithmetic.
        """
        self.collect()
        family = self._families.get(name)
        if family is None:
            return 0.0
        key = tuple(
            str(labelvalues[label]) for label in family.labelnames
            if label in labelvalues
        )
        if len(key) != len(family.labelnames):
            raise ValidationError(
                f"metric {name} takes labels {family.labelnames}"
            )
        child = dict(family.children()).get(key)
        if child is None:
            return 0.0
        if isinstance(child, Histogram):
            return float(child.count)
        return child.value

    def samples(self) -> dict[str, float]:
        """Flatten every child into ``name{label="v"} -> value``.

        Histograms contribute ``_sum``/``_count`` plus per-bucket
        cumulative samples, mirroring the exposition format.
        """
        self.collect()
        flat: dict[str, float] = {}
        for family in self._families.values():
            for key, child in family.children():
                labels = _label_suffix(family.labelnames, key)
                if isinstance(child, Histogram):
                    for bound, cumulative in child.cumulative():
                        le = "+Inf" if math.isinf(bound) else _format_value(bound)
                        flat[
                            f"{family.name}_bucket"
                            + _label_suffix(
                                family.labelnames + ("le",), key + (le,)
                            )
                        ] = float(cumulative)
                    flat[f"{family.name}_sum{labels}"] = child.sum
                    flat[f"{family.name}_count{labels}"] = float(child.count)
                else:
                    flat[f"{family.name}{labels}"] = child.value
        return flat

    # -- time series ----------------------------------------------------

    def snapshot(self) -> dict:
        """Capture all samples now; append to the ring buffer."""
        entry = {"t": self._clock(), "samples": self.samples()}
        self._ring.append(entry)
        return entry

    def ring(self) -> list[dict]:
        """The retained snapshot time series, oldest first."""
        return list(self._ring)

    def series(self, sample_name: str) -> list[tuple[float, float]]:
        """``(t, value)`` trajectory of one flattened sample name."""
        return [
            (entry["t"], entry["samples"][sample_name])
            for entry in self._ring
            if sample_name in entry["samples"]
        ]


def _format_value(value: float) -> str:
    """Shortest faithful decimal rendering (Prometheus-style)."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _label_suffix(labelnames: Sequence[str], key: Sequence[str]) -> str:
    if not labelnames:
        return ""
    inner = ",".join(
        f'{label}="{escape_label_value(value)}"'
        for label, value in zip(labelnames, key)
    )
    return "{" + inner + "}"
