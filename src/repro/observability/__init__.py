"""Unified telemetry: metrics registry, pipeline tracing, run reports.

The cross-cutting measurement layer of ISSUE 4.  See DESIGN.md §8 for
the observability model (metric naming scheme, span taxonomy, exporter
formats).
"""

from repro.observability.alerts import (
    AlertEngine,
    AlertEvent,
    BurnRateRule,
    ThresholdRule,
    default_rules,
    load_alerts,
)
from repro.observability.events import EventLog, load_events
from repro.observability.exporters import (
    export_metrics,
    parse_prometheus,
    render_json_snapshot,
    render_prometheus,
)
from repro.observability.httpd import (
    PROMETHEUS_CONTENT_TYPE,
    TelemetryServer,
)
from repro.observability.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    merge_histogram_states,
)
from repro.observability.report import (
    format_stream_summary,
    render_run_report,
    summary_from_registry,
)
from repro.observability.telemetry import Telemetry
from repro.observability.tracing import (
    SPAN_CHUNK,
    SPAN_PARSE_RUN,
    SPAN_PARSER_CALL,
    Span,
    Tracer,
    load_jsonl_spans,
)

__all__ = [
    "AlertEngine",
    "AlertEvent",
    "BurnRateRule",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "PROMETHEUS_CONTENT_TYPE",
    "SPAN_CHUNK",
    "SPAN_PARSE_RUN",
    "SPAN_PARSER_CALL",
    "Span",
    "Telemetry",
    "TelemetryServer",
    "ThresholdRule",
    "Tracer",
    "default_rules",
    "export_metrics",
    "format_stream_summary",
    "load_alerts",
    "load_events",
    "load_jsonl_spans",
    "merge_histogram_states",
    "parse_prometheus",
    "render_json_snapshot",
    "render_prometheus",
    "render_run_report",
    "summary_from_registry",
]
