"""Unified telemetry: metrics registry, pipeline tracing, run reports.

The cross-cutting measurement layer of ISSUE 4.  See DESIGN.md §8 for
the observability model (metric naming scheme, span taxonomy, exporter
formats).
"""

from repro.observability.events import EventLog, load_events
from repro.observability.exporters import (
    export_metrics,
    parse_prometheus,
    render_json_snapshot,
    render_prometheus,
)
from repro.observability.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
)
from repro.observability.report import (
    format_stream_summary,
    render_run_report,
    summary_from_registry,
)
from repro.observability.telemetry import Telemetry
from repro.observability.tracing import (
    SPAN_CHUNK,
    SPAN_PARSE_RUN,
    SPAN_PARSER_CALL,
    Span,
    Tracer,
    load_jsonl_spans,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "SPAN_CHUNK",
    "SPAN_PARSE_RUN",
    "SPAN_PARSER_CALL",
    "Span",
    "Telemetry",
    "Tracer",
    "export_metrics",
    "format_stream_summary",
    "load_events",
    "load_jsonl_spans",
    "parse_prometheus",
    "render_json_snapshot",
    "render_prometheus",
    "render_run_report",
    "summary_from_registry",
]
