"""The live telemetry plane's HTTP endpoint: /metrics, /healthz, /status.

Until this module, every telemetry artifact was batch-shaped — written
at end-of-run by ``--metrics-out`` and friends — so a long ``serve``
run was a black box until it exited.  :class:`TelemetryServer` embeds
a zero-dependency scrape endpoint (stdlib :mod:`http.server` on a
daemon thread) beside any long-running command:

* ``GET /metrics`` — the registry as Prometheus text exposition,
  rendered by the same
  :func:`~repro.observability.exporters.render_prometheus` the export
  path uses, so a mid-run scrape and the end-of-run artifact are the
  same format and pass the same strict
  :func:`~repro.observability.exporters.parse_prometheus` validator.
* ``GET /healthz`` — liveness/readiness with proper status-code
  semantics: 200 while every shard is healthy, **503** the moment any
  shard is fenced or has an open breaker (the *health callable*
  decides; the endpoint only maps ``ok`` to the code).
* ``GET /status`` — a JSON snapshot equivalent to
  :func:`~repro.service.workers.supervisor_status`, the machine face
  of the ``serve --status-interval`` line; the ``watch`` CLI
  subcommand polls it to render its per-tenant table.

Scrapes run on server threads *concurrently with ingest*.  That is
safe by design, not by luck: the registry's read path copies family
children before iterating (:meth:`MetricFamily.children`), collectors
only sync plain source-of-truth counters, and no collector takes a
shard lock — so a scrape can observe a histogram mid-observation
(bucket counts remain cumulative by construction) but can never
deadlock or corrupt the hot path.  The binding contract is the same
as :class:`~repro.service.server.LineServer`: port 0 picks a free
port, published via :attr:`TelemetryServer.port` after ``start()``.
"""

from __future__ import annotations

import json
import threading
import time
from collections.abc import Callable
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.common.errors import ValidationError
from repro.common.net import retry_eaddrinuse
from repro.observability.exporters import render_prometheus
from repro.observability.metrics import MetricsRegistry

#: Content type of the Prometheus text exposition (version pinned —
#: the format ``render_prometheus`` emits).
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Paths the endpoint serves.
PATH_METRICS = "/metrics"
PATH_HEALTHZ = "/healthz"
PATH_STATUS = "/status"


class _TelemetryHandler(BaseHTTPRequestHandler):
    """One request: route, render, reply.  Never raises outward."""

    # Injected by TelemetryServer via the server instance.
    server_version = "repro-telemetry/1.0"
    protocol_version = "HTTP/1.1"

    def do_GET(self) -> None:  # noqa: N802 - http.server contract
        try:
            path = self.path.split("?", 1)[0].rstrip("/") or "/"
            if path == PATH_METRICS:
                body = render_prometheus(self.server.registry).encode("utf-8")
                self._reply(200, PROMETHEUS_CONTENT_TYPE, body)
            elif path == PATH_HEALTHZ:
                health = self.server.health_callable()
                code = 200 if health.get("ok", False) else 503
                self._reply_json(code, health)
            elif path == PATH_STATUS:
                self._reply_json(200, self.server.status_callable())
            else:
                self._reply_json(
                    404,
                    {
                        "error": f"unknown path {path!r}",
                        "paths": [PATH_METRICS, PATH_HEALTHZ, PATH_STATUS],
                    },
                )
        except Exception as error:  # noqa: BLE001 - keep the endpoint alive
            # A scrape must never take the service down; surface the
            # failure to the scraper and keep serving.
            try:
                self._reply_json(
                    500, {"error": f"{type(error).__name__}: {error}"}
                )
            except OSError:  # pragma: no cover - peer already gone
                pass

    def _reply(self, code: int, content_type: str, body: bytes) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _reply_json(self, code: int, payload: dict) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self._reply(code, "application/json; charset=utf-8", body)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Silence per-request stderr chatter (scrapes are frequent)."""


class TelemetryServer:
    """Embedded scrape endpoint over one :class:`MetricsRegistry`.

    Args:
        registry: the registry ``/metrics`` renders.
        host / port: bind address; port 0 picks a free port,
            published via :attr:`port` after :meth:`start`.
        status: zero-argument callable returning the JSON-ready dict
            ``/status`` serves (default: empty dict).
        health: zero-argument callable returning a JSON-ready dict
            with at least ``{"ok": bool}``; ``ok`` False maps to 503
            (default: always ok — a bare stream has no shards to
            fence).

    The server runs ``serve_forever`` on a daemon thread
    (:class:`ThreadingHTTPServer`, one thread per request), so a slow
    scraper never stalls ingest and process exit never hangs on it.
    Usable as a context manager.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        status: Callable[[], dict] | None = None,
        health: Callable[[], dict] | None = None,
        bind_retries: int = 5,
        bind_backoff: float = 0.05,
        sleep=None,
    ) -> None:
        self.registry = registry
        self.host = host
        self.port = port
        self.bind_retries = bind_retries
        self.bind_backoff = bind_backoff
        self._sleep = sleep or time.sleep
        self._status = status or (lambda: {})
        self._health = health or (lambda: {"ok": True})
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    def start(self) -> None:
        if self._httpd is not None:
            raise ValidationError("telemetry server already started")
        # A rapid serve restart can race the previous life's lingering
        # socket; absorb the EADDRINUSE window instead of dying on it.
        httpd = retry_eaddrinuse(
            lambda: ThreadingHTTPServer(
                (self.host, self.port), _TelemetryHandler
            ),
            retries=self.bind_retries,
            backoff=self.bind_backoff,
            sleep=self._sleep,
        )
        httpd.daemon_threads = True
        # The handler reaches these through its ``server`` attribute.
        httpd.registry = self.registry
        httpd.status_callable = self._status
        httpd.health_callable = self._health
        self.port = httpd.server_address[1]
        self._httpd = httpd
        self._thread = threading.Thread(
            target=httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name=f"telemetry-httpd-{self.port}",
            daemon=True,
        )
        self._thread.start()

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def __enter__(self) -> "TelemetryServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
