"""Registry exporters: Prometheus text exposition and JSON snapshot.

``render_prometheus`` emits the standard text format (``# HELP`` /
``# TYPE`` headers, ``_bucket{le=...}`` / ``_sum`` / ``_count``
histogram series) so the artifact drops straight into any Prometheus
tooling.  ``parse_prometheus`` is the matching strict reader — CI's
telemetry smoke job round-trips the exposition through it to prove the
artifact is well-formed, and tests use it for exact sample assertions.
``render_json_snapshot`` is the machine-readable run artifact: flat
samples plus the in-memory ring-buffer time series.
"""

from __future__ import annotations

import json
import math
import re

from repro.common.errors import ValidationError
from repro.resilience.durability import atomic_write_text
from repro.observability.metrics import (
    Histogram,
    MetricsRegistry,
    _format_value,
    _label_suffix,
)

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)$"
)
_LABEL_PAIR_RE = re.compile(
    r'(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"'
)


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry as Prometheus text exposition format."""
    registry.collect()
    lines: list[str] = []
    for family in registry.families():
        lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for key, child in sorted(family.children()):
            suffix = _label_suffix(family.labelnames, key)
            if isinstance(child, Histogram):
                for bound, cumulative in child.cumulative():
                    le = "+Inf" if math.isinf(bound) else _format_value(bound)
                    bucket_suffix = _label_suffix(
                        family.labelnames + ("le",), key + (le,)
                    )
                    lines.append(
                        f"{family.name}_bucket{bucket_suffix} {cumulative}"
                    )
                lines.append(
                    f"{family.name}_sum{suffix} {_format_value(child.sum)}"
                )
                lines.append(f"{family.name}_count{suffix} {child.count}")
            else:
                lines.append(
                    f"{family.name}{suffix} {_format_value(child.value)}"
                )
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> dict:
    """Strictly parse a text exposition back into structured form.

    Returns ``{"types": {name: kind}, "help": {name: text},
    "samples": {sample_string: value}}`` where ``sample_string`` is the
    raw ``name{labels}`` form.  Raises :class:`ValidationError` on any
    malformed line, unknown sample prefix, or histogram whose bucket
    counts are not monotonically non-decreasing — this is the CI
    validity check for the exported artifact.
    """
    types: dict[str, str] = {}
    help_texts: dict[str, str] = {}
    samples: dict[str, float] = {}
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip()
        if not line:
            continue
        if line.startswith("# HELP "):
            rest = line[len("# HELP "):]
            name, _, help_text = rest.partition(" ")
            help_texts[name] = help_text
            continue
        if line.startswith("# TYPE "):
            rest = line[len("# TYPE "):]
            name, _, kind = rest.partition(" ")
            if kind not in ("counter", "gauge", "histogram"):
                raise ValidationError(
                    f"line {line_no}: unknown metric type {kind!r}"
                )
            types[name] = kind
            continue
        if line.startswith("#"):
            raise ValidationError(
                f"line {line_no}: unknown comment directive: {line!r}"
            )
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValidationError(f"line {line_no}: malformed sample: {line!r}")
        name = match.group("name")
        labels_text = match.group("labels")
        if labels_text:
            consumed = _LABEL_PAIR_RE.sub("", labels_text).replace(",", "")
            if consumed.strip():
                raise ValidationError(
                    f"line {line_no}: malformed labels: {{{labels_text}}}"
                )
        try:
            value = float(match.group("value"))
        except ValueError as exc:
            raise ValidationError(
                f"line {line_no}: non-numeric value: {line!r}"
            ) from exc
        base = _base_name(name)
        if base not in types:
            raise ValidationError(
                f"line {line_no}: sample {name!r} has no # TYPE header"
            )
        key = f"{name}{{{labels_text}}}" if labels_text else name
        samples[key] = value
    _check_histograms(types, samples)
    return {"types": types, "help": help_texts, "samples": samples}


def _base_name(sample_name: str) -> str:
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            trimmed = sample_name[: -len(suffix)]
            if trimmed:
                return trimmed
    return sample_name


def _check_histograms(types: dict[str, str], samples: dict[str, float]) -> None:
    """Bucket counts must be cumulative and capped by ``_count``."""
    for name, kind in types.items():
        if kind != "histogram":
            continue
        by_series: dict[str, list[tuple[float, float]]] = {}
        prefix = f"{name}_bucket"
        for sample, value in samples.items():
            if not sample.startswith(prefix):
                continue
            labels_text = sample[len(prefix):].strip("{}")
            pairs = dict(
                (m.group("name"), m.group("value"))
                for m in _LABEL_PAIR_RE.finditer(labels_text)
            )
            le_text = pairs.pop("le", None)
            if le_text is None:
                raise ValidationError(f"bucket sample missing le: {sample}")
            le = math.inf if le_text == "+Inf" else float(le_text)
            series_key = json.dumps(sorted(pairs.items()))
            by_series.setdefault(series_key, []).append((le, value))
        for series_key, buckets in by_series.items():
            buckets.sort(key=lambda pair: pair[0])
            counts = [count for _, count in buckets]
            if any(b < a for a, b in zip(counts, counts[1:])):
                raise ValidationError(
                    f"histogram {name} buckets not cumulative: {counts}"
                )
            if not buckets or not math.isinf(buckets[-1][0]):
                raise ValidationError(
                    f"histogram {name} is missing its +Inf bucket"
                )


def render_json_snapshot(registry: MetricsRegistry) -> str:
    """Flat samples plus the retained time-series ring, as JSON."""
    snapshot = {
        "samples": registry.samples(),
        "series": registry.ring(),
    }
    return json.dumps(snapshot, indent=2, sort_keys=True)


def export_metrics(
    registry: MetricsRegistry, path: str, *, io=None, telemetry=None
) -> None:
    """Write the registry to ``path``; ``.json`` selects the JSON
    snapshot, anything else the Prometheus exposition.

    The write is atomic (temp file, fsync, rename): the ``finally``
    blocks that export telemetry from failing runs can no longer
    leave a half-written exposition shadowing a previous good one —
    the old artifact survives unless the new one commits completely.
    """
    if path.endswith(".json"):
        text = render_json_snapshot(registry)
    else:
        text = render_prometheus(registry)
    atomic_write_text(path, text, io=io, telemetry=telemetry)
