"""Alert rules over the live registry: thresholds and burn rates.

The telemetry plane's decision layer.  An :class:`AlertEngine` holds a
small set of rules, re-evaluates them against the metrics registry on
a clock-injectable ticker, and turns state *transitions* — a rule
starting or stopping to fire — into :class:`AlertEvent` records.
Events land in two places: the run's shared event timeline (so
post-mortems interleave alerts with restarts and ladder steps) and an
optional dedicated alert log with the same durability contract as
quarantine — length+CRC32-framed JSONL via
:class:`~repro.observability.events.EventLog`'s durable writer, so a
crash mid-append recovers to the last complete alert instead of a torn
tail.

Two rule shapes cover the service's SLOs:

* :class:`ThresholdRule` — classic "metric over limit for N seconds",
  evaluated per label child (each tenant alerts independently).  Used
  for worker heartbeat stalls and queue floods.
* :class:`BurnRateRule` — Google-SRE-style multi-window error-budget
  burn.  Over a sliding window the rule tracks an error counter
  against a total counter; the *burn rate* is the observed error
  ratio divided by the budget the SLO objective leaves
  (``(Δerr/Δtotal) / (1 - objective)``).  The rule fires only when
  **both** a fast and a slow window burn faster than ``factor`` — the
  fast window makes detection quick, the slow window stops a brief
  blip from paging.  The rule also publishes
  ``repro_tenant_error_budget_remaining`` per tenant: the fraction of
  the slow window's error budget still unspent.

Everything is deterministic under an injected clock: tests drive
``tick()`` by hand with a fake clock and assert exact transitions.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.common.errors import ValidationError
from repro.observability.events import EventLog, load_events
from repro.observability.metrics import Histogram, MetricsRegistry

#: Alert lifecycle states.
STATE_FIRING = "firing"
STATE_RESOLVED = "resolved"

#: Severities (labels on the alert, not behavior — there is no pager
#: here, only the durable record that one would have fired).
SEV_WARN = "warn"
SEV_PAGE = "page"

#: Comparison operators ThresholdRule accepts.
_OPS = {
    ">": lambda value, limit: value > limit,
    ">=": lambda value, limit: value >= limit,
    "<": lambda value, limit: value < limit,
    "<=": lambda value, limit: value <= limit,
}


@dataclass(frozen=True)
class AlertEvent:
    """One alert state transition, JSON-ready.

    ``state`` is ``firing`` on the breach transition and ``resolved``
    when the rule stops firing for the same label set.
    """

    rule: str
    state: str
    severity: str
    labels: dict
    value: float
    threshold: float
    detail: str
    at: float

    def to_record(self) -> dict:
        return {
            "kind": "alert",
            "rule": self.rule,
            "state": self.state,
            "severity": self.severity,
            "labels": dict(self.labels),
            "value": round(float(self.value), 6),
            "threshold": float(self.threshold),
            "detail": self.detail,
            "at": round(float(self.at), 6),
        }


@dataclass
class RuleResult:
    """One label set's evaluation: current value + firing verdict."""

    labels: dict
    value: float
    firing: bool
    budget_remaining: float | None = None


def _series(registry: MetricsRegistry, name: str) -> tuple[dict, tuple]:
    """``{label-key tuple: value}`` for one family (histogram → count)."""
    family = registry.get(name)
    if family is None:
        return {}, ()
    out = {}
    for key, child in family.children():
        if isinstance(child, Histogram):
            out[key] = float(child.count)
        else:
            out[key] = float(child.value)
    return out, family.labelnames


class ThresholdRule:
    """Fire when a metric child compares true against a limit.

    Args:
        name: rule name (the ``rule`` field of emitted events).
        metric: family name; every label child is evaluated
            independently.
        threshold / op: the comparison, e.g. ``value > 5.0``.
        for_seconds: the breach must hold continuously this long
            before the rule fires (0 = fire on first sight).
        severity: tag copied onto emitted events.
    """

    def __init__(
        self,
        name: str,
        metric: str,
        *,
        threshold: float,
        op: str = ">",
        for_seconds: float = 0.0,
        severity: str = SEV_WARN,
    ) -> None:
        if op not in _OPS:
            raise ValidationError(
                f"unknown op {op!r} (expected one of {sorted(_OPS)})"
            )
        if for_seconds < 0:
            raise ValidationError(
                f"for_seconds must be >= 0, got {for_seconds}"
            )
        self.name = name
        self.metric = metric
        self.threshold = float(threshold)
        self.op = op
        self.for_seconds = float(for_seconds)
        self.severity = severity
        self._breached_since: dict[tuple, float] = {}

    def describe(self, value: float) -> str:
        return (
            f"{self.metric} = {value:g} {self.op} {self.threshold:g} "
            f"for >= {self.for_seconds:g}s"
        )

    def evaluate(
        self, registry: MetricsRegistry, now: float
    ) -> list[RuleResult]:
        series, labelnames = _series(registry, self.metric)
        compare = _OPS[self.op]
        results = []
        for key, value in sorted(series.items()):
            if compare(value, self.threshold):
                since = self._breached_since.setdefault(key, now)
                firing = (now - since) >= self.for_seconds
            else:
                self._breached_since.pop(key, None)
                firing = False
            results.append(
                RuleResult(dict(zip(labelnames, key)), value, firing)
            )
        return results


class BurnRateRule:
    """Multi-window error-budget burn rate over two counter families.

    Args:
        name: rule name.
        numerator: counter family of *bad* events (e.g. quarantined
            records per tenant).
        denominator: counter family — or tuple of families, summed —
            of *all* events the objective is defined over.  Label sets
            are matched across families; a family missing a label set
            contributes 0.
        objective: SLO success ratio (0.99 = 1% error budget).
        fast_window / slow_window: sliding windows in seconds; both
            must burn at or above *factor* to fire.
        factor: burn-rate multiple that fires the alert (1.0 = budget
            spent exactly at the sustainable rate).
    """

    def __init__(
        self,
        name: str,
        numerator: str,
        denominator: str | Sequence[str],
        *,
        objective: float = 0.99,
        fast_window: float = 60.0,
        slow_window: float = 300.0,
        factor: float = 2.0,
        severity: str = SEV_PAGE,
    ) -> None:
        if not 0.0 < objective < 1.0:
            raise ValidationError(
                f"objective must be in (0, 1), got {objective}"
            )
        if fast_window <= 0 or slow_window <= 0:
            raise ValidationError("windows must be positive")
        if fast_window > slow_window:
            raise ValidationError(
                f"fast window ({fast_window}s) must not exceed the "
                f"slow window ({slow_window}s)"
            )
        self.name = name
        self.numerator = numerator
        self.denominators = (
            (denominator,) if isinstance(denominator, str)
            else tuple(denominator)
        )
        self.objective = float(objective)
        self.fast_window = float(fast_window)
        self.slow_window = float(slow_window)
        self.factor = float(factor)
        self.severity = severity
        self.threshold = self.factor
        self._windows: dict[tuple, deque] = {}

    def describe(self, value: float) -> str:
        return (
            f"error-budget burn {value:.2f}x >= {self.factor:g}x over "
            f"both {self.fast_window:g}s and {self.slow_window:g}s "
            f"windows (objective {self.objective})"
        )

    def _burn(self, window: deque, horizon: float, now: float) -> float:
        """Burn rate over ``[now - horizon, now]`` from the sample log."""
        latest_t, latest_num, latest_den = window[-1]
        base_num = base_den = None
        for t, num, den in window:
            if t >= now - horizon:
                base_num, base_den = num, den
                break
        if base_num is None or latest_t <= now - horizon:
            return 0.0
        delta_den = latest_den - base_den
        if delta_den <= 0:
            return 0.0
        ratio = max(0.0, latest_num - base_num) / delta_den
        return ratio / (1.0 - self.objective)

    def evaluate(
        self, registry: MetricsRegistry, now: float
    ) -> list[RuleResult]:
        num_series, num_labels = _series(registry, self.numerator)
        den_series: dict[tuple, float] = {}
        den_labels: tuple = num_labels
        for family in self.denominators:
            series, labels = _series(registry, family)
            if labels:
                den_labels = labels
            for key, value in series.items():
                den_series[key] = den_series.get(key, 0.0) + value
        labelnames = den_labels or num_labels
        results = []
        for key in sorted(set(num_series) | set(den_series)):
            num = num_series.get(key, 0.0)
            den = den_series.get(key, 0.0)
            window = self._windows.setdefault(
                key, deque()
            )
            window.append((now, num, den))
            while window and window[0][0] < now - self.slow_window:
                window.popleft()
            fast = self._burn(window, self.fast_window, now)
            slow = self._burn(window, self.slow_window, now)
            firing = fast >= self.factor and slow >= self.factor
            results.append(
                RuleResult(
                    dict(zip(labelnames, key)),
                    fast,
                    firing,
                    budget_remaining=max(0.0, 1.0 - slow),
                )
            )
        return results


class AlertEngine:
    """Evaluate rules on a ticker; persist every state transition.

    Args:
        registry: the metrics registry rules read (collectors run on
            every tick, so rules always see live values).
        rules: the rule set; :func:`default_rules` builds the
            service's standard one.
        clock: injectable monotonic time source.
        events: optional shared run timeline
            (:class:`~repro.observability.events.EventLog`) alerts are
            mirrored into.
        log_path: optional dedicated durable alert log (framed JSONL
            with torn-tail recovery on reopen); read back with
            :func:`load_alerts`.
        io: durability IO seam for the alert log.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        rules: Sequence[object],
        *,
        clock: Callable[[], float] = time.monotonic,
        events: EventLog | None = None,
        log_path: str | None = None,
        io=None,
    ) -> None:
        self.registry = registry
        self.rules = list(rules)
        self._clock = clock
        self._events = events
        self._log = (
            EventLog(clock=clock, path=log_path, io=io)
            if log_path is not None
            else None
        )
        self._active: dict[tuple, AlertEvent] = {}
        self._lock = threading.Lock()
        self._ticker: threading.Thread | None = None
        self._ticker_stop = threading.Event()
        self._alerts_total = registry.counter(
            "repro_alerts_total",
            "Alert state transitions by rule",
            labelnames=("rule", "state"),
        )
        self._alerts_active = registry.gauge(
            "repro_alerts_active", "Alert instances currently firing"
        )
        self._budget_gauge = registry.gauge(
            "repro_tenant_error_budget_remaining",
            "Fraction of the SLO error budget left in the slow window",
            labelnames=("tenant",),
        )

    # -- evaluation ----------------------------------------------------

    def tick(self) -> list[AlertEvent]:
        """Evaluate every rule once; returns the transitions emitted."""
        now = self._clock()
        self.registry.collect()
        emitted: list[AlertEvent] = []
        with self._lock:
            for rule in self.rules:
                for result in rule.evaluate(self.registry, now):
                    key = (
                        rule.name,
                        tuple(sorted(result.labels.items())),
                    )
                    if result.budget_remaining is not None and (
                        "tenant" in result.labels
                    ):
                        self._budget_gauge.labels(
                            tenant=result.labels["tenant"]
                        ).set(result.budget_remaining)
                    if result.firing and key not in self._active:
                        event = AlertEvent(
                            rule=rule.name,
                            state=STATE_FIRING,
                            severity=rule.severity,
                            labels=result.labels,
                            value=result.value,
                            threshold=rule.threshold,
                            detail=rule.describe(result.value),
                            at=now,
                        )
                        self._active[key] = event
                        self._persist(event)
                        emitted.append(event)
                    elif not result.firing and key in self._active:
                        del self._active[key]
                        event = AlertEvent(
                            rule=rule.name,
                            state=STATE_RESOLVED,
                            severity=rule.severity,
                            labels=result.labels,
                            value=result.value,
                            threshold=rule.threshold,
                            detail=rule.describe(result.value),
                            at=now,
                        )
                        self._persist(event)
                        emitted.append(event)
            self._alerts_active.set(float(len(self._active)))
        return emitted

    def _persist(self, event: AlertEvent) -> None:
        self._alerts_total.labels(rule=event.rule, state=event.state).inc()
        if self._log is not None:
            self._log.record(event)
        if self._events is not None:
            self._events.record(event)

    def active(self) -> list[dict]:
        """Currently-firing alerts, JSON-ready (served by ``/status``)."""
        with self._lock:
            return [
                event.to_record()
                for _, event in sorted(self._active.items())
            ]

    # -- ticker --------------------------------------------------------

    def start_ticker(self, interval: float) -> None:
        """Evaluate every *interval* seconds on a daemon thread."""
        if interval <= 0:
            raise ValidationError(
                f"alert interval must be positive, got {interval}"
            )
        if self._ticker is not None:
            raise ValidationError("alert ticker already running")
        self._ticker_stop.clear()

        def _loop() -> None:
            while not self._ticker_stop.wait(interval):
                self.tick()

        self._ticker = threading.Thread(
            target=_loop, name="alert-ticker", daemon=True
        )
        self._ticker.start()

    def close(self) -> None:
        """Stop the ticker (if any) and seal the alert log."""
        self._ticker_stop.set()
        if self._ticker is not None:
            self._ticker.join(timeout=5.0)
            self._ticker = None
        if self._log is not None:
            self._log.close()

    def __enter__(self) -> "AlertEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def default_rules(
    *,
    objective: float = 0.99,
    heartbeat_stall: float = 5.0,
    fast_window: float = 60.0,
    slow_window: float = 300.0,
    factor: float = 2.0,
) -> list:
    """The service's standard rule set.

    * a heartbeat-stall threshold per worker (a supervisor that has
      not heard from a worker in *heartbeat_stall* seconds — the
      watchdog will act, but the alert records that it had to);
    * a per-tenant error-budget burn rate: quarantined records against
      everything the shard ingested (parsed + quarantined), burning
      against *objective*.
    """
    return [
        ThresholdRule(
            "worker-heartbeat-stall",
            "repro_worker_heartbeat_age_seconds",
            threshold=heartbeat_stall,
            op=">",
            severity=SEV_WARN,
        ),
        BurnRateRule(
            "tenant-error-budget-burn",
            "repro_tenant_quarantined_total",
            (
                "repro_tenant_lines_total",
                "repro_tenant_quarantined_total",
            ),
            objective=objective,
            fast_window=fast_window,
            slow_window=slow_window,
            factor=factor,
            severity=SEV_PAGE,
        ),
    ]


def load_alerts(path: str, io=None) -> list[dict]:
    """Read back a durable alert log, recovering any torn tail first.

    The same crash-consistency contract as quarantine: a process that
    died mid-append leaves a torn frame, which recovery truncates back
    to the last complete alert before reading.
    """
    from repro.resilience.durability import recover_jsonl

    recover_jsonl(path, io=io)
    return [
        event for event in load_events(path) if event.get("kind") == "alert"
    ]
