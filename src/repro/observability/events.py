"""A structured event log: one interleaved timeline per run.

Quarantine records, degradation ladder steps, fallback attempts,
checkpoint saves — before this layer each subsystem kept its own audit
trail in its own shape.  :class:`EventLog` gives them one append-only
sequence of dicts with a shared envelope::

    {"seq": 12, "t": 3.81, "kind": "ladder_step", ...payload}

Any object exposing ``to_record() -> dict`` (``DegradationEvent``,
``FailureReport``, ``QuarantineRecord``) can be emitted directly with
:meth:`EventLog.record`; ad-hoc events go through :meth:`EventLog.emit`.
The log persists as length+CRC32-framed JSONL (see
:mod:`repro.resilience.durability`) so the ``report`` subcommand — or
plain ``grep``, the JSON payload stays on the line — can reconstruct
what happened in order, and a timeline torn by a crash recovers to
its last complete event instead of ending in garbage.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable

from repro.common.errors import ValidationError
from repro.resilience.durability import DurableJsonlWriter


class EventLog:
    """Append-only, sequence-numbered timeline of structured events.

    Args:
        clock: relative-seconds time source (injectable for tests).
            Timestamps are seconds since the log's creation.
        path: optional JSONL file; events are appended (framed, via
            the durable writer) as they arrive so a crashed run still
            leaves its timeline behind.  An existing file is appended
            to — timelines accumulate across a run's lives — after
            its torn tail, if any, is recovered.
        io: IO seam for fault injection (defaults to the real thing).
    """

    def __init__(
        self,
        clock: Callable[[], float] = time.monotonic,
        path: str | None = None,
        io=None,
    ) -> None:
        self._clock = clock
        self._epoch = clock()
        self._path = path
        self._io = io
        self._writer: DurableJsonlWriter | None = None
        self._seq = 0
        # Supervisor monitor threads (one per tenant), the alert
        # ticker, and connection threads all emit into one timeline;
        # the lock keeps sequence numbers unique and frames unsplit.
        self._emit_lock = threading.Lock()
        self.events: list[dict] = []

    def emit(self, kind: str, **fields) -> dict:
        """Append one event; returns the enveloped dict. Thread-safe."""
        if not kind:
            raise ValidationError("event kind must be non-empty")
        for reserved in ("seq", "t", "kind"):
            if reserved in fields:
                raise ValidationError(
                    f"field {reserved!r} is part of the event envelope"
                )
        with self._emit_lock:
            self._seq += 1
            event = {
                "seq": self._seq,
                "t": round(self._clock() - self._epoch, 6),
                "kind": kind,
            }
            event.update(fields)
            self.events.append(event)
            self._persist(event)
        return event

    def record(self, obj) -> dict:
        """Emit an object carrying its own ``to_record()`` shape.

        The record must provide a ``kind`` key — that is the common
        contract ``DegradationEvent.to_record()`` and
        ``FailureReport.to_record()`` satisfy.
        """
        payload = obj.to_record()
        kind = payload.pop("kind", None)
        if kind is None:
            raise ValidationError(
                f"{type(obj).__name__}.to_record() must include 'kind'"
            )
        return self.emit(kind, **payload)

    def _persist(self, event: dict) -> None:
        if self._path is None:
            return
        if self._writer is None:
            self._writer = DurableJsonlWriter(self._path, io=self._io)
        self._writer.append(event)

    def offset(self) -> tuple[int, int]:
        """``(bytes, records)`` durably framed on disk so far."""
        if self._writer is None:
            return 0, 0
        return self._writer.offset()

    def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            self._writer = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def of_kind(self, kind: str) -> list[dict]:
        return [event for event in self.events if event["kind"] == kind]

    def describe(self) -> str:
        if not self.events:
            return "event log: empty"
        kinds: dict[str, int] = {}
        for event in self.events:
            kinds[event["kind"]] = kinds.get(event["kind"], 0) + 1
        parts = ", ".join(
            f"{count} {kind}" for kind, count in sorted(kinds.items())
        )
        return f"event log: {len(self.events)} events ({parts})"


def load_events(path: str) -> list[dict]:
    """Read back an event log (used by ``repro report``).

    Accepts both the framed format the log writes and legacy plain
    JSONL files.
    """
    from repro.resilience.durability import read_jsonl_payloads

    return read_jsonl_payloads(path)
