"""A structured event log: one interleaved timeline per run.

Quarantine records, degradation ladder steps, fallback attempts,
checkpoint saves — before this layer each subsystem kept its own audit
trail in its own shape.  :class:`EventLog` gives them one append-only
sequence of dicts with a shared envelope::

    {"seq": 12, "t": 3.81, "kind": "ladder_step", ...payload}

Any object exposing ``to_record() -> dict`` (``DegradationEvent``,
``FailureReport``, ``QuarantineRecord``) can be emitted directly with
:meth:`EventLog.record`; ad-hoc events go through :meth:`EventLog.emit`.
The log persists as JSONL so the ``report`` subcommand — or plain
``grep`` — can reconstruct what happened in order.
"""

from __future__ import annotations

import json
import time
from collections.abc import Callable

from repro.common.errors import ValidationError


class EventLog:
    """Append-only, sequence-numbered timeline of structured events.

    Args:
        clock: relative-seconds time source (injectable for tests).
            Timestamps are seconds since the log's creation.
        path: optional JSONL file; events are appended as they arrive
            so a crashed run still leaves its timeline behind.
    """

    def __init__(
        self,
        clock: Callable[[], float] = time.monotonic,
        path: str | None = None,
    ) -> None:
        self._clock = clock
        self._epoch = clock()
        self._path = path
        self._handle = None
        self._seq = 0
        self.events: list[dict] = []

    def emit(self, kind: str, **fields) -> dict:
        """Append one event; returns the enveloped dict."""
        if not kind:
            raise ValidationError("event kind must be non-empty")
        for reserved in ("seq", "t", "kind"):
            if reserved in fields:
                raise ValidationError(
                    f"field {reserved!r} is part of the event envelope"
                )
        self._seq += 1
        event = {
            "seq": self._seq,
            "t": round(self._clock() - self._epoch, 6),
            "kind": kind,
        }
        event.update(fields)
        self.events.append(event)
        self._persist(event)
        return event

    def record(self, obj) -> dict:
        """Emit an object carrying its own ``to_record()`` shape.

        The record must provide a ``kind`` key — that is the common
        contract ``DegradationEvent.to_record()`` and
        ``FailureReport.to_record()`` satisfy.
        """
        payload = obj.to_record()
        kind = payload.pop("kind", None)
        if kind is None:
            raise ValidationError(
                f"{type(obj).__name__}.to_record() must include 'kind'"
            )
        return self.emit(kind, **payload)

    def _persist(self, event: dict) -> None:
        if self._path is None:
            return
        if self._handle is None:
            self._handle = open(self._path, "a", encoding="utf-8")
        self._handle.write(json.dumps(event, sort_keys=True) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def of_kind(self, kind: str) -> list[dict]:
        return [event for event in self.events if event["kind"] == kind]

    def describe(self) -> str:
        if not self.events:
            return "event log: empty"
        kinds: dict[str, int] = {}
        for event in self.events:
            kinds[event["kind"]] = kinds.get(event["kind"], 0) + 1
        parts = ", ".join(
            f"{count} {kind}" for kind, count in sorted(kinds.items())
        )
        return f"event log: {len(self.events)} events ({parts})"


def load_events(path: str) -> list[dict]:
    """Read back a JSONL event log (used by ``repro report``)."""
    events = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events
