"""Run summaries rendered from telemetry, not from scattered arithmetic.

Two layers live here:

* :func:`format_stream_summary` — the one formatter behind every
  "N lines | hit rate | lines/s" line the CLI prints.  ``stream``,
  ``supervise``, and ``soak`` all call it (directly or through
  ``SessionCounters.describe``), so their summaries can no longer
  drift apart, and :func:`summary_from_registry` derives the same line
  purely from :class:`~repro.observability.metrics.MetricsRegistry`
  samples — proof the registry carries everything the human summary
  needs.
* :func:`render_run_report` — the ``repro report`` subcommand's
  renderer: given exported metrics / trace / event files it produces a
  readable post-mortem of a run (throughput, cache behaviour, flush
  latency quantiles, span tree, event timeline).
"""

from __future__ import annotations

import json
import math

from repro.common.errors import DatasetError, ValidationError
from repro.observability.events import load_events
from repro.observability.metrics import Histogram, MetricsRegistry
from repro.observability.tracing import Span, load_jsonl_spans


def format_stream_summary(
    lines: int,
    events: int,
    exact_hits: int,
    template_hits: int,
    misses: int,
    flushes: int,
    lines_per_second: float,
    rejected: int = 0,
    shed: int = 0,
) -> str:
    """The canonical one-line stream summary.

    The hit rate is hits over cache *lookups* (hits + misses), matching
    ``StreamingCounters.hit_rate`` — flush retries re-probe the cache,
    so lookups and lines are not the same denominator.
    """
    seen = exact_hits + template_hits + misses
    hit_rate = (exact_hits + template_hits) / seen if seen else 0.0
    line = (
        f"{lines} lines | {events} events | "
        f"hit rate {hit_rate:.1%} ({exact_hits} exact, "
        f"{template_hits} template) | {flushes} flushes | "
        f"{lines_per_second:,.0f} lines/s"
    )
    if rejected:
        line += f" | {rejected} rejected"
    if shed:
        line += f" | {shed} shed"
    return line


def summary_from_registry(registry: MetricsRegistry) -> str:
    """The same summary line, read entirely from the registry."""
    lines = registry.value("repro_stream_lines_total")
    elapsed = registry.value("repro_run_elapsed_seconds")
    return format_stream_summary(
        lines=int(lines),
        events=int(registry.value("repro_stream_events")),
        exact_hits=int(registry.value("repro_cache_hits_total", kind="exact")),
        template_hits=int(
            registry.value("repro_cache_hits_total", kind="template")
        ),
        misses=int(registry.value("repro_cache_misses_total")),
        flushes=int(registry.value("repro_stream_flushes_total")),
        lines_per_second=lines / elapsed if elapsed > 0 else 0.0,
        rejected=int(registry.value("repro_stream_rejected_total")),
        shed=int(registry.value("repro_stream_shed_total")),
    )


# ---------------------------------------------------------------------------
# `repro report`: post-mortem rendering of exported artifacts
# ---------------------------------------------------------------------------


def _load_metric_samples(path: str) -> dict[str, float]:
    """Samples from either exporter format (.json snapshot or .prom)."""
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    if path.endswith(".json"):
        return dict(json.loads(text)["samples"])
    from repro.observability.exporters import parse_prometheus

    return dict(parse_prometheus(text)["samples"])


def _sample(samples: dict[str, float], name: str, default: float = 0.0) -> float:
    return samples.get(name, default)


def _histogram_quantiles(
    samples: dict[str, float], name: str, quantiles=(0.5, 0.9, 0.99)
) -> list[tuple[float, float]] | None:
    """Rebuild a (label-less) histogram from flat samples and query it."""
    prefix = f"{name}_bucket{{le=\""
    buckets: list[tuple[float, float]] = []
    for sample, value in samples.items():
        if sample.startswith(prefix):
            le_text = sample[len(prefix):].split('"', 1)[0]
            le = math.inf if le_text == "+Inf" else float(le_text)
            buckets.append((le, value))
    if not buckets:
        return None
    buckets.sort(key=lambda pair: pair[0])
    finite = [bound for bound, _ in buckets if not math.isinf(bound)]
    if not finite:
        return None
    histogram = Histogram(finite)
    previous = 0.0
    for index, (bound, cumulative) in enumerate(buckets):
        delta = int(cumulative - previous)
        previous = cumulative
        if math.isinf(bound):
            histogram.inf_count = delta
        else:
            histogram.counts[index] = delta
    histogram.count = int(buckets[-1][1])
    histogram.sum = _sample(samples, f"{name}_sum")
    if histogram.count == 0:
        return []
    return [(q, histogram.quantile(q)) for q in quantiles]


def _render_metrics_section(path: str) -> list[str]:
    samples = _load_metric_samples(path)
    lines_total = _sample(samples, "repro_stream_lines_total")
    elapsed = _sample(samples, "repro_run_elapsed_seconds")
    exact = _sample(samples, 'repro_cache_hits_total{kind="exact"}')
    template = _sample(samples, 'repro_cache_hits_total{kind="template"}')
    misses = _sample(samples, "repro_cache_misses_total")
    seen = exact + template + misses
    out = ["## Throughput"]
    rate = lines_total / elapsed if elapsed > 0 else 0.0
    out.append(
        f"  {int(lines_total)} lines in {elapsed:.2f}s "
        f"({rate:,.0f} lines/s), "
        f"{int(_sample(samples, 'repro_stream_events'))} events, "
        f"{int(_sample(samples, 'repro_stream_flushes_total'))} flushes"
    )
    out.append("## Cache")
    hit_rate = (exact + template) / seen if seen else 0.0
    out.append(
        f"  hit rate {hit_rate:.1%} ({int(exact)} exact, "
        f"{int(template)} template, {int(misses)} misses), "
        f"{int(_sample(samples, 'repro_cache_evictions_total'))} evictions"
    )
    quantiles = _histogram_quantiles(samples, "repro_stream_flush_seconds")
    if quantiles:
        rendered = ", ".join(
            f"p{int(q * 100)}={value * 1000:.1f}ms" for q, value in quantiles
        )
        out.append("## Flush latency")
        out.append(f"  {rendered}")
    interesting = {
        "repro_stream_outliers_total": "outliers",
        "repro_stream_rejected_total": "rejected",
        "repro_stream_shed_total": "shed",
        "repro_ladder_position": "final ladder rung index",
    }
    extras = [
        f"{label}: {int(samples[name])}"
        for name, label in interesting.items()
        if samples.get(name)
    ]
    quarantined = sum(
        value
        for sample, value in samples.items()
        if sample.startswith("repro_quarantine_records_total")
    )
    if quarantined:
        extras.append(f"quarantined: {int(quarantined)}")
    if extras:
        out.append("## Incidents")
        out.append("  " + ", ".join(extras))
    out.extend(_render_shard_section(samples))
    out.extend(_render_delivery_section(samples))
    return out


def _render_delivery_section(samples: dict[str, float]) -> list[str]:
    """Exactly-once delivery summary (protocol-v2 runs only)."""
    acked = _sample(samples, "repro_delivery_acked_total")
    resends = _sample(samples, "repro_delivery_resend_total")
    spool = _sample(samples, "repro_delivery_spool_depth")
    suppressed: dict[str, int] = {}
    prefix = "repro_delivery_duplicates_suppressed_total{"
    for sample, value in samples.items():
        if sample.startswith(prefix) and value:
            tenant = (
                sample[len(prefix):-1].replace('"', "").split("=", 1)[1]
            )
            suppressed[tenant] = int(value)
    if not acked and not resends and not suppressed:
        return []
    out = ["## Delivery"]
    out.append(
        f"  {int(acked)} ack(s) sent, {int(resends)} resend(s), "
        f"spool depth {int(spool)}"
    )
    if suppressed:
        detail = ", ".join(
            f"{tenant}: {count}"
            for tenant, count in sorted(suppressed.items())
        )
        out.append(f"  duplicates suppressed — {detail}")
    return out


def _render_shard_section(samples: dict[str, float]) -> list[str]:
    """Supervisor lifecycle summary (process-isolated runs only)."""
    restarts: dict[str, dict[str, int]] = {}
    poison: dict[str, int] = {}
    for sample, value in samples.items():
        if sample.startswith("repro_shard_restarts_total{") and value:
            labels = dict(
                part.split("=", 1)
                for part in sample[len("repro_shard_restarts_total{") : -1]
                .replace('"', "")
                .split(",")
            )
            tenant = labels.get("tenant", "?")
            restarts.setdefault(tenant, {})[
                labels.get("reason", "?")
            ] = int(value)
        elif sample.startswith("repro_shard_poison_records_total{") and value:
            tenant = (
                sample[len("repro_shard_poison_records_total{") : -1]
                .replace('"', "")
                .split("=", 1)[1]
            )
            poison[tenant] = int(value)
    if not restarts and not poison:
        return []
    out = ["## Shards"]
    for tenant in sorted(set(restarts) | set(poison)):
        parts = []
        reasons = restarts.get(tenant, {})
        if reasons:
            total = sum(reasons.values())
            detail = ", ".join(
                f"{count} {reason}"
                for reason, count in sorted(reasons.items())
            )
            parts.append(f"{total} restart(s) ({detail})")
        if tenant in poison:
            parts.append(f"{poison[tenant]} poison record(s)")
        out.append(f"  {tenant}: " + ", ".join(parts))
    return out


def _render_span_tree(spans: list[Span], max_children: int = 8) -> list[str]:
    by_parent: dict[str | None, list[Span]] = {}
    ids = {span.span_id for span in spans}
    for span in spans:
        parent = span.parent_id if span.parent_id in ids else None
        by_parent.setdefault(parent, []).append(span)
    for children in by_parent.values():
        children.sort(key=lambda s: (s.start_us, s.span_id))
    out: list[str] = []

    def walk(parent: str | None, depth: int) -> None:
        children = by_parent.get(parent, [])
        for index, span in enumerate(children):
            if index == max_children:
                out.append(
                    "  " + "  " * depth
                    + f"... {len(children) - max_children} more {span.name} "
                    "siblings elided"
                )
                break
            duration = span.duration_us or 0
            out.append(
                "  " + "  " * depth
                + f"{span.name} [{span.span_id}] {duration / 1000:.2f}ms"
            )
            walk(span.span_id, depth + 1)

    walk(None, 0)
    return out


def _render_trace_section(path: str) -> list[str]:
    spans = load_jsonl_spans(path)
    out = [f"## Trace ({len(spans)} spans)"]
    out.extend(_render_span_tree(spans))
    return out


def _render_events_section(path: str, limit: int = 20) -> list[str]:
    events = load_events(path)
    out = [f"## Timeline ({len(events)} events)"]
    shown = events if len(events) <= limit else events[-limit:]
    if len(events) > limit:
        out.append(f"  ... {len(events) - limit} earlier events elided")
    for event in shown:
        payload = {
            key: value
            for key, value in event.items()
            if key not in ("seq", "t", "kind")
        }
        rendered = ", ".join(f"{k}={v}" for k, v in payload.items())
        out.append(f"  [{event['t']:9.3f}s] {event['kind']}: {rendered}")
    return out


def render_run_report(
    metrics_path: str | None = None,
    trace_path: str | None = None,
    events_path: str | None = None,
) -> str:
    """Human-readable report assembled from exported run artifacts."""
    if not any((metrics_path, trace_path, events_path)):
        raise ValidationError(
            "report needs at least one of --metrics/--trace/--events"
        )
    sections: list[str] = ["# Run report"]
    try:
        if metrics_path:
            sections.extend(_render_metrics_section(metrics_path))
        if trace_path:
            sections.extend(_render_trace_section(trace_path))
        if events_path:
            sections.extend(_render_events_section(events_path))
    except OSError as error:
        raise DatasetError(f"could not read run artifact: {error}") from error
    return "\n".join(sections) + "\n"
