"""Hierarchical spans for the parsing pipeline.

A :class:`Tracer` records where a run spent its time as a tree of
spans following the pipeline's natural shape::

    parse_run                  one session (ParseSession / DegradedSession)
      chunk                    one flush of the streaming engine, or one
                               dispatched chunk of ChunkedParallelParser
        parser_call            one invocation of an underlying parser
                               (flush parse, fallback attempt, worker call)

plus zero-duration *instant* events for state changes (ladder rung
steps, circuit-breaker transitions, checkpoint saves).

Spans cross the ``ChunkedParallelParser`` process boundary by value:
the parent serializes a :meth:`Tracer.worker_context`, the worker
builds its own throwaway tracer from it (span ids drawn from a
per-chunk prefix so they cannot collide with the parent's), and ships
its finished spans back with the parse result for the parent to
:meth:`Tracer.adopt`.  Timestamps come from ``time.time_ns() // 1000``
(wall-clock microseconds) so parent and worker clocks are comparable;
tests inject a fake clock for exact assertions.

Export formats:

* **JSONL** — one span dict per line, stable field order, greppable.
* **Chrome trace_event** — a ``{"traceEvents": [...]}`` JSON document
  of ``ph: "X"`` complete events loadable in ``chrome://tracing`` /
  Perfetto.
"""

from __future__ import annotations

import json
import time
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.common.errors import ValidationError

#: Span names used by the runtime (callers may add their own).
SPAN_PARSE_RUN = "parse_run"
SPAN_CHUNK = "chunk"
SPAN_PARSER_CALL = "parser_call"
SPAN_SERVICE_DRAIN = "service_drain"
SPAN_TENANT_DRAIN = "tenant_drain"


def _wall_clock_us() -> int:
    return time.time_ns() // 1000


@dataclass
class Span:
    """One timed operation in the pipeline tree."""

    trace_id: str
    span_id: str
    parent_id: str | None
    name: str
    start_us: int
    end_us: int | None = None
    attrs: dict = field(default_factory=dict)

    @property
    def duration_us(self) -> int | None:
        if self.end_us is None:
            return None
        return self.end_us - self.start_us

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_us": self.start_us,
            "end_us": self.end_us,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        return cls(
            trace_id=data["trace_id"],
            span_id=data["span_id"],
            parent_id=data.get("parent_id"),
            name=data["name"],
            start_us=data["start_us"],
            end_us=data.get("end_us"),
            attrs=dict(data.get("attrs", {})),
        )


class _SpanHandle:
    """Context manager closing its span on exit (error status on raise)."""

    __slots__ = ("tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self.tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None and "status" not in self.span.attrs:
            self.span.attrs["status"] = "error"
            self.span.attrs["error"] = exc_type.__name__
        self.tracer.finish(self.span)


class Tracer:
    """Builds and collects spans for one run.

    Args:
        trace_id: identifier stamped on every span; defaults to
            ``"run"`` (one tracer per run — there is no ambient
            global).
        clock_us: microsecond timestamp source.  The default is wall
            clock so spans from forked workers line up with the
            parent's; inject a counter in tests.
        id_prefix: prefix for generated span ids.  Worker tracers get
            a per-chunk prefix (``w3-``) so ids stay unique across the
            process boundary without coordination.
    """

    def __init__(
        self,
        trace_id: str = "run",
        clock_us: Callable[[], int] = _wall_clock_us,
        id_prefix: str = "s",
    ) -> None:
        self.trace_id = trace_id
        self._clock_us = clock_us
        self._id_prefix = id_prefix
        self._next_id = 0
        self.spans: list[Span] = []
        self._stack: list[Span] = []

    # -- span lifecycle -------------------------------------------------

    def _new_id(self) -> str:
        self._next_id += 1
        return f"{self._id_prefix}{self._next_id}"

    def start(
        self, name: str, parent: Span | None = None, **attrs
    ) -> Span:
        """Open a span.  Without an explicit parent, nests under the
        innermost span still open on this tracer's stack."""
        if parent is None and self._stack:
            parent = self._stack[-1]
        span = Span(
            trace_id=self.trace_id,
            span_id=self._new_id(),
            parent_id=parent.span_id if parent is not None else None,
            name=name,
            start_us=self._clock_us(),
            attrs=dict(attrs),
        )
        self._stack.append(span)
        return span

    def finish(self, span: Span) -> Span:
        if span.end_us is not None:
            raise ValidationError(
                f"span {span.span_id} ({span.name}) already finished"
            )
        span.end_us = self._clock_us()
        if span in self._stack:
            self._stack.remove(span)
        self.spans.append(span)
        return span

    def span(self, name: str, parent: Span | None = None, **attrs):
        """``with tracer.span("chunk", size=n) as s: ...``"""
        return _SpanHandle(self, self.start(name, parent=parent, **attrs))

    def instant(self, name: str, parent: Span | None = None, **attrs) -> Span:
        """A zero-duration marker (rung change, breaker transition)."""
        if parent is None and self._stack:
            parent = self._stack[-1]
        now = self._clock_us()
        span = Span(
            trace_id=self.trace_id,
            span_id=self._new_id(),
            parent_id=parent.span_id if parent is not None else None,
            name=name,
            start_us=now,
            end_us=now,
            attrs=dict(attrs),
        )
        self.spans.append(span)
        return span

    @property
    def current(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    # -- process-boundary propagation ----------------------------------

    def worker_context(self, prefix: str, parent: Span | None = None) -> dict:
        """A picklable context for a worker-side tracer.

        The worker's spans parent under ``parent`` (default: current
        innermost open span) and draw ids from ``prefix`` so they never
        collide with this tracer's.
        """
        if parent is None:
            parent = self.current
        return {
            "trace_id": self.trace_id,
            "parent_id": parent.span_id if parent is not None else None,
            "prefix": prefix,
        }

    @classmethod
    def from_worker_context(
        cls, context: dict, clock_us: Callable[[], int] = _wall_clock_us
    ) -> "Tracer":
        """Build the worker-side tracer; its root spans adopt the
        parent id carried in the context."""
        tracer = cls(
            trace_id=context["trace_id"],
            clock_us=clock_us,
            id_prefix=context["prefix"],
        )
        tracer._root_parent = context.get("parent_id")  # type: ignore[attr-defined]
        return tracer

    def start_root(self, name: str, **attrs) -> Span:
        """Worker-side: open a span under the propagated parent."""
        parent_id = getattr(self, "_root_parent", None)
        span = self.start(name, **attrs)
        if span.parent_id is None:
            span.parent_id = parent_id
        return span

    def serialize(self) -> list[dict]:
        """Finished spans as plain dicts (picklable / JSON-able)."""
        return [span.to_dict() for span in self.spans]

    def serialize_new(self, cursor: int) -> tuple[list[dict], int]:
        """Finished spans appended since *cursor*, plus the new cursor.

        The incremental form of :meth:`serialize` for continuous
        cross-process shipping: a shard worker that sends spans on
        every checkpoint ack (not just at drain) keeps the cursor so
        repeated adoption by the parent never duplicates a span.
        """
        end = len(self.spans)
        return [span.to_dict() for span in self.spans[cursor:end]], end

    def adopt(self, serialized: list[dict]) -> None:
        """Fold spans shipped back from a worker into this tracer."""
        for data in serialized:
            self.spans.append(Span.from_dict(data))

    # -- export ---------------------------------------------------------

    def _closed_spans(self) -> list[Span]:
        return sorted(
            (s for s in self.spans if s.end_us is not None),
            key=lambda s: (s.start_us, s.span_id),
        )

    def to_jsonl(self) -> str:
        lines = [
            json.dumps(span.to_dict(), sort_keys=True)
            for span in self._closed_spans()
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def to_chrome(self) -> str:
        """Chrome ``trace_event`` JSON (complete ``ph: "X"`` events)."""
        events = []
        for span in self._closed_spans():
            args = dict(span.attrs)
            args["span_id"] = span.span_id
            if span.parent_id is not None:
                args["parent_id"] = span.parent_id
            events.append(
                {
                    "name": span.name,
                    "cat": span.trace_id,
                    "ph": "X",
                    "ts": span.start_us,
                    "dur": span.duration_us,
                    "pid": 1,
                    "tid": 1,
                    "args": args,
                }
            )
        return json.dumps({"traceEvents": events}, indent=2)

    def export(self, path: str, fmt: str = "jsonl", *, io=None) -> None:
        """Write the trace atomically (temp file, fsync, rename), so a
        crash mid-export cannot leave a torn trace file behind."""
        if fmt == "jsonl":
            text = self.to_jsonl()
        elif fmt == "chrome":
            text = self.to_chrome()
        else:
            raise ValidationError(
                f"unknown trace format {fmt!r} (expected jsonl or chrome)"
            )
        from repro.resilience.durability import atomic_write_text

        atomic_write_text(path, text, io=io)


def load_jsonl_spans(path: str) -> list[Span]:
    """Read back a JSONL trace export (used by ``repro report``)."""
    spans = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                spans.append(Span.from_dict(json.loads(line)))
    return spans
