"""The `Telemetry` facade: one handle threaded through the runtime.

Every instrumented constructor takes ``telemetry=None``; the default
keeps the uninstrumented fast path at a single ``is None`` guard (the
< 3 % regression budget of ISSUE 4).  When a run wants measurement it
builds one :class:`Telemetry` and passes it everywhere — the CLI does
this for ``stream`` / ``supervise`` / ``soak``:

    telemetry = Telemetry.create()
    parser = StreamingParser(factory, telemetry=telemetry)
    ...
    export_metrics(telemetry.metrics, "run.prom")
    telemetry.tracer.export("run.jsonl")

The facade also pre-registers the runtime's metric schema (see
DESIGN.md §8 for the naming scheme) so exporters always emit the full
family list with ``# HELP`` text, even for families that never fired.
"""

from __future__ import annotations

import time
from collections.abc import Callable

from repro.observability.events import EventLog
from repro.observability.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    MetricsRegistry,
)
from repro.observability.tracing import Tracer


class Telemetry:
    """Bundles the three telemetry surfaces of one run."""

    def __init__(
        self,
        metrics: MetricsRegistry,
        tracer: Tracer,
        events: EventLog,
    ) -> None:
        self.metrics = metrics
        self.tracer = tracer
        self.events = events
        _register_schema(metrics)

    @classmethod
    def create(
        cls,
        trace_id: str = "run",
        clock: Callable[[], float] = time.monotonic,
        clock_us: Callable[[], int] | None = None,
        events_path: str | None = None,
        io=None,
    ) -> "Telemetry":
        """A fully-wired telemetry handle with shared defaults.

        *io* is the durability layer's IO seam — passed to the event
        log's durable writer so injected IO faults reach the timeline
        artifact too.
        """
        tracer = (
            Tracer(trace_id=trace_id)
            if clock_us is None
            else Tracer(trace_id=trace_id, clock_us=clock_us)
        )
        return cls(
            metrics=MetricsRegistry(clock=clock),
            tracer=tracer,
            events=EventLog(clock=clock, path=events_path, io=io),
        )

    def close(self) -> None:
        self.events.close()


def _register_schema(metrics: MetricsRegistry) -> None:
    """Declare the runtime's metric families up front.

    Registration is idempotent (same kind + labels returns the
    existing family), so instrumented components may re-declare the
    families they touch without conflict.
    """
    # Streaming engine ---------------------------------------------------
    metrics.counter(
        "repro_stream_lines_total", "Records accepted by the engine"
    )
    metrics.counter(
        "repro_stream_flushes_total", "Pending-buffer flushes (chunks parsed)"
    )
    metrics.counter(
        "repro_stream_outliers_total", "Lines the flush parser left unmatched"
    )
    metrics.counter(
        "repro_stream_rejected_total", "Records rejected by screening"
    )
    metrics.counter(
        "repro_stream_shed_total", "Records dropped by overflow backpressure"
    )
    metrics.gauge("repro_stream_events", "Distinct event templates discovered")
    metrics.gauge("repro_stream_pending", "Records buffered awaiting a flush")
    metrics.histogram(
        "repro_stream_flush_seconds",
        "Per-chunk flush latency",
        buckets=DEFAULT_LATENCY_BUCKETS,
    )
    metrics.histogram(
        "repro_stream_flush_size_records",
        "Records handed to the flush parser per chunk",
        buckets=DEFAULT_SIZE_BUCKETS,
    )
    metrics.gauge(
        "repro_run_elapsed_seconds", "Wall-clock duration of the session"
    )
    # Template cache -----------------------------------------------------
    metrics.counter(
        "repro_cache_hits_total",
        "Cache hits by kind (exact memo vs template probe)",
        labelnames=("kind",),
    )
    metrics.counter("repro_cache_misses_total", "Cache misses")
    metrics.counter("repro_cache_evictions_total", "LRU template evictions")
    metrics.counter(
        "repro_cache_resizes_total", "Live capacity changes", ("direction",)
    )
    # Resilience ---------------------------------------------------------
    metrics.counter(
        "repro_quarantine_records_total",
        "Records quarantined, by reason",
        labelnames=("reason",),
    )
    metrics.counter(
        "repro_checkpoint_ops_total",
        "Checkpoint saves and loads",
        labelnames=("op",),
    )
    metrics.histogram(
        "repro_checkpoint_seconds",
        "Checkpoint save/load latency",
        labelnames=("op",),
        buckets=DEFAULT_LATENCY_BUCKETS,
    )
    metrics.counter(
        "repro_artifact_writes_total",
        "Durable artifact writes by kind and outcome",
        labelnames=("kind", "outcome"),
    )
    metrics.counter(
        "repro_jsonl_recovered_bytes_total",
        "Torn-tail bytes truncated by JSONL recovery",
    )
    metrics.counter(
        "repro_supervisor_attempts_total",
        "Supervised parser attempts by outcome",
        labelnames=("parser", "status"),
    )
    metrics.counter(
        "repro_supervisor_retries_total",
        "Retries scheduled after failed attempts",
        labelnames=("parser",),
    )
    metrics.counter(
        "repro_breaker_transitions_total",
        "Circuit-breaker state entries",
        labelnames=("parser", "state"),
    )
    metrics.counter(
        "repro_parallel_chunk_attempts_total",
        "Parallel chunk dispatches by outcome",
        labelnames=("status",),
    )
    # Degradation --------------------------------------------------------
    metrics.counter(
        "repro_budget_breaches_total",
        "Budget breaches observed",
        labelnames=("dimension", "level"),
    )
    metrics.counter(
        "repro_ladder_steps_total",
        "Degradation ladder steps by trigger",
        labelnames=("trigger",),
    )
    metrics.gauge(
        "repro_ladder_position", "Current ladder rung index (0 = top)"
    )
    # Service (multi-tenant ingestion) -----------------------------------
    metrics.counter(
        "repro_service_lines_total",
        "Lines accepted into a tenant shard",
        labelnames=("tenant",),
    )
    metrics.counter(
        "repro_service_rejected_total",
        "Lines refused before reaching a shard, by cause",
        labelnames=("tenant", "cause"),
    )
    metrics.counter(
        "repro_service_breaker_total",
        "Tenant circuit-breaker transitions",
        labelnames=("tenant", "state"),
    )
    metrics.counter(
        "repro_service_connections_total",
        "Front-end connections by outcome",
        labelnames=("outcome",),
    )
    metrics.gauge(
        "repro_service_tenants", "Tenant shards currently materialized"
    )
    metrics.gauge(
        "repro_service_queue_depth",
        "Pending records summed across all tenant shards",
    )
    # Live telemetry plane (per-tenant SLOs + alerts) --------------------
    metrics.counter(
        "repro_tenant_lines_total",
        "Lines parsed per tenant, synced live from the owning shard",
        labelnames=("tenant",),
    )
    metrics.counter(
        "repro_tenant_cache_hits_total",
        "Template-cache hits per tenant by kind (exact/template)",
        labelnames=("tenant", "kind"),
    )
    metrics.counter(
        "repro_tenant_cache_misses_total",
        "Template-cache misses per tenant",
        labelnames=("tenant",),
    )
    metrics.counter(
        "repro_tenant_quarantined_total",
        "Records quarantined per tenant (all reasons)",
        labelnames=("tenant",),
    )
    metrics.gauge(
        "repro_tenant_events",
        "Distinct event templates discovered per tenant",
        labelnames=("tenant",),
    )
    metrics.histogram(
        "repro_tenant_ingest_latency_seconds",
        "End-to-end per-record ingest latency (enqueue to parsed)",
        labelnames=("tenant",),
        buckets=DEFAULT_LATENCY_BUCKETS,
    )
    metrics.histogram(
        "repro_tenant_queue_wait_seconds",
        "Time records spend queued before the shard worker dequeues them",
        labelnames=("tenant",),
        buckets=DEFAULT_LATENCY_BUCKETS,
    )
    metrics.gauge(
        "repro_tenant_error_budget_remaining",
        "Fraction of the SLO error budget left in the slow window",
        labelnames=("tenant",),
    )
    metrics.counter(
        "repro_alerts_total",
        "Alert state transitions by rule",
        labelnames=("rule", "state"),
    )
    metrics.gauge(
        "repro_alerts_active", "Alert instances currently firing"
    )
    # Process isolation (shard workers + supervision) --------------------
    metrics.counter(
        "repro_shard_restarts_total",
        "Worker restarts by tenant and death reason",
        labelnames=("tenant", "reason"),
    )
    metrics.counter(
        "repro_shard_poison_records_total",
        "Records diverted to quarantine as poison pills",
        labelnames=("tenant",),
    )
    metrics.gauge(
        "repro_worker_heartbeat_age_seconds",
        "Seconds since the supervisor last heard from a worker",
        labelnames=("tenant",),
    )
    metrics.gauge(
        "repro_shard_queue_depth",
        "Journaled records awaiting a worker checkpoint, per tenant",
        labelnames=("tenant",),
    )
    metrics.gauge(
        "repro_shard_state",
        "Supervisor lifecycle state (one-hot per tenant)",
        labelnames=("tenant", "state"),
    )
    # Exactly-once delivery (wire protocol v2) ---------------------------
    metrics.counter(
        "repro_delivery_acked_total",
        "Cumulative acknowledgements sent to v2 clients",
    )
    metrics.counter(
        "repro_delivery_duplicates_suppressed_total",
        "Sequence-tagged lines dropped by the per-tenant dedup window",
        labelnames=("tenant",),
    )
    metrics.gauge(
        "repro_delivery_spool_depth",
        "Client-side spooled lines not yet acknowledged",
    )
    metrics.counter(
        "repro_delivery_resend_total",
        "Spooled lines retransmitted by a flush or reconnect",
    )
