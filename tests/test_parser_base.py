"""Tests for the LogParser base contract shared by all parsers."""

import pytest

from repro.common.errors import ParserConfigurationError, ValidationError
from repro.common.types import ParseResult
from repro.parsers import available_parsers, make_parser, PARSER_NAMES
from repro.parsers.base import Clustering, LogParser, OUTLIER


class TestClustering:
    def test_valid_labels(self):
        Clustering(labels=[0, 1, OUTLIER], templates=[["a"], ["b"]])

    def test_out_of_range_label_rejected(self):
        with pytest.raises(ValueError):
            Clustering(labels=[2], templates=[["a"]])

    def test_negative_non_outlier_rejected(self):
        with pytest.raises(ValueError):
            Clustering(labels=[-2], templates=[["a"]])


class _FixedParser(LogParser):
    name = "fixed"

    def _cluster(self, token_lists):
        labels = [0 if tokens and tokens[0] == "keep" else OUTLIER
                  for tokens in token_lists]
        return Clustering(labels=labels, templates=[["keep", "*"]])


class _BrokenParser(LogParser):
    name = "broken"

    def _cluster(self, token_lists):
        return Clustering(labels=[], templates=[])


class TestBaseParse:
    def test_event_ids_sequential(self):
        result = _FixedParser().parse_contents(["keep a", "keep b"])
        assert result.event_ids == ["E1"]

    def test_outlier_assignment(self):
        result = _FixedParser().parse_contents(["keep a", "drop b"])
        assert result.assignments == ["E1", ParseResult.OUTLIER_EVENT_ID]

    def test_label_count_mismatch_detected(self):
        with pytest.raises(ParserConfigurationError):
            _BrokenParser().parse_contents(["a"])

    def test_preprocessor_applied_before_clustering(self):
        from repro.parsers.preprocess import Preprocessor, Rule

        rule = Rule("rewrite", r"drop", "keep")
        parser = _FixedParser(preprocessor=Preprocessor(rules=(rule,)))
        result = parser.parse_contents(["drop x"])
        assert result.assignments == ["E1"]

    def test_original_records_preserved(self):
        result = _FixedParser().parse_contents(["keep original text"])
        assert result.records[0].content == "keep original text"


class TestRegistry:
    def test_paper_order(self):
        assert PARSER_NAMES == ["SLCT", "IPLoM", "LKE", "LogSig", "Drain"]

    def test_make_parser_case_insensitive(self):
        assert make_parser("iplom").name == "IPLoM"

    def test_make_parser_forwards_params(self):
        parser = make_parser("slct", support=0.5)
        assert parser.support == 0.5

    def test_unknown_name_rejected(self):
        # A bad name is a configuration error (exit 2 at the CLI) and
        # the message must list what *is* available.
        with pytest.raises(ValidationError) as excinfo:
            make_parser("nope")
        for name in available_parsers():
            assert name in str(excinfo.value)

    def test_available_parsers_matches_registry(self):
        names = available_parsers()
        assert set(PARSER_NAMES) <= set(names)
        assert {"GroundTruth", "Passthrough"} <= set(names)

    def test_ground_truth_in_registry(self):
        assert make_parser("GroundTruth").name == "GroundTruth"
