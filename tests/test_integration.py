"""End-to-end integration tests tying parsers, datasets, and mining."""

from repro import (
    Iplom,
    OracleParser,
    detect_anomalies,
    f_measure,
    generate_dataset,
    generate_hdfs_sessions,
    get_dataset_spec,
)
from repro.datasets import read_raw_log, write_raw_log
from repro.evaluation.fmeasure import singletonize_outliers
from repro.evaluation.mining_impact import (
    evaluate_mining_impact,
    table3_parser_factory,
)
from repro.parsers import Lke, LogSig, Slct, default_preprocessor


class TestParseEvaluateFlow:
    def test_generate_write_read_parse_evaluate(self, tmp_path):
        dataset = generate_dataset(get_dataset_spec("Zookeeper"), 600, seed=1)
        path = str(tmp_path / "zk.log")
        write_raw_log(dataset.records, path)
        loaded = read_raw_log(path)
        result = Iplom().parse(loaded)
        score = f_measure(result.assignments, dataset.truth_assignments)
        assert score > 0.8

    def test_all_four_parsers_beat_chance_on_hdfs(self):
        dataset = generate_dataset(get_dataset_spec("HDFS"), 400, seed=2)
        truth = dataset.truth_assignments
        preprocessor = default_preprocessor("HDFS")
        parsers = [
            Slct(support=0.01, preprocessor=preprocessor),
            Iplom(preprocessor=preprocessor),
            Lke(seed=1, preprocessor=preprocessor),
            LogSig(groups=29, seed=1, preprocessor=preprocessor),
        ]
        for parser in parsers:
            result = parser.parse(dataset.records)
            score = f_measure(
                singletonize_outliers(result.assignments), truth
            )
            assert score > 0.5, parser.name


class TestMiningFlow:
    def test_oracle_pipeline_beats_bad_parser(self):
        dataset = generate_hdfs_sessions(1500, seed=3)
        oracle_row = evaluate_mining_impact(OracleParser(), dataset)
        slct_row = evaluate_mining_impact(
            table3_parser_factory("SLCT"), dataset
        )
        # Finding 5: the low-accuracy parse must be clearly worse for
        # mining — fewer detections or far more false alarms.
        assert slct_row.parsing_accuracy < oracle_row.parsing_accuracy
        assert (
            slct_row.detected < oracle_row.detected
            or slct_row.false_alarms > 5 * max(oracle_row.false_alarms, 1)
        )

    def test_iplom_tracks_ground_truth(self):
        dataset = generate_hdfs_sessions(1500, seed=4)
        oracle_row = evaluate_mining_impact(OracleParser(), dataset)
        iplom_row = evaluate_mining_impact(
            table3_parser_factory("IPLoM"), dataset
        )
        assert iplom_row.parsing_accuracy > 0.95
        assert abs(iplom_row.detected - oracle_row.detected) <= max(
            10, oracle_row.detected // 3
        )

    def test_detection_stable_across_parse_column_permutation(self):
        # The PCA pipeline must not depend on event-id naming.
        dataset = generate_hdfs_sessions(500, seed=5)
        parsed = OracleParser().parse(dataset.records)
        flags_a = detect_anomalies(parsed).flagged_sessions
        flags_b = detect_anomalies(parsed).flagged_sessions
        assert flags_a == flags_b
