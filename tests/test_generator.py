"""Tests for the generic dataset generator."""

import pytest

from repro.common.errors import DatasetError
from repro.common.tokenize import template_matches
from repro.datasets import generate_dataset, get_dataset_spec


HDFS = get_dataset_spec("HDFS")


class TestGenerateDataset:
    def test_size(self):
        assert len(generate_dataset(HDFS, 100, seed=1)) == 100

    def test_deterministic(self):
        a = generate_dataset(HDFS, 200, seed=42)
        b = generate_dataset(HDFS, 200, seed=42)
        assert a.contents() == b.contents()
        assert a.truth_assignments == b.truth_assignments

    def test_seed_changes_output(self):
        a = generate_dataset(HDFS, 200, seed=1)
        b = generate_dataset(HDFS, 200, seed=2)
        assert a.contents() != b.contents()

    def test_every_record_labeled(self):
        dataset = generate_dataset(HDFS, 150, seed=3)
        assert all(r.truth_event for r in dataset.records)

    def test_labels_are_consistent_with_templates(self):
        dataset = generate_dataset(HDFS, 150, seed=4)
        truth = HDFS.bank.truth_templates()
        for record in dataset.records:
            assert template_matches(truth[record.truth_event], record.content)

    def test_full_event_coverage_at_large_sizes(self):
        dataset = generate_dataset(HDFS, 2 * len(HDFS.bank) + 10, seed=5)
        assert dataset.observed_event_ids() == set(
            HDFS.bank.truth_templates()
        )

    def test_small_sizes_skip_coverage_dealing(self):
        dataset = generate_dataset(HDFS, 5, seed=6)
        assert len(dataset) == 5

    def test_timestamps_monotonic(self):
        dataset = generate_dataset(HDFS, 300, seed=7)
        stamps = [r.timestamp for r in dataset.records]
        assert stamps == sorted(stamps)

    def test_zero_size_rejected(self):
        with pytest.raises(DatasetError):
            generate_dataset(HDFS, 0)

    def test_negative_size_rejected(self):
        with pytest.raises(DatasetError):
            generate_dataset(HDFS, -5)

    def test_weights_shape_distribution(self):
        # E1/E3/E5 (weight 90) should dominate E7 (weight 0.5).
        dataset = generate_dataset(HDFS, 5000, seed=8)
        counts = {}
        for event in dataset.truth_assignments:
            counts[event] = counts.get(event, 0) + 1
        assert counts["E1"] > 10 * counts.get("E7", 1)
