"""Tests for the RQ1 accuracy harness (Table II / Fig. 3 machinery)."""

import pytest

from repro.common.errors import EvaluationError
from repro.evaluation.accuracy import (
    AccuracyResult,
    RANDOMIZED_PARSERS,
    TUNED_PARAMETERS,
    evaluate_accuracy,
    tuned_parser_factory,
)


class TestTunedParserFactory:
    def test_all_tuned_cells_buildable(self):
        for parser_name, dataset_name in TUNED_PARAMETERS:
            parser = tuned_parser_factory(parser_name, dataset_name, seed=1)
            assert parser.name.lower() == parser_name.lower()

    def test_preprocess_attaches_rules(self):
        parser = tuned_parser_factory("SLCT", "HDFS", preprocess=True)
        assert parser.preprocessor is not None

    def test_proxifier_preprocess_is_none(self):
        parser = tuned_parser_factory("SLCT", "Proxifier", preprocess=True)
        assert parser.preprocessor is None

    def test_unknown_dataset_rejected(self):
        from repro.common.errors import ReproError

        with pytest.raises(ReproError):
            tuned_parser_factory("SLCT", "NoSuchDataset")

    def test_unknown_parser_rejected(self):
        with pytest.raises(EvaluationError):
            tuned_parser_factory("NoSuchParser", "HDFS")

    def test_randomized_parsers_get_seed(self):
        parser = tuned_parser_factory("LogSig", "HDFS", seed=77)
        assert parser.seed == 77

    def test_table_covers_all_cells(self):
        parsers = {key[0] for key in TUNED_PARAMETERS}
        datasets = {key[1] for key in TUNED_PARAMETERS}
        assert parsers == {"SLCT", "IPLoM", "LKE", "LogSig", "Drain"}
        assert datasets == {"BGL", "HPC", "HDFS", "Zookeeper", "Proxifier"}
        assert len(TUNED_PARAMETERS) == 25


class TestAccuracyResult:
    def test_mean_and_stdev(self):
        result = AccuracyResult(
            parser="X",
            dataset="Y",
            preprocessed=False,
            sample_size=10,
            runs=[0.8, 0.9],
        )
        assert result.mean_f_measure == pytest.approx(0.85)
        assert result.stdev_f_measure > 0

    def test_single_run_stdev_zero(self):
        result = AccuracyResult("X", "Y", False, 10, runs=[0.8])
        assert result.stdev_f_measure == 0.0


class TestEvaluateAccuracy:
    def test_deterministic_parser_single_run_default(self):
        result = evaluate_accuracy(
            "IPLoM", "Proxifier", sample_size=300, seed=1
        )
        assert len(result.runs) == 1

    def test_randomized_parser_multi_run_default(self):
        result = evaluate_accuracy(
            "LogSig", "Proxifier", sample_size=200, seed=1
        )
        assert len(result.runs) == 10
        assert "LogSig" in RANDOMIZED_PARSERS

    def test_explicit_runs_respected(self):
        result = evaluate_accuracy(
            "LogSig", "Proxifier", sample_size=150, runs=2, seed=1
        )
        assert len(result.runs) == 2

    def test_invalid_runs_rejected(self):
        with pytest.raises(EvaluationError):
            evaluate_accuracy("IPLoM", "Proxifier", runs=0)

    def test_scores_in_unit_interval(self):
        result = evaluate_accuracy(
            "SLCT", "Zookeeper", sample_size=400, seed=2
        )
        assert all(0.0 <= score <= 1.0 for score in result.runs)

    def test_reproducible_with_seed(self):
        a = evaluate_accuracy("IPLoM", "HDFS", sample_size=300, seed=5)
        b = evaluate_accuracy("IPLoM", "HDFS", sample_size=300, seed=5)
        assert a.runs == b.runs

    def test_preprocessing_flag_recorded(self):
        result = evaluate_accuracy(
            "IPLoM", "HDFS", sample_size=200, preprocess=True, seed=1
        )
        assert result.preprocessed
