"""Tests for the PCA anomaly model and the Q-statistic threshold."""

import numpy as np
import pytest

from repro.common.errors import MiningError
from repro.common.rng import make_numpy_rng
from repro.mining.pca import PcaAnomalyModel, q_statistic_threshold


def _normal_data(n=300, seed=1):
    rng = make_numpy_rng(seed)
    # Two latent factors in 6 dimensions + small isotropic noise.
    factors = rng.normal(size=(n, 2))
    loadings = rng.normal(size=(2, 6))
    return factors @ loadings + 0.05 * rng.normal(size=(n, 6))


class TestQStatistic:
    def test_positive_for_generic_spectrum(self):
        eigenvalues = np.array([5.0, 2.0, 1.0, 0.5, 0.2])
        threshold = q_statistic_threshold(eigenvalues, k=2)
        assert threshold > 0

    def test_empty_residual_is_infinite(self):
        eigenvalues = np.array([5.0, 2.0])
        assert q_statistic_threshold(eigenvalues, k=2) == float("inf")

    def test_smaller_alpha_raises_threshold(self):
        eigenvalues = np.array([5.0, 2.0, 1.0, 0.5, 0.2])
        strict = q_statistic_threshold(eigenvalues, k=2, alpha=0.0001)
        loose = q_statistic_threshold(eigenvalues, k=2, alpha=0.05)
        assert strict > loose

    def test_invalid_alpha_rejected(self):
        with pytest.raises(MiningError):
            q_statistic_threshold(np.array([1.0, 0.5]), k=1, alpha=0.0)

    def test_threshold_covers_most_normal_noise(self):
        data = _normal_data()
        model = PcaAnomalyModel(alpha=0.001).fit(data)
        false_rate = float(np.mean(model.predict(data)))
        assert false_rate < 0.02


class TestPcaAnomalyModel:
    def test_fit_chooses_components_for_variance(self):
        model = PcaAnomalyModel(variance_fraction=0.95).fit(_normal_data())
        # Two latent factors dominate -> k should be small.
        assert 1 <= model.fitted_components <= 3

    def test_fixed_components_respected(self):
        model = PcaAnomalyModel(n_components=4).fit(_normal_data())
        assert model.fitted_components == 4

    def test_bad_n_components_rejected(self):
        with pytest.raises(MiningError):
            PcaAnomalyModel(n_components=99).fit(_normal_data())

    def test_spe_near_zero_inside_normal_space(self):
        data = _normal_data()
        model = PcaAnomalyModel(n_components=2).fit(data)
        assert np.median(model.spe(data)) < 0.1

    def test_detects_planted_outlier(self):
        data = _normal_data()
        model = PcaAnomalyModel(alpha=0.001).fit(data)
        outlier = data[:1] + 100.0 * np.ones((1, 6))
        assert model.predict(outlier)[0]

    def test_spe_requires_fit(self):
        with pytest.raises(MiningError):
            PcaAnomalyModel().spe(np.zeros((2, 2)))

    def test_rejects_single_row(self):
        with pytest.raises(MiningError):
            PcaAnomalyModel().fit(np.zeros((1, 3)))

    def test_rejects_bad_variance_fraction(self):
        with pytest.raises(MiningError):
            PcaAnomalyModel(variance_fraction=0.0).fit(_normal_data())

    def test_components_are_orthonormal(self):
        model = PcaAnomalyModel(n_components=3).fit(_normal_data())
        gram = model.components.T @ model.components
        assert np.allclose(gram, np.eye(3), atol=1e-8)

    def test_constant_matrix_handled(self):
        data = np.ones((10, 4))
        model = PcaAnomalyModel().fit(data)
        assert not model.predict(data).any()
