"""White-box tests for parser internals (IPLoM / LogSig mechanics)."""

from collections import Counter

import pytest

from repro.parsers.iplom import Iplom
from repro.parsers.logsig import LogSig


class TestIplomColumnAnalysis:
    def test_column_cardinalities(self):
        token_lists = [["a", "x"], ["a", "y"], ["a", "x"]]
        columns = Iplom._column_cardinalities([0, 1, 2], token_lists)
        assert [len(c) for c in columns] == [1, 2]

    def test_determine_p1_p2_two_columns(self):
        iplom = Iplom()
        assert iplom._determine_p1_p2([{"a"}, {"b", "c"}]) == (0, 1)

    def test_determine_p1_p2_modal_cardinality(self):
        iplom = Iplom()
        columns = [{"k"}, {"a", "b"}, {"c", "d"}, set("0123456789")]
        # Cardinality 2 occurs twice -> those two columns are chosen.
        assert iplom._determine_p1_p2(columns) == (1, 2)

    def test_determine_p1_p2_all_constant(self):
        iplom = Iplom()
        assert iplom._determine_p1_p2([{"a"}, {"b"}, {"c"}]) is None

    def test_determine_p1_p2_single_variable_column_pairs_with_none(self):
        iplom = Iplom()
        assert iplom._determine_p1_p2([{"a"}, {"b", "c"}, {"d"}]) is None

    def test_many_side_variable_decision(self):
        iplom = Iplom(lower_bound=0.25, upper_bound=0.9)
        # 2 distinct values over 100 lines: repeated constants.
        assert not iplom._many_side_is_variable(2, 100)
        # 95 distinct values over 100 lines: free parameter.
        assert iplom._many_side_is_variable(95, 100)
        # In between: defaults to variable.
        assert iplom._many_side_is_variable(50, 100)


class TestIplomPartitioning:
    def test_partition_by_position_skips_parameter_columns(self):
        # Column 1 is unique-per-line (a parameter); column 2 has two
        # constants; the split must use column 2.
        token_lists = [
            ["op", f"id{i}", "ok" if i % 2 else "bad"] for i in range(20)
        ]
        iplom = Iplom()
        partitions = iplom._partition_by_position(
            list(range(20)), token_lists
        )
        assert len(partitions) == 2
        sizes = sorted(len(p) for p in partitions)
        assert sizes == [10, 10]

    def test_partition_by_position_all_parameters_no_split(self):
        token_lists = [["op", f"id{i}"] for i in range(20)]
        iplom = Iplom()
        partitions = iplom._partition_by_position(
            list(range(20)), token_lists
        )
        assert len(partitions) == 1

    def test_partition_by_mapping_respects_goodness(self):
        # 3 of 4 columns constant -> goodness 0.75 > ct -> untouched.
        token_lists = [["a", "b", "c", f"p{i}"] for i in range(10)]
        iplom = Iplom(ct=0.35)
        partitions = iplom._partition_by_mapping(
            list(range(10)), token_lists
        )
        assert len(partitions) == 1


class TestLogSigScoring:
    def test_best_group_prefers_concentrated_pairs(self):
        pair_counts = {
            ("a", "b"): {0: 10.0, 1: 1.0},
            ("b", "c"): {0: 10.0},
        }
        group_sizes = [10.0, 10.0]
        best = LogSig._best_group(
            frozenset({("a", "b"), ("b", "c")}),
            pair_counts,
            group_sizes,
            k=2,
        )
        assert best == 0

    def test_best_group_unknown_pairs_default_to_group_zero(self):
        best = LogSig._best_group(
            frozenset({("x", "y")}), {}, [5.0, 5.0], k=2
        )
        assert best == 0

    def test_move_updates_counts_and_sizes(self):
        pairs = [frozenset({("a", "b")})]
        pair_counts = {("a", "b"): {0: 3.0}}
        group_sizes = [3.0, 0.0]
        LogSig._move(0, 0, 1, 3.0, pairs, pair_counts, group_sizes)
        assert group_sizes == [0.0, 3.0]
        assert pair_counts[("a", "b")] == {1: 3.0}

    def test_move_partial_weight(self):
        pairs = [frozenset({("a", "b")})]
        pair_counts = {("a", "b"): {0: 5.0}}
        group_sizes = [5.0, 0.0]
        LogSig._move(0, 0, 1, 2.0, pairs, pair_counts, group_sizes)
        assert pair_counts[("a", "b")] == {0: 3.0, 1: 2.0}


class TestLogSigTemplates:
    def test_template_over_modal_length(self):
        logsig = LogSig(groups=1, seed=1)
        members = [("a", "b"), ("a", "b"), ("a", "b", "x")]
        weights = [2, 2, 1]
        template = logsig._make_template(members, weights)
        assert template == ["a", "b"]

    def test_template_masks_even_vote_split(self):
        logsig = LogSig(groups=1, seed=1)
        members = [("a", "b"), ("a", "c"), ("a", "d")]
        template = logsig._make_template(members, [1, 1, 1])
        assert template == ["a", "*"]

    def test_template_threshold_masks_minority(self):
        logsig = LogSig(groups=1, seed=1, template_threshold=0.9)
        members = [("a", "b"), ("a", "b"), ("a", "c")]
        template = logsig._make_template(members, [1, 1, 1])
        assert template == ["a", "*"]
